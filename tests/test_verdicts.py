"""Tests for continuous-verification telemetry: the verdict ledger,
event-time watermarks, detection/exposure SLIs, atomic file writes,
the site-coverage contracts, and the ``repro watch`` renderer."""

import ast
import json
import os
import threading

import pytest

from repro import obs
from repro.lint.rules.obs_rules import VERDICT_SITES
from repro.net.addr import Prefix
from repro.obs.atomicio import atomic_write_text
from repro.obs.continuous import (
    ContinuousMonitor,
    WatermarkTracker,
    render_watch_table,
)
from repro.obs.ledger import (
    KINDS,
    SCHEMA,
    NullVerdictLedger,
    VerdictLedger,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    obs.disable()
    obs.disable_verdicts()


class _Event:
    """Duck-typed stand-in for an IOEvent as the monitor sees it."""

    _next_id = 1000

    def __init__(self, kind, router, timestamp, prefix=None):
        self.kind = kind  # plain string: getattr(kind, "name", kind)
        self.router = router
        self.timestamp = timestamp
        self.prefix = prefix
        _Event._next_id += 1
        self.event_id = _Event._next_id


P1 = Prefix.parse("203.0.113.0/24")
P2 = Prefix.parse("198.51.100.0/24")


# -- the append-only ledger ---------------------------------------------------


class TestVerdictLedger:
    def test_record_assigns_monotonic_seq_and_counts(self):
        ledger = VerdictLedger()
        first = ledger.record(kind="incremental", at=1.0, ok=True)
        second = ledger.record(kind="snapshot", at=2.0, ok=False)
        assert (first.seq, second.seq) == (1, 2)
        assert len(ledger) == 2
        assert ledger.appended_total == 2
        assert ledger.failing_total == 1
        assert ledger.last() is second

    def test_unknown_kind_rejected(self):
        ledger = VerdictLedger()
        with pytest.raises(ValueError, match="unknown verdict kind"):
            ledger.record(kind="oracle", at=0.0, ok=True)

    def test_tail_is_bounded_drop_oldest(self):
        ledger = VerdictLedger(capacity=3)
        for i in range(5):
            ledger.record(kind="incremental", at=float(i), ok=True)
        assert [r.seq for r in ledger.records()] == [3, 4, 5]
        assert ledger.dropped_records == 2
        # The persisted segment is NOT truncated by the tail bound.
        assert ledger.appended_total == 5

    def test_persists_jsonl_on_flush(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        ledger = VerdictLedger(path=path, flush_every=100)
        ledger.record(
            kind="incremental",
            at=3.5,
            ok=False,
            prefix=str(P1),
            router="R2",
            event_id=42,
            event_time=3.25,
            detail="forwarding loop",
            violations=1,
            refs=(40, 42),
        )
        assert not os.path.exists(path)  # below flush_every
        ledger.flush()
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        row = json.loads(lines[0])
        assert row["kind"] == "incremental"
        assert row["prefix"] == str(P1)
        assert row["refs"] == [40, 42]
        assert row["ok"] is False

    def test_flush_every_triggers_automatic_persistence(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        ledger = VerdictLedger(path=path, flush_every=2)
        ledger.record(kind="incremental", at=0.0, ok=True)
        assert not os.path.exists(path)
        ledger.record(kind="incremental", at=1.0, ok=True)
        assert len(open(path).read().splitlines()) == 2

    def test_rotation_seals_old_segment(self, tmp_path):
        path = str(tmp_path / "verdicts.jsonl")
        ledger = VerdictLedger(path=path, rotate_records=3, flush_every=1)
        for i in range(5):
            ledger.record(kind="incremental", at=float(i), ok=True)
        assert ledger.rotations >= 1
        head = [json.loads(l) for l in open(path).read().splitlines()]
        sealed = [
            json.loads(l) for l in open(path + ".1").read().splitlines()
        ]
        # Disk stays bounded (≤ 2× rotate_records, drop-oldest): the
        # newest records form a contiguous run ending at the last seq.
        seqs = sorted(r["seq"] for r in head + sealed)
        assert seqs == list(range(seqs[0], 6))
        assert 5 in seqs
        assert len(head) <= 3
        assert len(head) + len(sealed) <= 6

    def test_document_shape(self):
        ledger = VerdictLedger()
        ledger.record(kind="snapshot", at=1.0, ok=True)
        document = ledger.document()
        assert document["schema"] == SCHEMA
        assert document["appended_total"] == 1
        assert document["failing_total"] == 0
        assert document["records"][0]["kind"] == "snapshot"

    def test_frontier_stamped_from_attached_tracker(self):
        tracker = WatermarkTracker()
        tracker.observe(_Event("FIB_UPDATE", "R1", 5.0, P1))
        ledger = VerdictLedger()
        ledger.attach_watermarks(tracker)
        record = ledger.record(kind="incremental", at=6.0, ok=True)
        assert record.frontier == {"R1": 5.0}

    def test_listeners_see_each_record(self):
        ledger = VerdictLedger()
        seen = []
        ledger.subscribe(seen.append)
        ledger.record(kind="rollback", at=9.0, ok=True)
        assert [r.kind for r in seen] == ["rollback"]

    def test_concurrent_appends_keep_seq_dense(self, tmp_path):
        ledger = VerdictLedger(
            path=str(tmp_path / "v.jsonl"), flush_every=5
        )

        def appender():
            for _ in range(50):
                ledger.record(kind="incremental", at=0.0, ok=True)

        threads = [threading.Thread(target=appender) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ledger.flush()
        rows = [
            json.loads(l)
            for l in open(ledger.path).read().splitlines()
        ]
        assert sorted(r["seq"] for r in rows) == list(range(1, 201))

    def test_null_ledger_is_inert(self):
        null = NullVerdictLedger()
        assert null.enabled is False
        assert null.record(kind="nonsense", at=0.0, ok=True) is None
        assert null.records() == []
        assert len(null) == 0
        assert null.document()["records"] == []


class TestVerdictSingleton:
    def test_enable_disable_roundtrip(self, tmp_path):
        assert obs.get_verdicts().enabled is False
        ledger = obs.enable_verdicts(path=str(tmp_path / "v.jsonl"))
        assert obs.get_verdicts() is ledger
        ledger.record(kind="snapshot", at=0.0, ok=True)
        obs.disable_verdicts()  # flushes before dropping
        assert obs.get_verdicts().enabled is False
        assert os.path.exists(str(tmp_path / "v.jsonl"))

    def test_context_manager_restores_previous(self):
        with obs.verdicts() as ledger:
            assert obs.get_verdicts() is ledger
        assert obs.get_verdicts().enabled is False


# -- atomic writes ------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        assert open(path).read() == "two\n"

    def test_failed_write_leaves_destination_untouched(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "good\n")

        def exploding_write(handle, text):
            handle.write(text[: len(text) // 2])
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(path, "half-written\n", write=exploding_write)
        assert open(path).read() == "good\n"
        # No temp-file litter either.
        assert os.listdir(tmp_path) == ["out.txt"]


# -- site-coverage contracts --------------------------------------------------


def _site_function(module, qualname):
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    path = os.path.join(root, *module.split(".")) + ".py"
    tree = ast.parse(open(path).read())
    node = tree
    for part in qualname.split("."):
        node = next(
            child
            for child in ast.walk(node)
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            and child.name == part
        )
    return node


class TestVerdictSiteContracts:
    def test_catalogue_and_kinds_cannot_drift(self):
        """VERDICT_SITES and ledger KINDS must stay a bijection."""
        catalogued = [
            kind
            for sites in VERDICT_SITES.values()
            for _qualname, kind in sites
        ]
        assert sorted(catalogued) == sorted(KINDS), (
            "VERDICT_SITES (repro/lint/rules/obs_rules.py) and KINDS "
            "(repro/obs/ledger.py) have drifted apart"
        )

    def test_every_site_guards_on_verdicts_enabled(self):
        """The disabled fast path is one attribute check per site."""
        for module, sites in VERDICT_SITES.items():
            for qualname, _kind in sites:
                func = _site_function(module, qualname)
                guards = [
                    node
                    for node in ast.walk(func)
                    if isinstance(node, ast.Attribute)
                    and node.attr == "enabled"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "verdicts"
                ]
                assert guards, (
                    f"{module}:{qualname} must guard recording behind "
                    "a single `verdicts.enabled` check"
                )

    def test_disabled_verdicts_never_reach_record(self):
        """Behavioral half: with the ledger off, no site may even
        *call* record() — the continuous path must be zero-overhead."""

        class TrippingVerdictLedger(NullVerdictLedger):
            def record(self, *args, **kwargs):
                raise AssertionError(
                    "record() called while verdicts.enabled is False"
                )

        import repro.obs as obs_module
        from repro.cli import _run_continuous_replay

        previous = obs_module._verdicts
        obs_module._verdicts = TrippingVerdictLedger()
        try:
            # fig2 + repair exercises all three sites: incremental
            # verdicts during the replay, the snapshot verdict in the
            # repair engine's post-verify, and the rollback itself.
            _run_continuous_replay("fig2", seed=0, repair=True)
        finally:
            obs_module._verdicts = previous


# -- watermarks ---------------------------------------------------------------


class TestWatermarkTracker:
    def test_per_router_watermark_is_max_event_time(self):
        tracker = WatermarkTracker()
        tracker.observe(_Event("RIB_UPDATE", "R1", 3.0))
        tracker.observe(_Event("RIB_UPDATE", "R1", 2.0))  # late arrival
        tracker.observe(_Event("RIB_UPDATE", "R2", 5.0))
        assert tracker.frontier_by_router() == {"R1": 3.0, "R2": 5.0}
        assert tracker.frontier() == 3.0
        assert tracker.newest_event_time == 5.0
        assert tracker.events_seen == 3

    def test_lag_is_clock_minus_watermark_with_skew_allowance(self):
        tracker = WatermarkTracker(skew_tolerance=0.5)
        tracker.observe(_Event("RIB_UPDATE", "R1", 1.0))
        tracker.observe(_Event("RIB_UPDATE", "R2", 10.0))
        # clock == newest arrival (10.0); R1 is 9.0 behind, minus the
        # 0.5 skew allowance.
        assert tracker.lag_of("R1") == pytest.approx(8.5)
        assert tracker.lag_of("R2") == 0.0

    def test_backlog_counts_events_past_the_frontier(self):
        tracker = WatermarkTracker()
        tracker.observe(_Event("RIB_UPDATE", "R1", 1.0))
        tracker.observe(_Event("RIB_UPDATE", "R2", 8.0))
        tracker.observe(_Event("RIB_UPDATE", "R2", 9.0))
        # Frontier is min(1.0, 9.0) = 1.0; R2's two events wait on R1.
        assert tracker.frontier() == 1.0
        assert tracker.backlog_depth() == 2

    def test_publishes_gauges_when_registry_enabled(self):
        with obs.capturing() as (registry, _tracer):
            tracker = WatermarkTracker()
            tracker.observe(_Event("RIB_UPDATE", "R1", 4.0))
            by_name = {
                (g.name, dict(g.labels).get("router")): g.value
                for g in registry.gauges()
            }
        assert by_name[("stream.watermark_lag_seconds", "R1")] == 0.0
        assert by_name[("stream.watermark_frontier", None)] == 4.0
        assert by_name[("stream.backlog_depth", None)] == 0.0


# -- detection / exposure / staleness, hand-computed --------------------------


class _Record:
    """Bare verdict record for driving the monitor directly."""

    _seq = 0

    def __init__(
        self, kind, at, ok, prefix=None, router=None,
        event_time=None, **attrs
    ):
        _Record._seq += 1
        self.seq = _Record._seq
        self.kind = kind
        self.at = at
        self.ok = ok
        self.prefix = prefix
        self.router = router
        self.event_time = event_time
        self.attrs = attrs


class TestContinuousMonitorSLIs:
    def _histogram(self, registry, name):
        for histogram in registry.histograms():
            if histogram.name == name:
                return histogram
        return None

    def test_detection_latency_from_first_suspect_update(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            # FIB update for P1 at t=10 makes the prefix suspect; the
            # failing verdict lands at t=12 → detection latency 2.0.
            monitor.on_event(_Event("FIB_UPDATE", "R1", 10.0, P1))
            monitor.on_verdict(
                _Record("incremental", 12.0, False, prefix=str(P1))
            )
            detection = self._histogram(
                registry, "verify.detection_latency_seconds"
            )
            assert detection.count == 1
            assert detection.sum == pytest.approx(2.0)
            assert monitor.detections == 1
            assert monitor.exposed_prefixes() == [str(P1)]

    def test_exposure_closes_on_pass_verdict(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("FIB_UPDATE", "R1", 10.0, P1))
            monitor.on_verdict(
                _Record("incremental", 12.0, False, prefix=str(P1))
            )
            monitor.on_verdict(
                _Record("incremental", 30.0, True, prefix=str(P1))
            )
            exposure = self._histogram(registry, "verify.exposure_seconds")
            assert exposure.count == 1
            assert exposure.sum == pytest.approx(18.0)  # 30 - 12
            assert monitor.exposed_prefixes() == []
            assert monitor.exposures_closed == 1

    def test_detection_counted_once_while_failure_stays_open(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("FIB_UPDATE", "R1", 10.0, P1))
            for at in (12.0, 13.0, 14.0):
                monitor.on_verdict(
                    _Record("incremental", at, False, prefix=str(P1))
                )
            detection = self._histogram(
                registry, "verify.detection_latency_seconds"
            )
            assert detection.count == 1
            assert monitor.detections == 1

    def test_rollback_closes_every_open_exposure(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("FIB_UPDATE", "R1", 1.0, P1))
            monitor.on_event(_Event("FIB_UPDATE", "R2", 2.0, P2))
            monitor.on_verdict(
                _Record("incremental", 5.0, False, prefix=str(P1))
            )
            monitor.on_verdict(
                _Record("incremental", 6.0, False, prefix=str(P2))
            )
            monitor.on_verdict(_Record("rollback", 20.0, True))
            exposure = self._histogram(registry, "verify.exposure_seconds")
            assert exposure.count == 2
            assert exposure.sum == pytest.approx((20 - 5) + (20 - 6))
            assert monitor.exposed_prefixes() == []

    def test_snapshot_failure_opens_prefixes_it_names(self):
        with obs.capturing() as (_registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_verdict(
                _Record(
                    "snapshot",
                    8.0,
                    False,
                    violation_detail=[
                        {"policy": "loop", "prefix": str(P1), "router": "R1"}
                    ],
                )
            )
            assert monitor.exposed_prefixes() == [str(P1)]
            monitor.on_verdict(_Record("snapshot", 9.0, True))
            assert monitor.exposed_prefixes() == []

    def test_staleness_is_event_frontier_minus_verdict_time(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("RIB_UPDATE", "R1", 50.0))
            monitor.on_verdict(_Record("snapshot", 47.0, True))
            staleness = self._histogram(
                registry, "verify.verdict_staleness_seconds"
            )
            assert staleness.count == 1
            assert staleness.sum == pytest.approx(3.0)

    def test_green_plane_resets_stale_router_fail_gauges(self):
        with obs.capturing() as (registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("FIB_UPDATE", "R2", 1.0, P1))
            monitor.on_verdict(
                _Record(
                    "incremental", 2.0, False, prefix=str(P1), router="R2"
                )
            )
            # The cure arrives on a different router's update.
            monitor.on_verdict(
                _Record(
                    "incremental", 5.0, True, prefix=str(P1), router="R1"
                )
            )
            ok_by_router = {
                dict(g.labels).get("router"): g.value
                for g in registry.gauges()
                if g.name == "verify.last_verdict_ok"
            }
        assert ok_by_router["R2"] == 1.0

    def test_overlapping_update_marks_tracked_neighbours_suspect(self):
        wide = Prefix.parse("203.0.113.0/24")
        narrow = Prefix.parse("203.0.113.0/25")
        with obs.capturing() as (_registry, _tracer):
            monitor = ContinuousMonitor()
            monitor.on_event(_Event("FIB_UPDATE", "R1", 1.0, wide))
            monitor.on_verdict(
                _Record("incremental", 1.0, True, prefix=str(wide))
            )
            # A /25 update shares atoms with the /24: both suspect.
            monitor.on_event(_Event("FIB_UPDATE", "R1", 7.0, narrow))
            assert set(monitor._suspect) == {str(wide), str(narrow)}


# -- the planted-violation replay (fig2, end to end) --------------------------


class TestPlantedViolationReplay:
    def test_ledger_records_failure_and_recovery_with_provenance(
        self, tmp_path
    ):
        from repro.cli import _run_continuous_replay
        from repro.scenarios.paper_net import P

        path = str(tmp_path / "verdicts.jsonl")
        obs.enable()
        obs.enable_verdicts(path=path)
        try:
            _net, verifier, monitor = _run_continuous_replay(
                "fig2", seed=0, repair=True
            )
            ledger = obs.get_verdicts()
            ledger.flush()
            records = ledger.records()
            registry = obs.get_registry()

            failing = [
                r
                for r in records
                if not r.ok
                and r.kind == "incremental"
                and r.prefix == str(P)
            ]
            assert failing, "planted violation never produced a verdict"
            # Provenance refs tie the verdict back to HBG event ids.
            assert all(r.refs for r in failing)
            assert all(r.event_id in r.refs for r in failing)

            rollbacks = [r for r in records if r.kind == "rollback"]
            assert len(rollbacks) == 1 and rollbacks[0].ok
            assert rollbacks[0].refs, "rollback lost its root-cause refs"
            # Recovery really happened: nothing left exposed, and the
            # plane passes after the rollback.
            assert monitor.exposed_prefixes() == []
            assert not verifier.violations()

            # The exposure histogram matches the ledger's own timeline:
            # every close is bounded by first-failure → rollback.
            exposure = next(
                h
                for h in registry.histograms()
                if h.name == "verify.exposure_seconds"
            )
            assert exposure.count >= 1
            longest = max(
                rollbacks[0].at - r.at for r in failing
            )
            assert exposure.max <= longest + 1e-9

            detection = next(
                h
                for h in registry.histograms()
                if h.name == "verify.detection_latency_seconds"
            )
            assert detection.count >= 1

            # Every verdict carries the watermark frontier it was
            # judged against.
            assert all(r.frontier for r in records)

            # And the JSONL on disk is the same story.
            rows = [
                json.loads(line)
                for line in open(path).read().splitlines()
            ]
            assert len(rows) == len(records) == ledger.appended_total
            assert {row["kind"] for row in rows} >= {
                "incremental",
                "rollback",
            }
        finally:
            obs.disable_verdicts()
            obs.disable()


# -- the watch renderer -------------------------------------------------------


class TestWatchTable:
    def test_renders_router_rows_and_headlines(self):
        with obs.capturing() as (registry, _tracer):
            registry.gauge("stream.watermark_frontier").set(12.5)
            registry.gauge("stream.backlog_depth").set(3)
            registry.gauge("verify.exposed_prefixes").set(1)
            registry.gauge(
                "stream.watermark_lag_seconds", router="R1"
            ).set(0.25)
            registry.gauge("verify.last_verdict_ok", router="R1").set(0.0)
            registry.gauge("verify.last_verdict_ok", router="R2").set(1.0)
            registry.histogram(
                "verify.detection_latency_seconds"
            ).observe(1.5)
            table = render_watch_table(registry)
        lines = table.splitlines()
        assert "frontier=12.500s" in lines[0]
        assert "backlog=3" in lines[0]
        assert "exposed_prefixes=1" in lines[0]
        assert "detection_p99=1.500s" in lines[1]
        r1 = next(l for l in lines if l.startswith("R1"))
        r2 = next(l for l in lines if l.startswith("R2"))
        assert r1.endswith("FAIL") and "0.250" in r1
        assert r2.endswith("ok")

    def test_ledger_tail_line_and_empty_fallback(self):
        ledger = VerdictLedger()
        ledger.record(
            kind="incremental", at=4.5, ok=False, prefix=str(P1)
        )
        with obs.capturing() as (registry, _tracer):
            table = render_watch_table(registry, ledger)
        assert f"last=#1 incremental FAIL {P1}" in table
        assert "(no routers reporting)" in table


# -- watch CLI ----------------------------------------------------------------


class TestWatchCommand:
    def test_fig2_watch_exits_clean_and_writes_ledger(
        self, tmp_path, capsys
    ):
        from repro.cli import main as cli_main

        path = str(tmp_path / "watch.jsonl")
        code = cli_main(["watch", "--verdict-ledger", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "ROUTER" in out and "VERDICT" in out
        assert "still exposed" in out
        rows = [
            json.loads(line) for line in open(path).read().splitlines()
        ]
        assert any(r["kind"] == "rollback" for r in rows)

    def test_no_repair_leaves_exposures_open(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        code = cli_main(["watch", "--no-repair"])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 still exposed" in out

    def test_unknown_scenario_rejected(self, capsys):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["watch", "--scenario", "nope"])
