"""Tests for the OSPF engine: LSDB, flooding acceptance, SPF."""

import networkx as nx
import pytest

from repro.net.addr import Prefix, parse_ip
from repro.protocols.messages import LinkStateAdvertisement
from repro.protocols.ospf import OspfProcess


def _lsa(origin, seq, adjacencies, stubs=()):
    return LinkStateAdvertisement(
        origin=origin,
        seq=seq,
        adjacencies=tuple(adjacencies),
        stub_prefixes=tuple(stubs),
    )


def _loopback(i):
    return (Prefix(parse_ip("192.168.0.1") + i, 32), 0)


def _build_triangle():
    """R0 - R1 - R2 triangle with cost-10 links and loopback stubs."""
    p0 = OspfProcess("R0")
    p0.originate([("R1", 10), ("R2", 10)], [_loopback(0)])
    for proc, origin, adj, stub in (
        (p0, "R1", [("R0", 10), ("R2", 10)], _loopback(1)),
        (p0, "R2", [("R0", 10), ("R1", 10)], _loopback(2)),
    ):
        proc.accept(_lsa(origin, 1, adj, [stub]))
    return p0


class TestLsdb:
    def test_originate_bumps_sequence(self):
        proc = OspfProcess("R0")
        first = proc.originate([("R1", 10)], [])
        second = proc.originate([("R1", 10)], [])
        assert second.seq == first.seq + 1

    def test_accept_newer(self):
        proc = OspfProcess("R0")
        assert proc.accept(_lsa("R1", 1, [("R0", 10)]))
        assert proc.accept(_lsa("R1", 2, [("R0", 10)]))

    def test_reject_stale(self):
        proc = OspfProcess("R0")
        proc.accept(_lsa("R1", 5, [("R0", 10)]))
        assert not proc.accept(_lsa("R1", 4, [("R0", 10)]))
        assert not proc.accept(_lsa("R1", 5, [("R0", 10)]))

    def test_is_newer_than_cross_origin_rejected(self):
        with pytest.raises(ValueError):
            _lsa("R1", 1, []).is_newer_than(_lsa("R2", 1, []))


class TestSpf:
    def test_triangle_routes(self):
        proc = _build_triangle()
        routes = proc.run_spf()
        by_prefix = {r.prefix: r for r in routes}
        assert by_prefix[_loopback(1)[0]].next_hop_router == "R1"
        assert by_prefix[_loopback(2)[0]].next_hop_router == "R2"
        assert by_prefix[_loopback(1)[0]].metric == 10

    def test_one_way_adjacency_ignored(self):
        """A one-way claim must not attract traffic (OSPF two-way rule)."""
        proc = OspfProcess("R0")
        proc.originate([("R1", 10)], [])
        # R1 does not list R0 back.
        proc.accept(_lsa("R1", 1, [("R2", 10)], [_loopback(1)]))
        assert proc.run_spf() == []

    def test_shortest_path_chosen(self):
        proc = OspfProcess("R0")
        proc.originate([("R1", 1), ("R2", 10)], [])
        proc.accept(_lsa("R1", 1, [("R0", 1), ("R2", 1)], [_loopback(1)]))
        proc.accept(_lsa("R2", 1, [("R0", 10), ("R1", 1)], [_loopback(2)]))
        routes = {r.prefix: r for r in proc.run_spf()}
        # R0 -> R2 via R1 (cost 2) beats direct (cost 10).
        assert routes[_loopback(2)[0]].next_hop_router == "R1"
        assert routes[_loopback(2)[0]].metric == 2

    def test_stub_cost_added(self):
        proc = OspfProcess("R0")
        proc.originate([("R1", 10)], [])
        stub = (Prefix.parse("10.9.0.0/24"), 5)
        proc.accept(_lsa("R1", 1, [("R0", 10)], [stub]))
        routes = {r.prefix: r for r in proc.run_spf()}
        assert routes[stub[0]].metric == 15

    def test_spf_matches_networkx(self):
        """SPF distances agree with networkx Dijkstra on a random graph."""
        import random

        rng = random.Random(5)
        n = 12
        graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=5)
        costs = {}
        for a, b in graph.edges:
            costs[(a, b)] = costs[(b, a)] = rng.randint(1, 20)
        proc = OspfProcess("R0")
        for node in graph.nodes:
            adj = [(f"R{m}", costs[(node, m)]) for m in graph.neighbors(node)]
            stub = [_loopback(node)]
            if node == 0:
                proc.originate(adj, stub)
            else:
                proc.accept(_lsa(f"R{node}", 1, adj, stub))
        routes = {r.prefix: r for r in proc.run_spf()}
        lengths = nx.single_source_dijkstra_path_length(
            graph, 0, weight=lambda a, b, d: costs[(a, b)]
        )
        for node in graph.nodes:
            if node == 0:
                continue
            prefix = _loopback(node)[0]
            assert routes[prefix].metric == lengths[node]

    def test_reachable_routers(self):
        proc = _build_triangle()
        assert proc.reachable_routers() == {"R0", "R1", "R2"}

    def test_metric_to_router(self):
        proc = _build_triangle()
        assert proc.metric_to_router("R1") == 10
        assert proc.metric_to_router("R9") is None

    def test_partition_detected(self):
        proc = OspfProcess("R0")
        proc.originate([("R1", 10)], [])
        proc.accept(_lsa("R1", 1, [("R0", 10)], [_loopback(1)]))
        # R5/R6 form their own island.
        proc.accept(_lsa("R5", 1, [("R6", 1)], [_loopback(5)]))
        proc.accept(_lsa("R6", 1, [("R5", 1)], [_loopback(6)]))
        routes = {r.prefix for r in proc.run_spf()}
        assert _loopback(1)[0] in routes
        assert _loopback(5)[0] not in routes
