"""Tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import DelayModel, Event, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_broken_by_priority_then_seq(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("normal"), priority=10)
        sim.schedule(1.0, lambda: fired.append("urgent"), priority=1)
        sim.schedule(1.0, lambda: fired.append("second-normal"), priority=10)
        sim.run()
        assert fired == ["urgent", "normal", "second-normal"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 1.5)]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending() == 1

    def test_run_advances_clock_to_until_when_idle(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule(0.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_trace_hook_sees_events(self):
        sim = Simulator()
        seen = []
        sim.trace_hook = lambda event: seen.append(event.label)
        sim.schedule(1.0, lambda: None, label="a")
        sim.run()
        assert seen == ["a"]

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        event = sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0
        event.cancel()
        assert sim.peek_time() is None

    def test_run_until_quiescent(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: fired.append(1))
        end = sim.run_until_quiescent()
        assert fired == [1]
        assert end == pytest.approx(0.5)


class TestDeterminism:
    def test_same_seed_same_jitter(self):
        a = Simulator(seed=42)
        b = Simulator(seed=42)
        assert [a.jitter(1.0) for _ in range(10)] == [
            b.jitter(1.0) for _ in range(10)
        ]

    def test_different_seed_different_jitter(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert [a.jitter(1.0) for _ in range(5)] != [
            b.jitter(1.0) for _ in range(5)
        ]

    def test_jitter_bounds(self):
        sim = Simulator(seed=0)
        for _ in range(100):
            value = sim.jitter(1.0, fraction=0.1)
            assert 0.9 <= value <= 1.1

    def test_jitter_zero_base(self):
        assert Simulator().jitter(0.0) == 0.0

    def test_jitter_negative_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().jitter(-1.0)


class TestDelayModel:
    def test_defaults_positive(self):
        model = DelayModel()
        assert model.fib_install > 0
        assert model.config_to_reconfig > 0

    def test_instant(self):
        model = DelayModel.instant()
        assert model.fib_install == 0.0
        assert model.config_to_reconfig == 0.0

    def test_paper_fig5_constants(self):
        model = DelayModel.paper_fig5()
        assert model.config_to_reconfig == pytest.approx(25.0)
        assert model.fib_install == pytest.approx(0.004)
        assert model.advertisement == pytest.approx(0.004)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            DelayModel(fib_install=-0.1)
