"""Tests for RIB layers (repro.protocols.rib) and route records."""

import pytest

from repro.net.addr import Prefix
from repro.protocols.rib import BgpRib, OspfRib
from repro.protocols.routes import BgpRoute, ConnectedRoute, OspfRoute, Origin

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


def _route(prefix=P, **kwargs):
    defaults = dict(prefix=prefix, next_hop=1, from_peer="X")
    defaults.update(kwargs)
    return BgpRoute(**defaults)


class TestBgpRibAdjIn:
    def test_update_then_paths_for(self):
        rib = BgpRib()
        rib.update_in("X", _route())
        assert len(rib.paths_for(P)) == 1

    def test_update_replaces_same_path_id(self):
        rib = BgpRib()
        rib.update_in("X", _route(local_pref=10))
        rib.update_in("X", _route(local_pref=20))
        paths = rib.paths_for(P)
        assert len(paths) == 1 and paths[0].local_pref == 20

    def test_add_path_keeps_distinct_ids(self):
        rib = BgpRib(add_path=True)
        rib.update_in("X", _route(path_id=0))
        rib.update_in("X", _route(path_id=1, next_hop=2))
        assert len(rib.paths_for(P)) == 2

    def test_paths_accumulate_across_peers(self):
        rib = BgpRib()
        rib.update_in("X", _route())
        rib.update_in("Y", _route(from_peer="Y", next_hop=2))
        assert len(rib.paths_for(P)) == 2

    def test_withdraw_in(self):
        rib = BgpRib()
        rib.update_in("X", _route())
        assert rib.withdraw_in("X", P)
        assert rib.paths_for(P) == []

    def test_withdraw_missing_returns_false(self):
        assert not BgpRib().withdraw_in("X", P)

    def test_withdraw_specific_path_id(self):
        rib = BgpRib(add_path=True)
        rib.update_in("X", _route(path_id=0))
        rib.update_in("X", _route(path_id=1, next_hop=2))
        assert rib.withdraw_in("X", P, path_id=1)
        remaining = rib.paths_for(P)
        assert len(remaining) == 1 and remaining[0].path_id == 0

    def test_drop_peer_returns_prefixes(self):
        rib = BgpRib()
        rib.update_in("X", _route())
        rib.update_in("X", _route(prefix=Q))
        assert rib.drop_peer("X") == sorted([P, Q])
        assert rib.paths_for(P) == []

    def test_known_prefixes(self):
        rib = BgpRib()
        rib.update_in("X", _route())
        rib.set_best(_route(prefix=Q))
        assert rib.known_prefixes() == {P, Q}


class TestBgpRibLoc:
    def test_set_best_returns_old(self):
        rib = BgpRib()
        first = _route(local_pref=10)
        second = _route(local_pref=20)
        assert rib.set_best(first) is None
        assert rib.set_best(second) == first
        assert rib.best(P) == second

    def test_clear_best(self):
        rib = BgpRib()
        rib.set_best(_route())
        assert rib.clear_best(P) is not None
        assert rib.best(P) is None

    def test_loc_rib_copy(self):
        rib = BgpRib()
        rib.set_best(_route())
        loc = rib.loc_rib()
        loc.clear()
        assert rib.best(P) is not None


class TestBgpRibAdjOut:
    def test_record_and_read(self):
        rib = BgpRib()
        routes = (_route(),)
        rib.record_advertised("X", P, routes)
        assert rib.last_advertised("X", P) == routes

    def test_empty_tuple_clears(self):
        rib = BgpRib()
        rib.record_advertised("X", P, (_route(),))
        rib.record_advertised("X", P, ())
        assert rib.last_advertised("X", P) == ()

    def test_record_withdrawn(self):
        rib = BgpRib()
        rib.record_advertised("X", P, (_route(),))
        withdrawn = rib.record_withdrawn("X", P)
        assert len(withdrawn) == 1
        assert rib.last_advertised("X", P) == ()

    def test_advertised_prefixes(self):
        rib = BgpRib()
        rib.record_advertised("X", P, (_route(),))
        rib.record_advertised("X", Q, (_route(prefix=Q),))
        assert rib.advertised_prefixes("X") == sorted([P, Q])


class TestOspfRib:
    def _r(self, prefix=P, metric=10, hop="R2"):
        return OspfRoute(prefix=prefix, next_hop=0, next_hop_router=hop, metric=metric)

    def test_replace_all_diff(self):
        rib = OspfRib()
        added, removed, changed = rib.replace_all([self._r()])
        assert len(added) == 1 and not removed and not changed

    def test_replace_detects_removal(self):
        rib = OspfRib()
        rib.replace_all([self._r()])
        added, removed, changed = rib.replace_all([])
        assert not added and len(removed) == 1 and not changed

    def test_replace_detects_change(self):
        rib = OspfRib()
        rib.replace_all([self._r(metric=10)])
        added, removed, changed = rib.replace_all([self._r(metric=20)])
        assert not added and not removed and len(changed) == 1
        old, new = changed[0]
        assert old.metric == 10 and new.metric == 20

    def test_replace_keeps_lowest_metric_duplicate(self):
        rib = OspfRib()
        rib.replace_all([self._r(metric=20), self._r(metric=5, hop="R3")])
        assert rib.get(P).metric == 5

    def test_metric_to(self):
        rib = OspfRib()
        rib.replace_all([self._r(metric=7)])
        assert rib.metric_to(P.first_address()) == 7
        assert rib.metric_to(Q.first_address()) is None

    def test_metric_to_prefers_specific(self):
        rib = OspfRib()
        wide = OspfRoute(
            prefix=Prefix.parse("203.0.0.0/16"),
            next_hop=0,
            next_hop_router="R2",
            metric=50,
        )
        rib.replace_all([wide, self._r(metric=7)])
        assert rib.metric_to(P.first_address()) == 7


class TestRouteRecords:
    def test_bgp_rib_protocol_split(self):
        assert _route(ebgp_learned=True).rib_protocol == "ebgp"
        assert _route(ebgp_learned=False).rib_protocol == "ibgp"
        assert _route(locally_originated=True).rib_protocol == "ebgp"

    def test_neighbor_as_from_path(self):
        assert _route(as_path=(65001, 65002)).neighbor_as() == 65001

    def test_neighbor_as_fallback_to_peer(self):
        assert _route(as_path=(), peer_asn=65009).neighbor_as() == 65009

    def test_with_igp_metric(self):
        assert _route().with_igp_metric(42).igp_metric == 42

    def test_origin_ordering(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE

    def test_describe_mentions_essentials(self):
        text = _route(local_pref=30).describe()
        assert "lp=30" in text and str(P) in text

    def test_connected_route_str(self):
        route = ConnectedRoute(prefix=P, interface="eth0")
        assert "eth0" in str(route)
