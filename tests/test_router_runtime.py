"""Tests for the router runtime: event flows on small networks.

These tests exercise the causal invariants the paper's HBR rules
assume: receive→RIB→FIB→send ordering, config→soft-reconfig,
hardware→withdrawal, and the ground-truth wiring between them.
"""

import pytest

from repro.capture.io_events import IOKind, RouteAction
from repro.net.simulator import DelayModel
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P, build_paper_network


@pytest.fixture
def started(fast_delays):
    net = build_paper_network(seed=0, delays=fast_delays)
    net.start()
    return net


class TestStartup:
    def test_connected_routes_installed(self, started):
        r1 = started.runtime("R1")
        for link in started.topology.links_of("R1"):
            iface = link.interface_of("R1")
            entry = r1.fib.get(iface.prefix)
            assert entry is not None and entry.protocol == "connected"

    def test_loopback_installed(self, started):
        r1 = started.runtime("R1")
        loopback = started.topology.router("R1").loopback
        assert r1.fib.lookup(loopback) is not None

    def test_external_events_not_captured(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        assert all(e.router != "Ext1" for e in started.collector)

    def test_start_twice_rejected(self, started):
        with pytest.raises(Exception):
            started.start()


class TestReceiveFlow:
    def test_event_chain_order(self, started):
        """ROUTE_RECEIVE < RIB_UPDATE < FIB_UPDATE < ROUTE_SEND on R1."""
        started.announce_prefix("Ext1", P)
        started.run(5)
        events = started.collector.query(router="R1", prefix=P)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, event)
        recv = by_kind[IOKind.ROUTE_RECEIVE]
        rib = by_kind[IOKind.RIB_UPDATE]
        fib = by_kind[IOKind.FIB_UPDATE]
        send = by_kind[IOKind.ROUTE_SEND]
        assert recv.timestamp <= rib.timestamp <= fib.timestamp <= send.timestamp

    def test_fib_before_send_strict(self, started):
        """The Fig. 1c property: FIB installed before advertising."""
        started.announce_prefix("Ext1", P)
        started.run(5)
        for router in ("R1", "R2", "R3"):
            fibs = started.collector.query(
                router=router, kind=IOKind.FIB_UPDATE, prefix=P
            )
            sends = started.collector.query(
                router=router, kind=IOKind.ROUTE_SEND, prefix=P
            )
            if fibs and sends:
                assert min(f.timestamp for f in fibs) <= min(
                    s.timestamp for s in sends
                )

    def test_ground_truth_chain(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        fib = started.collector.query(
            router="R3", kind=IOKind.FIB_UPDATE, prefix=P
        )[0]
        ancestors = started.ground_truth.transitive_causes(fib.event_id)
        observable = [
            started.collector.get(i)
            for i in ancestors
            if started.collector.has(i)
        ]
        # R3's FIB entry causally descends from R1's receive from Ext1
        # (the true leaves are Ext1's unobservable events).
        assert any(
            e.router == "R1" and e.kind is IOKind.ROUTE_RECEIVE
            for e in observable
        )
        roots = started.ground_truth.root_causes(fib.event_id)
        assert roots and all(not started.collector.has(i) for i in roots)

    def test_ibgp_learned_not_readvertised_to_ibgp(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        # R3 learned P from R1 via iBGP; it must not send it to R2.
        sends = started.collector.query(
            router="R3", kind=IOKind.ROUTE_SEND, prefix=P, protocol="bgp"
        )
        assert sends == []

    def test_local_pref_applied_at_import(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        best = started.runtime("R1").bgp.rib.best(P)
        assert best is not None and best.local_pref == 20


class TestWithdrawFlow:
    def test_withdraw_propagates(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        started.withdraw_prefix("Ext1", P)
        started.run(5)
        for router in ("R1", "R2", "R3"):
            assert started.runtime(router).fib.get(P) is None

    def test_withdraw_events_logged(self, started):
        started.announce_prefix("Ext1", P)
        started.run(5)
        started.withdraw_prefix("Ext1", P)
        started.run(5)
        withdraws = started.collector.query(
            kind=IOKind.FIB_UPDATE, prefix=P, action=RouteAction.WITHDRAW
        )
        assert {e.router for e in withdraws} == {"R1", "R2", "R3"}

    def test_failover_to_second_uplink(self, started):
        started.announce_prefix("Ext1", P)
        started.announce_prefix("Ext2", P)
        started.run(5)
        assert started.trace_path("R3", P.first_address())[0][-1] == "Ext2"
        started.withdraw_prefix("Ext2", P)
        started.run(5)
        path, outcome = started.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext1"


class TestConfigFlow:
    def test_config_event_logged(self, started):
        from repro.scenarios.fig2 import bad_lp_change

        started.announce_prefix("Ext2", P)
        started.run(5)
        started.apply_config_change(bad_lp_change())
        started.run(5)
        configs = started.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )
        assert len(configs) == 1
        assert configs[0].attr("change_id") is not None

    def test_soft_reconfig_changes_rib(self, started):
        from repro.scenarios.fig2 import bad_lp_change

        started.announce_prefix("Ext2", P)
        started.run(5)
        assert started.runtime("R2").bgp.rib.best(P).local_pref == 30
        started.apply_config_change(bad_lp_change())
        started.run(5)
        assert started.runtime("R2").bgp.rib.best(P).local_pref == 10

    def test_soft_reconfig_delay_respected(self):
        delays = DelayModel(
            fib_install=0.001,
            rib_update=0.0005,
            advertisement=0.001,
            config_to_reconfig=10.0,
            spf_compute=0.001,
        )
        net = build_paper_network(seed=0, delays=delays)
        net.start()
        net.announce_prefix("Ext2", P)
        net.run(5)
        from repro.scenarios.fig2 import bad_lp_change

        t_change = net.sim.now
        net.apply_config_change(bad_lp_change())
        net.run(20)
        ribs = [
            e
            for e in net.collector.query(router="R2", kind=IOKind.RIB_UPDATE)
            if e.timestamp > t_change
        ]
        assert ribs and all(e.timestamp >= t_change + 9.0 for e in ribs)


class TestHardwareFlow:
    def test_link_down_hw_events_both_ends(self, started):
        started.fail_link("R1", "R2")
        started.run(1)
        hw = started.collector.query(kind=IOKind.HARDWARE_STATUS)
        assert {e.router for e in hw} == {"R1", "R2"}

    def test_uplink_failure_withdraws_route(self, started):
        started.announce_prefix("Ext2", P)
        started.run(5)
        started.fail_link("R2", "Ext2")
        started.run(5)
        assert started.runtime("R2").bgp.rib.best(P) is None
        for router in ("R1", "R2", "R3"):
            assert started.runtime(router).fib.get(P) is None

    def test_uplink_failure_fails_over(self, started):
        started.announce_prefix("Ext1", P)
        started.announce_prefix("Ext2", P)
        started.run(5)
        started.fail_link("R2", "Ext2")
        started.run(5)
        path, outcome = started.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext1"

    def test_link_restore_resyncs(self, started):
        started.announce_prefix("Ext1", P)
        started.announce_prefix("Ext2", P)
        started.run(5)
        started.fail_link("R2", "Ext2")
        started.run(5)
        started.restore_link("R2", "Ext2")
        started.run(5)
        # Ext2 re-announces over the restored session; LP 30 wins again.
        path, outcome = started.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext2"

    def test_connected_route_removed_on_link_down(self, started):
        link = started.topology.link_between("R1", "R2")
        subnet = link.interface_of("R1").prefix
        assert started.runtime("R1").fib.get(subnet) is not None
        started.fail_link("R1", "R2")
        started.run(1)
        assert started.runtime("R1").fib.get(subnet) is None


class TestDeterminism:
    def test_same_seed_same_capture(self, fast_delays):
        def run(seed):
            scenario = Fig1Scenario(seed=seed, delays=fast_delays)
            net = scenario.run_fig1b()
            return [
                (e.router, e.kind.value, str(e.prefix), round(e.timestamp, 9))
                for e in net.collector
            ]

        assert run(3) == run(3)

    def test_different_seed_different_timing(self, fast_delays):
        def run(seed):
            scenario = Fig1Scenario(seed=seed, delays=fast_delays)
            net = scenario.run_fig1b()
            return [round(e.timestamp, 9) for e in net.collector]

        assert run(1) != run(2)
