"""End-to-end integration tests combining every layer on nontrivial
networks: simulator -> capture -> inference -> snapshot -> verify ->
provenance -> repair."""

import pytest

from repro.capture.io_events import IOKind
from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.hbr.inference import InferenceEngine, score_inference
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
    misconfig_campaign,
)
from repro.snapshot.base import DataPlaneSnapshot, VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.policy import (
    BlackholeFreedomPolicy,
    LoopFreedomPolicy,
    PreferredExitPolicy,
)
from repro.verify.verifier import DataPlaneVerifier


class TestChurnUnderVerification:
    def test_consistent_snapshots_never_false_alarm(self):
        """Under random churn with laggy log delivery, HBG-consistent
        snapshots raise zero loop alarms (the network is loop-free
        throughout — only reconstruction artefacts could alarm)."""
        net, specs = build_random_network(6, uplinks=2, seed=11)
        net.start()
        prefixes = external_prefixes(4)
        churn_workload(net, specs, prefixes, events=12, start=2.0, seed=11)
        net.run(40)
        lags = {"R1": 0.3, "R3": 0.7}
        view = VerifierView(net.collector, lags=lags)
        snapshotter = ConsistentSnapshotter(
            view, internal_routers=net.topology.internal_routers()
        )
        verifier = DataPlaneVerifier(
            net.topology, [LoopFreedomPolicy(prefixes=prefixes)]
        )
        t = 2.0
        alarms = 0
        while t < 12.0:
            snapshot, report = snapshotter.snapshot(t)
            if report.consistent:
                result = verifier.verify(snapshot)
                alarms += len(result.violations)
            t += 0.25
        assert alarms == 0

    def test_naive_snapshots_do_false_alarm_somewhere(self):
        """Across seeds and lags, the naive snapshotter eventually
        reports a phantom anomaly the oracle denies."""
        phantom_total = 0
        for seed in (3, 11, 19):
            net, specs = build_random_network(6, uplinks=2, seed=seed)
            net.start()
            prefixes = external_prefixes(4)
            churn_workload(net, specs, prefixes, events=12, start=2.0, seed=seed)
            net.run(40)
            view = VerifierView(
                net.collector, lags={"R1": 0.3, "R3": 0.7}
            )
            naive = NaiveSnapshotter(view)
            verifier = DataPlaneVerifier(
                net.topology,
                [
                    LoopFreedomPolicy(prefixes=prefixes),
                    BlackholeFreedomPolicy(prefixes=prefixes),
                ],
            )
            t = 2.0
            while t < 12.0:
                result = verifier.verify(naive.snapshot(t))
                phantom_total += len(result.violations)
                t += 0.25
        assert phantom_total > 0

    def test_inference_quality_on_churn(self):
        net, specs = build_random_network(7, uplinks=2, seed=23)
        net.start()
        churn_workload(
            net, specs, external_prefixes(5), events=15, start=2.0, seed=23
        )
        net.run(60)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        obs = {e.event_id for e in net.collector}
        score = score_inference(graph, net.ground_truth, observable_ids=obs)
        assert score.recall >= 0.95
        assert score.precision >= 0.75


class TestPipelineOnRandomNetworks:
    def test_guard_protects_preferred_exit(self):
        net, specs = build_random_network(6, uplinks=2, seed=31)
        net.start()
        prefix = external_prefixes(1)[0]
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
        net.run(30)
        preferred = max(specs, key=lambda s: s.local_pref)
        fallback = min(specs, key=lambda s: s.local_pref)
        policy = PreferredExitPolicy(
            prefix=prefix,
            preferred_exit=preferred.router,
            fallback_exit=fallback.router,
            uplink_of={
                preferred.router: preferred.external,
                fallback.router: fallback.external,
            },
        )
        pipeline = IntegratedControlPlane(
            net, [policy], mode=PipelineMode.REPAIR
        ).arm()
        # Sabotage the preferred uplink's local-pref.
        from repro.net.config import ConfigChange, local_pref_map

        map_name = f"{preferred.router.lower()}-uplink-lp"
        net.apply_config_change(
            ConfigChange(
                preferred.router,
                "set_route_map",
                key=map_name,
                value=local_pref_map(map_name, 1),
                description="sabotage preferred uplink",
            )
        )
        net.run(60)
        assert pipeline.updates_blocked >= 1
        lp = net.configs.get(preferred.router).route_maps[map_name]
        assert lp.clauses[0].set_local_pref == preferred.local_pref
        for router in net.topology.internal_routers():
            path, outcome = net.trace_path(router, prefix.first_address())
            assert outcome == "delivered"
            assert path[-1] == preferred.external

    def test_monitor_mode_observes_campaign(self):
        net, specs = build_random_network(5, uplinks=2, seed=37)
        net.start()
        prefix = external_prefixes(1)[0]
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
        net.run(30)
        preferred = max(specs, key=lambda s: s.local_pref)
        fallback = min(specs, key=lambda s: s.local_pref)
        policy = PreferredExitPolicy(
            prefix=prefix,
            preferred_exit=preferred.router,
            fallback_exit=fallback.router,
            uplink_of={
                preferred.router: preferred.external,
                fallback.router: fallback.external,
            },
        )
        pipeline = IntegratedControlPlane(
            net, [policy], mode=PipelineMode.MONITOR
        ).arm()
        for change in misconfig_campaign(specs, rounds=4, seed=37):
            net.apply_config_change(change)
            net.run(30)
        # Nothing blocked, everything checked.
        assert pipeline.updates_blocked == 0
        assert pipeline.updates_checked >= 1


class TestOracleAgreement:
    def test_snapshot_reconstruction_agrees_with_oracle_at_quiescence(self):
        net, specs = build_random_network(6, uplinks=2, seed=41)
        net.start()
        prefixes = external_prefixes(3)
        for prefix in prefixes:
            for spec in specs:
                net.announce_prefix(spec.external, prefix)
        net.run(40)
        view = VerifierView(net.collector)
        reconstructed = NaiveSnapshotter(view).snapshot(net.sim.now)
        oracle = DataPlaneSnapshot.from_live_network(net)
        for prefix in prefixes:
            for router in net.topology.internal_routers():
                a = oracle.entry(router, prefix)
                b = reconstructed.entry(router, prefix)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.next_hop_router == b.next_hop_router
