"""Tests for repro.net.topology."""

import pytest

from repro.net.addr import Prefix, parse_ip
from repro.net.topology import (
    Interface,
    Link,
    Router,
    Topology,
    TopologyError,
    full_mesh_topology,
    grid_topology,
    line_topology,
    paper_prefix,
    paper_topology,
    ring_topology,
)


def _iface(router, name, addr, subnet):
    return Interface(router, name, parse_ip(addr), Prefix.parse(subnet))


class TestInterface:
    def test_address_must_be_in_prefix(self):
        with pytest.raises(TopologyError):
            _iface("R1", "eth0", "11.0.0.1", "10.0.0.0/30")

    def test_str(self):
        iface = _iface("R1", "eth0", "10.0.0.1", "10.0.0.0/30")
        assert "R1:eth0" in str(iface)


class TestLink:
    def test_rejects_self_link(self):
        a = _iface("R1", "eth0", "10.0.0.1", "10.0.0.0/30")
        with pytest.raises(TopologyError):
            Link(a, a)

    def test_rejects_negative_delay(self):
        a = _iface("R1", "eth0", "10.0.0.1", "10.0.0.0/30")
        b = _iface("R2", "eth0", "10.0.0.2", "10.0.0.0/30")
        with pytest.raises(TopologyError):
            Link(a, b, delay=-1)

    def test_other_end(self):
        a = _iface("R1", "eth0", "10.0.0.1", "10.0.0.0/30")
        b = _iface("R2", "eth0", "10.0.0.2", "10.0.0.0/30")
        link = Link(a, b)
        assert link.other_end("R1").router == "R2"
        assert link.interface_of("R2") is b

    def test_other_end_unknown_router(self):
        a = _iface("R1", "eth0", "10.0.0.1", "10.0.0.0/30")
        b = _iface("R2", "eth0", "10.0.0.2", "10.0.0.0/30")
        with pytest.raises(TopologyError):
            Link(a, b).other_end("R9")


class TestTopology:
    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        with pytest.raises(TopologyError):
            topo.add_router(Router("R1"))

    def test_unknown_router_lookup(self):
        with pytest.raises(TopologyError):
            Topology().router("R1")

    def test_connect_assigns_addresses(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        topo.add_router(Router("R2"))
        link = topo.connect("R1", "R2", Prefix.parse("10.0.0.0/30"))
        assert link.a.address == parse_ip("10.0.0.0")
        assert link.b.address == parse_ip("10.0.0.1")

    def test_connect_rejects_tiny_subnet(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        topo.add_router(Router("R2"))
        with pytest.raises(TopologyError):
            topo.connect("R1", "R2", Prefix.parse("10.0.0.0/32"))

    def test_neighbors_respects_link_state(self):
        topo = line_topology(3)
        assert topo.neighbors("R1") == ["R0", "R2"]
        topo.link_between("R0", "R1").up = False
        assert topo.neighbors("R1") == ["R2"]
        assert set(topo.neighbors("R1", only_up=False)) == {"R0", "R2"}

    def test_link_between(self):
        topo = line_topology(3)
        assert topo.link_between("R0", "R1") is not None
        assert topo.link_between("R0", "R2") is None

    def test_internal_external_split(self):
        topo = paper_topology()
        assert topo.internal_routers() == ["R1", "R2", "R3"]
        assert topo.external_routers() == ["Ext1", "Ext2"]

    def test_owner_of_address(self):
        topo = paper_topology()
        link = topo.link_between("R1", "R2")
        assert topo.owner_of_address(link.a.address) == link.a.router

    def test_validate_clean_topology(self):
        assert paper_topology().validate() == []

    def test_validate_flags_isolated_router(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        topo.add_router(Router("R2"))
        problems = topo.validate()
        assert any("no links" in p for p in problems)


class TestBuilders:
    def test_line_counts(self):
        topo = line_topology(5)
        assert len(topo) == 5
        assert len(topo.links) == 4

    def test_line_needs_one_router(self):
        with pytest.raises(TopologyError):
            line_topology(0)

    def test_ring_counts(self):
        topo = ring_topology(5)
        assert len(topo.links) == 5
        assert "R0" in topo.neighbors("R4")

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_grid_counts(self):
        topo = grid_topology(3, 4)
        assert len(topo) == 12
        # 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
        assert len(topo.links) == 17

    def test_grid_corner_degree(self):
        topo = grid_topology(3, 3)
        assert len(topo.neighbors("R0_0")) == 2
        assert len(topo.neighbors("R1_1")) == 4

    def test_full_mesh_counts(self):
        topo = full_mesh_topology(4)
        assert len(topo.links) == 6
        for router in topo.internal_routers():
            assert len(topo.neighbors(router)) == 3

    def test_paper_topology_shape(self):
        topo = paper_topology()
        assert len(topo) == 5
        assert topo.link_between("R1", "Ext1") is not None
        assert topo.link_between("R2", "Ext2") is not None
        assert topo.link_between("R3", "Ext1") is None
        assert topo.router("Ext1").asn == 65001
        assert topo.router("R3").asn == 65000

    def test_paper_prefix(self):
        assert str(paper_prefix()) == "203.0.113.0/24"

    def test_builders_validate_clean(self):
        for topo in (
            line_topology(4),
            ring_topology(4),
            grid_topology(2, 3),
            full_mesh_topology(4),
        ):
            assert topo.validate() == []
