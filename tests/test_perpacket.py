"""Tests for per-packet verification (§5, footnote 4)."""

import pytest

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix
from repro.net.topology import paper_topology
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P
from repro.verify.perpacket import FibTimeline, PerPacketAnalyzer


def _fib_event(router, t, nh=None, action=RouteAction.ANNOUNCE, discard=False):
    return IOEvent.create(
        router,
        IOKind.FIB_UPDATE,
        t,
        protocol="ibgp",
        prefix=P,
        action=action,
        attrs={"next_hop_router": nh, "out_interface": "eth0", "discard": discard},
    )


class TestFibTimeline:
    def test_state_before_any_event_is_absent(self):
        timeline = FibTimeline("R1", P)
        timeline.add_event(_fib_event("R1", 5.0, nh="R2"))
        assert not timeline.state_at(4.0).present

    def test_state_after_install(self):
        timeline = FibTimeline("R1", P)
        timeline.add_event(_fib_event("R1", 5.0, nh="R2"))
        state = timeline.state_at(6.0)
        assert state.present and state.next_hop_router == "R2"

    def test_withdraw_creates_absent_interval(self):
        timeline = FibTimeline("R1", P)
        timeline.add_event(_fib_event("R1", 5.0, nh="R2"))
        timeline.add_event(_fib_event("R1", 7.0, action=RouteAction.WITHDRAW))
        assert timeline.state_at(6.0).present
        assert not timeline.state_at(8.0).present

    def test_out_of_order_insertion(self):
        timeline = FibTimeline("R1", P)
        timeline.add_event(_fib_event("R1", 7.0, nh="R3"))
        timeline.add_event(_fib_event("R1", 5.0, nh="R2"))
        assert timeline.state_at(6.0).next_hop_router == "R2"
        assert timeline.state_at(8.0).next_hop_router == "R3"

    def test_rejects_foreign_event(self):
        timeline = FibTimeline("R1", P)
        other = IOEvent.create("R1", IOKind.RIB_UPDATE, 1.0, prefix=P)
        with pytest.raises(ValueError):
            timeline.add_event(other)


class TestAnalyzerOnHandcraftedTimelines:
    def _analyzer(self, events):
        return PerPacketAnalyzer(events, paper_topology(), P)

    def test_simple_delivery(self):
        events = [
            _fib_event("R3", 1.0, nh="R2"),
            _fib_event("R2", 1.0, nh="Ext2"),
        ]
        analyzer = self._analyzer(events)
        journey = analyzer.trace("R3", 2.0)
        assert journey.outcome == "delivered"
        assert journey.path == ("R3", "R2", "Ext2")

    def test_hop_times_accumulate_link_delay(self):
        events = [
            _fib_event("R3", 1.0, nh="R2"),
            _fib_event("R2", 1.0, nh="Ext2"),
        ]
        analyzer = self._analyzer(events)
        journey = analyzer.trace("R3", 2.0)
        assert journey.hop_times[0] == 2.0
        assert journey.hop_times[1] > journey.hop_times[0]

    def test_packet_outruns_withdrawal(self):
        """A packet mid-flight encounters the *new* state downstream:
        R3 forwards at t=1.9 (old state), but by the time the packet
        reaches R2, R2 has already withdrawn — blackhole in transit,
        invisible to any instantaneous snapshot taken at 1.9."""
        events = [
            _fib_event("R3", 1.0, nh="R2"),
            # R2's entry vanishes at t=1.905, between the packet's two hops.
            _fib_event("R2", 1.0, nh="Ext2"),
            _fib_event("R2", 1.905, action=RouteAction.WITHDRAW),
        ]
        analyzer = self._analyzer(events)
        journey = analyzer.trace("R3", 1.9)  # link delay 8 ms
        assert journey.outcome == "blackhole"
        assert journey.path == ("R3", "R2")

    def test_transient_diagonal_loop_detected(self):
        """A loop that exists only across time: R1 points at R2 until
        t=2, then at Ext1; R2 points at R1 from t=2.  No instantaneous
        state contains a loop, but a packet can still bounce R1->R2
        ->R1 if it crosses the boundary — per-packet analysis sees it
        resolve (state changed between visits), confirming no true
        persistent loop."""
        events = [
            _fib_event("R1", 1.0, nh="R2"),
            _fib_event("R2", 1.0, nh="R1"),
            _fib_event("R1", 2.0, nh="Ext1"),
        ]
        analyzer = self._analyzer(events)
        # Inject just before R1's flip: R1(old)->R2->R1(new)->Ext1.
        journey = analyzer.trace("R1", 1.999)
        assert journey.outcome == "delivered"
        assert journey.path == ("R1", "R2", "R1", "Ext1")
        # Inject well before: the loop is real while both states are old.
        early = analyzer.trace("R1", 1.5)
        assert early.outcome == "loop"

    def test_discard_outcome(self):
        events = [_fib_event("R3", 1.0, discard=True)]
        analyzer = self._analyzer(events)
        assert analyzer.trace("R3", 2.0).outcome == "discard"

    def test_injection_times_cover_boundaries(self):
        events = [
            _fib_event("R3", 1.0, nh="R2"),
            _fib_event("R2", 1.5, nh="Ext2"),
        ]
        analyzer = self._analyzer(events)
        times = analyzer.injection_times((0.5, 3.0))
        assert times[0] == 0.5
        assert len(times) == 3  # start + two boundaries

    def test_distinct_journeys_deduplicated(self):
        events = [
            _fib_event("R3", 1.0, nh="R2"),
            _fib_event("R2", 1.0, nh="Ext2"),
        ]
        analyzer = self._analyzer(events)
        journeys = analyzer.distinct_journeys("R3", (0.5, 5.0))
        outcomes = [(j.path, j.outcome) for j in journeys]
        assert len(outcomes) == len(set(outcomes))


class TestOnRealCapture:
    def test_no_packet_ever_loops_during_fig1b(self, fast_delays):
        """The heart of footnote 4 + Fig. 1c: the naive snapshot claims
        a loop during convergence, yet no physically realisable packet
        ever loops."""
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        analyzer = PerPacketAnalyzer(
            net.collector.all_events(), net.topology, P
        )
        window = (scenario.t_r2_route - 0.05, scenario.t_converged + 0.05)
        assert not analyzer.ever_loops(window)

    def test_all_outcomes_during_convergence(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        analyzer = PerPacketAnalyzer(
            net.collector.all_events(), net.topology, P
        )
        window = (scenario.t_r2_route, scenario.t_converged)
        outcomes = analyzer.all_outcomes(window)
        for source in ("R1", "R2", "R3"):
            assert outcomes[source] <= {"delivered"}

    def test_journeys_shift_exit_during_convergence(self, fast_delays):
        """Across the window, packets from R3 exit via Ext1 early and
        Ext2 late — both journeys are enumerated."""
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        analyzer = PerPacketAnalyzer(
            net.collector.all_events(), net.topology, P
        )
        window = (scenario.t_r2_route - 0.1, scenario.t_converged + 0.1)
        journeys = analyzer.distinct_journeys("R3", window)
        exits = {j.path[-1] for j in journeys if j.outcome == "delivered"}
        assert exits == {"Ext1", "Ext2"}

    def test_per_packet_waypoint_check(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        analyzer = PerPacketAnalyzer(
            net.collector.all_events(), net.topology, P
        )
        # After convergence every delivered packet goes through R2.
        window = (scenario.t_converged, scenario.t_converged + 1.0)
        bypassing = analyzer.always_traverses("R2", window)
        assert bypassing == []
