"""Tests for the network runtime: delivery, fabric, operator verbs."""

import pytest

from repro.net.config import RouterConfig
from repro.net.topology import Router, Topology, paper_topology
from repro.protocols.network import Network, NetworkError
from repro.scenarios.paper_net import P, build_paper_network


class TestConstruction:
    def test_missing_config_rejected(self):
        topo = paper_topology()
        with pytest.raises(NetworkError):
            Network(topo, [RouterConfig(router="R1")])

    def test_unknown_router_runtime(self, paper_network):
        with pytest.raises(NetworkError):
            paper_network.runtime("R9")


class TestFabric:
    def test_direct_path_delay_is_link_delay(self, paper_network):
        link = paper_network.topology.link_between("R1", "R2")
        assert paper_network._path_delay("R1", "R2") == pytest.approx(link.delay)

    def test_multihop_delay_sums(self):
        from repro.net.topology import line_topology

        topo = line_topology(3, delay=0.01)
        configs = [RouterConfig(router=f"R{i}") for i in range(3)]
        net = Network(topo, configs)
        assert net._path_delay("R0", "R2") == pytest.approx(0.02)

    def test_no_path_returns_none(self, paper_network):
        paper_network.topology.link_between("R1", "Ext1").up = False
        assert paper_network._path_delay("R3", "Ext1") is None

    def test_path_exists(self, paper_network):
        assert paper_network.path_exists("R1", "R3")

    def test_messages_dropped_without_path(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.announce_prefix("Ext2", P)
        net.run(2)
        # Cut R2 off entirely, then force it to advertise.
        net.fail_link("R2", "R1")
        net.fail_link("R2", "R3")
        net.fail_link("R2", "Ext2")
        before = net.dropped_messages
        net.run(5)
        # Withdrawals toward unreachable peers are dropped, not crashed.
        assert net.dropped_messages >= before


class TestOperatorVerbs:
    def test_announce_at_future_time(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.announce_prefix("Ext1", P, at=3.0)
        net.run(1)
        assert net.runtime("R1").fib.get(P) is None
        net.run(5)
        assert net.runtime("R1").fib.get(P) is not None

    def test_converge_returns_duration(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.announce_prefix("Ext1", P)
        duration = net.converge()
        assert duration >= 0
        assert net.sim.pending() == 0

    def test_set_link_status_idempotent(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.converge()
        net.fail_link("R1", "R2")
        events_after_first = len(net.collector)
        net.fail_link("R1", "R2")  # already down: no-op
        net.run(1)
        hw = [e for e in net.collector.all_events()[events_after_first:]]
        assert not hw

    def test_unknown_link_rejected(self, paper_network):
        with pytest.raises(NetworkError):
            paper_network.fail_link("R1", "Ext2")


class TestForwardingState:
    def test_forwarding_state_shape(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.announce_prefix("Ext1", P)
        net.converge()
        state = net.forwarding_state()
        assert P in state["R1"]
        assert state["R1"][P].next_hop_router == "Ext1"

    def test_trace_path_delivered(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.announce_prefix("Ext1", P)
        net.converge()
        path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "delivered"
        assert path == ["R3", "R1", "Ext1"]

    def test_trace_path_blackhole_without_route(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.converge()
        _path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "blackhole"

    def test_describe_contains_routers(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        text = net.describe()
        for router in ("R1", "R2", "R3"):
            assert router in text


class TestGuards:
    def test_guard_applies_to_internal_only(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.set_fib_guard(lambda router, old, new: False)
        assert net.runtime("R1").fib.install_guard is not None
        assert net.runtime("Ext1").fib.install_guard is None

    def test_guard_cleared(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.start()
        net.set_fib_guard(lambda router, old, new: False)
        net.set_fib_guard(None)
        assert net.runtime("R1").fib.install_guard is None
