"""Tests for repro.net.config: route-maps, changes, versioned store."""

import pytest

from repro.net.addr import Prefix, parse_ip
from repro.net.config import (
    BgpNeighborConfig,
    ConfigChange,
    ConfigError,
    ConfigStore,
    OspfInterfaceConfig,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    StaticRouteConfig,
    local_pref_map,
    permit_all_map,
)

P = Prefix.parse("203.0.113.0/24")


class TestRouteMaps:
    def test_permit_all(self):
        clause = permit_all_map().first_match(P)
        assert clause is not None and clause.permit

    def test_local_pref_map(self):
        clause = local_pref_map("lp", 30).first_match(P)
        assert clause.set_local_pref == 30

    def test_implicit_deny(self):
        route_map = RouteMap(
            "m", (RouteMapClause(match_prefix=Prefix.parse("10.0.0.0/8")),)
        )
        assert route_map.first_match(P) is None

    def test_first_match_wins(self):
        route_map = RouteMap(
            "m",
            (
                RouteMapClause(match_prefix=P, set_local_pref=50),
                RouteMapClause(set_local_pref=10),
            ),
        )
        assert route_map.first_match(P).set_local_pref == 50
        other = Prefix.parse("10.0.0.0/8")
        assert route_map.first_match(other).set_local_pref == 10

    def test_exact_match_clause(self):
        clause = RouteMapClause(match_prefix=P, match_exact=True)
        assert clause.matches(P)
        more_specific = Prefix.parse("203.0.113.0/25")
        assert not clause.matches(more_specific)

    def test_covering_match_clause(self):
        clause = RouteMapClause(match_prefix=Prefix.parse("203.0.0.0/16"))
        assert clause.matches(P)


class TestConfigPieces:
    def test_neighbor_external_detection(self):
        neighbor = BgpNeighborConfig(peer="X", remote_asn=65001)
        assert neighbor.is_external(65000)
        assert not neighbor.is_external(65001)

    def test_ospf_cost_must_be_positive(self):
        with pytest.raises(ConfigError):
            OspfInterfaceConfig(interface="eth0", cost=0)

    def test_static_route_needs_target(self):
        with pytest.raises(ConfigError):
            StaticRouteConfig(prefix=P)

    def test_static_discard_ok(self):
        route = StaticRouteConfig(prefix=P, discard=True)
        assert route.discard

    def test_duplicate_neighbor_rejected(self):
        config = RouterConfig(router="R1")
        config.add_bgp_neighbor(BgpNeighborConfig(peer="X", remote_asn=65001))
        with pytest.raises(ConfigError):
            config.add_bgp_neighbor(BgpNeighborConfig(peer="X", remote_asn=65001))

    def test_unknown_route_map_lookup(self):
        config = RouterConfig(router="R1")
        with pytest.raises(ConfigError):
            config.route_map("nope")

    def test_none_route_map_is_none(self):
        assert RouterConfig(router="R1").route_map(None) is None


class TestConfigChange:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ConfigChange("R1", "explode")

    def test_wrong_router_rejected(self):
        config = RouterConfig(router="R1")
        change = ConfigChange("R2", "set_originated", value=[])
        with pytest.raises(ConfigError):
            change.apply_to(config)

    def test_set_route_map_records_previous(self):
        config = RouterConfig(router="R1")
        config.add_route_map(local_pref_map("lp", 30))
        change = ConfigChange(
            "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
        )
        config.apply(change)
        assert change.previous.clauses[0].set_local_pref == 30
        assert config.route_maps["lp"].clauses[0].set_local_pref == 10

    def test_inverted_restores_route_map(self):
        config = RouterConfig(router="R1")
        config.add_route_map(local_pref_map("lp", 30))
        change = ConfigChange(
            "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
        )
        config.apply(change)
        config.apply(change.inverted())
        assert config.route_maps["lp"].clauses[0].set_local_pref == 30

    def test_invert_creation_fails(self):
        config = RouterConfig(router="R1")
        change = ConfigChange(
            "R1", "set_route_map", key="new", value=permit_all_map("new")
        )
        config.apply(change)
        with pytest.raises(ConfigError):
            change.inverted()

    def test_neighbor_roundtrip(self):
        config = RouterConfig(router="R1")
        original = BgpNeighborConfig(peer="X", remote_asn=65001)
        config.add_bgp_neighbor(original)
        change = ConfigChange("R1", "remove_neighbor", key="X")
        config.apply(change)
        assert "X" not in config.bgp_neighbors
        config.apply(change.inverted())
        assert config.bgp_neighbors["X"] == original

    def test_set_neighbor_invert_to_removal(self):
        config = RouterConfig(router="R1")
        change = ConfigChange(
            "R1",
            "set_neighbor",
            key="X",
            value=BgpNeighborConfig(peer="X", remote_asn=65001),
        )
        config.apply(change)
        inverse = change.inverted()
        assert inverse.kind == "remove_neighbor"
        config.apply(inverse)
        assert "X" not in config.bgp_neighbors

    def test_originated_roundtrip(self):
        config = RouterConfig(router="R1", originated_prefixes=[P])
        change = ConfigChange("R1", "set_originated", value=[])
        config.apply(change)
        assert config.originated_prefixes == []
        config.apply(change.inverted())
        assert config.originated_prefixes == [P]

    def test_static_roundtrip(self):
        original = [StaticRouteConfig(prefix=P, discard=True)]
        config = RouterConfig(router="R1", static_routes=list(original))
        change = ConfigChange("R1", "set_static", value=[])
        config.apply(change)
        assert config.static_routes == []
        config.apply(change.inverted())
        assert config.static_routes == original

    def test_ospf_cost_roundtrip(self):
        config = RouterConfig(router="R1")
        config.ospf_interfaces["eth0"] = OspfInterfaceConfig("eth0", cost=10)
        change = ConfigChange("R1", "set_ospf_cost", key="eth0", value=99)
        config.apply(change)
        assert config.ospf_interfaces["eth0"].cost == 99
        config.apply(change.inverted())
        assert config.ospf_interfaces["eth0"].cost == 10

    def test_ospf_cost_unknown_interface(self):
        config = RouterConfig(router="R1")
        change = ConfigChange("R1", "set_ospf_cost", key="eth9", value=5)
        with pytest.raises(ConfigError):
            config.apply(change)

    def test_change_ids_unique(self):
        a = ConfigChange("R1", "set_originated", value=[])
        b = ConfigChange("R1", "set_originated", value=[])
        assert a.change_id != b.change_id


class TestConfigStore:
    def _store(self):
        config = RouterConfig(router="R1")
        config.add_route_map(local_pref_map("lp", 30))
        return ConfigStore([config])

    def test_duplicate_config_rejected(self):
        with pytest.raises(ConfigError):
            ConfigStore([RouterConfig(router="R1"), RouterConfig(router="R1")])

    def test_unknown_router(self):
        with pytest.raises(ConfigError):
            self._store().get("R9")

    def test_apply_bumps_version(self):
        store = self._store()
        assert store.version_of("R1") == 0
        store.apply(
            ConfigChange(
                "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
            )
        )
        assert store.version_of("R1") == 1

    def test_revert_change(self):
        store = self._store()
        change = ConfigChange(
            "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
        )
        store.apply(change)
        store.revert_change(change)
        assert store.get("R1").route_maps["lp"].clauses[0].set_local_pref == 30

    def test_revert_to_version(self):
        store = self._store()
        store.apply(
            ConfigChange(
                "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
            )
        )
        store.apply(
            ConfigChange(
                "R1", "set_route_map", key="lp", value=local_pref_map("lp", 5)
            )
        )
        store.revert_to_version("R1", 0)
        assert store.get("R1").route_maps["lp"].clauses[0].set_local_pref == 30
        # The revert itself created a new version.
        assert store.version_of("R1") == 3

    def test_revert_to_bad_version(self):
        with pytest.raises(ConfigError):
            self._store().revert_to_version("R1", 5)

    def test_history_snapshots_are_isolated(self):
        store = self._store()
        store.apply(
            ConfigChange(
                "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
            )
        )
        _, v0 = store.history("R1")[0]
        assert v0.route_maps["lp"].clauses[0].set_local_pref == 30

    def test_changes_list(self):
        store = self._store()
        change = ConfigChange(
            "R1", "set_route_map", key="lp", value=local_pref_map("lp", 10)
        )
        store.apply(change)
        assert store.changes("R1") == [change]
