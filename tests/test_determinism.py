"""Cross-process determinism: the property the DET lint rules guard.

The paper's happens-before accuracy numbers (Fig. 3) are only
meaningful if a seeded scenario replays identically — same captured
I/O trace, same HBG edge set, same observability percentiles — run
to run.  These tests execute the same seeded scenario in *separate
interpreter processes with different PYTHONHASHSEED values* (the
hostile case for hash-order and hash-seeded bugs) and require
byte-identical output.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Runs a seeded Fig. 2 episode, prints the sorted HBG edge set and the
# reservoir-backed histogram percentiles.  Any wall-clock, global-RNG,
# or hash-order dependence shows up as a diff between invocations.
_SCRIPT = """
from repro import obs
from repro.hbr.inference import InferenceEngine
from repro.scenarios.fig2 import Fig2Scenario

registry, tracer = obs.enable()
net = Fig2Scenario(seed=7).run_fig2a()
graph = InferenceEngine().build_graph(net.collector.all_events())
edges = sorted(
    (e.cause, e.effect, e.evidence.technique, round(e.evidence.confidence, 9))
    for e in graph.edges()
)
print(len(edges))
for edge in edges:
    print(edge)
for histogram in registry.histograms():
    summary = histogram.summary()
    print(histogram.name, summary["count"], summary["p50"] is not None)
# Percentiles of a *logical* quantity must be value-stable too: feed
# the event count into a fresh histogram wider than its reservoir.
probe = registry.histogram("det.probe")
for index in range(20000):
    probe.observe(float(index % 997))
print("probe", probe.percentile(50), probe.percentile(95), probe.percentile(99))
obs.disable()
"""


def _run(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_hbg_edges_byte_identical_across_processes():
    # The default engine IS the indexed path, so this also gates the
    # inverted indices of repro.hbr.index against hash-order drift.
    first = _run("1")
    second = _run("2")
    assert first == second
    # Sanity: the run actually produced a graph.
    assert int(first.splitlines()[0]) > 0


# All four build paths (legacy scan, indexed, sharded workers=2,
# distributed boundary-summary workers=2) on one seeded scenario: each
# path must agree with the others within a process, and the whole dump
# must be byte-identical across hostile hash seeds (the sharded and
# distributed paths add fork + merge ordering — and the distributed
# one summary-exchange ordering — as fresh opportunities for
# nondeterminism; see repro.hbr.sharded and repro.hbr.distributed).
_PATHS_SCRIPT = """
from repro.hbr.distributed import DistributedHbg
from repro.hbr.inference import InferenceConfig, InferenceEngine
from repro.scenarios.fig2 import Fig2Scenario

net = Fig2Scenario(seed=7).run_fig2a()
events = net.collector.all_events()
legacy = InferenceEngine(
    config=InferenceConfig(legacy_scan=True)
).build_graph(events)
engine = InferenceEngine()
indexed = engine.build_graph(events)
sharded = engine.build_graph(events, parallel=2)
dist = DistributedHbg(InferenceEngine())
dist.ingest_all(events)
dist.build_all(workers=2)
distributed = dist.merged_graph()

def dump(graph):
    return sorted(
        (
            e.cause,
            e.effect,
            e.evidence.technique,
            e.evidence.rule,
            round(e.evidence.confidence, 9),
        )
        for e in graph.edges()
    )

print("legacy==indexed", dump(legacy) == dump(indexed))
print("indexed==sharded", indexed.to_records() == sharded.to_records())
print("sharded==distributed", sharded.to_records() == distributed.to_records())
edges = dump(indexed)
print(len(edges))
for edge in edges:
    print(edge)
"""


def _run_paths(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _PATHS_SCRIPT],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_all_four_build_paths_byte_identical_across_processes():
    first = _run_paths("1")
    second = _run_paths("2")
    assert first == second
    lines = first.splitlines()
    assert lines[0] == "legacy==indexed True"
    assert lines[1] == "indexed==sharded True"
    assert lines[2] == "sharded==distributed True"
    assert int(lines[3]) > 0


def test_graph_edges_stable_within_process():
    # Event ids are allocation-ordered and process-global (so a live
    # network and its what-if forks share one id space); back-to-back
    # scenario replays therefore bracket each run with the same
    # reset_event_ids() isolation conftest applies per test.
    from repro.capture.io_events import reset_event_ids
    from repro.hbr.inference import InferenceEngine
    from repro.scenarios.fig2 import Fig2Scenario

    runs = []
    for _ in range(2):
        reset_event_ids()
        net = Fig2Scenario(seed=11).run_fig2a()
        graph = InferenceEngine().build_graph(net.collector.all_events())
        runs.append(sorted(graph.edge_set()))
    assert runs[0] == runs[1]
