"""Tests for the causal flight recorder, trace exporters, latency
attribution, and the instrumentation/overhead contracts around them."""

import ast
import json
import os

import pytest

from repro import obs
from repro.cli import _run_trace_scenario
from repro.cli import main as cli_main
from repro.hbr.inference import InferenceEngine
from repro.lint.rules.obs_rules import TRACE_SITES
from repro.obs.trace import (
    FlightRecorder,
    NullRecorder,
    TraceEvent,
    TraceKind,
)
from repro.obs.trace import attribution, export
from repro.scenarios.fig2 import Fig2Scenario


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Never leak an enabled registry/recorder into other tests."""
    yield
    obs.disable()
    obs.disable_recording()


# -- ring buffer -----------------------------------------------------------


class TestFlightRecorder:
    def test_records_in_order_with_monotonic_seq(self):
        recorder = FlightRecorder(capacity=10)
        for t in (0.1, 0.2, 0.3):
            recorder.record(TraceKind.SIM_EVENT, at=t, router="R1")
        events = recorder.events()
        assert [e.seq for e in events] == [1, 2, 3]
        assert [e.at for e in events] == [0.1, 0.2, 0.3]
        assert recorder.recorded_total == 3
        assert recorder.dropped == 0

    def test_drop_oldest_evicts_ring_head(self):
        recorder = FlightRecorder(capacity=3, overflow="drop-oldest")
        for i in range(7):
            recorder.record(TraceKind.SIM_EVENT, at=float(i))
        assert len(recorder) == 3
        assert recorder.dropped == 4
        assert recorder.recorded_total == 7
        # The newest three survive, order preserved.
        assert [e.seq for e in recorder.events()] == [5, 6, 7]

    def test_drop_newest_keeps_run_head(self):
        recorder = FlightRecorder(capacity=3, overflow="drop-newest")
        kept = [
            recorder.record(TraceKind.SIM_EVENT, at=float(i))
            for i in range(6)
        ]
        assert [e.seq for e in recorder.events()] == [1, 2, 3]
        assert recorder.dropped == 3
        assert kept[3] is None and kept[0] is not None

    def test_eviction_compacts_backing_list(self):
        recorder = FlightRecorder(capacity=4, overflow="drop-oldest")
        for i in range(100):
            recorder.record(TraceKind.SIM_EVENT, at=float(i))
        # The lazy compaction keeps storage O(capacity), not O(total).
        assert len(recorder._events) <= 2 * recorder.capacity
        assert [e.at for e in recorder.events()] == [96.0, 97.0, 98.0, 99.0]

    def test_tail_and_filters(self):
        recorder = FlightRecorder(capacity=10)
        recorder.record(TraceKind.SIM_EVENT, at=0.1, router="R1")
        recorder.record(TraceKind.IO_CAPTURED, at=0.2, router="R2", event_id=7)
        recorder.record(TraceKind.IO_CAPTURED, at=0.3, router="R1", event_id=8)
        assert [e.seq for e in recorder.tail(2)] == [2, 3]
        assert recorder.tail(0) == []
        assert [e.event_id for e in recorder.events(TraceKind.IO_CAPTURED)] == [
            7,
            8,
        ]
        assert [e.seq for e in recorder.events(router="R1")] == [1, 3]

    def test_record_roundtrip(self):
        recorder = FlightRecorder(capacity=4)
        original = recorder.record(
            TraceKind.HBR_EDGE,
            at=1.5,
            router="R2",
            event_id=42,
            detail="x",
            rule="rib-before-fib",
            confidence=0.9,
        )
        restored = TraceEvent.from_record(
            json.loads(json.dumps(original.to_record()))
        )
        assert restored == original
        assert restored.attr("rule") == "rib-before-fib"
        assert restored.attr("missing", "d") == "d"

    def test_validates_capacity_and_policy(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(overflow="wrap")

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record(TraceKind.ROLLBACK, at=float(i))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0
        assert recorder.events() == []

    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        assert null.enabled is False
        assert null.record(TraceKind.SIM_EVENT, at=0.0) is None
        assert len(null) == 0
        assert null.events() == [] and null.tail(5) == []


class TestObsWiring:
    def test_off_by_default(self):
        assert obs.get_recorder().enabled is False

    def test_enable_disable_recording(self):
        recorder = obs.enable_recording(capacity=8)
        assert obs.get_recorder() is recorder and recorder.enabled
        obs.disable_recording()
        assert obs.get_recorder().enabled is False

    def test_recording_context_restores_previous(self):
        outer = obs.enable_recording(capacity=8)
        with obs.recording(capacity=4) as inner:
            assert obs.get_recorder() is inner
            assert inner.capacity == 4
        assert obs.get_recorder() is outer
        obs.disable_recording()

    def test_recording_independent_of_metrics(self):
        with obs.recording():
            assert obs.get_recorder().enabled
            assert not obs.get_registry().enabled


# -- instrumentation: every stage lands in the ring ------------------------


def _record_fig2a():
    with obs.recording(capacity=100_000) as recorder:
        net = Fig2Scenario().run_fig2a()
        graph = InferenceEngine().build_graph(net.collector.all_events())
    return net, graph, recorder


class TestInstrumentation:
    def test_capture_layer_events_join_to_hbg_vertices(self):
        net, graph, recorder = _record_fig2a()
        captured = recorder.events(TraceKind.IO_CAPTURED)
        assert len(captured) == len(net.collector)
        hbg_ids = {e.event_id for e in graph.events()}
        assert {e.event_id for e in captured} == hbg_ids

    def test_hbr_edge_records_name_the_exact_edge(self):
        _net, graph, recorder = _record_fig2a()
        recorded = {
            (e.attr("cause"), e.event_id)
            for e in recorder.events(TraceKind.HBR_EDGE)
        }
        assert recorded == graph.edge_set()
        sample = recorder.events(TraceKind.HBR_EDGE)[0]
        assert sample.attr("technique") in ("rule", "pattern", "naive")
        assert 0.0 <= sample.attr("confidence") <= 1.0

    def test_sim_events_recorded_with_sim_timestamps(self):
        _net, _graph, recorder = _record_fig2a()
        fired = recorder.events(TraceKind.SIM_EVENT)
        assert fired
        times = [e.at for e in fired]
        assert times == sorted(times)

    def test_full_pipeline_records_every_kind(self):
        with obs.recording(capacity=100_000) as recorder:
            _run_pipeline_scenario_inline()
        kinds = {e.kind for e in recorder.events()}
        assert kinds == set(TraceKind)

    def test_trace_is_deterministic_across_runs(self):
        def run():
            with obs.recording(capacity=100_000) as recorder:
                Fig2Scenario().run_fig2a()
            return [e.to_record() for e in recorder.events()]

        from repro.capture.io_events import reset_event_ids

        reset_event_ids()
        first = run()
        reset_event_ids()
        second = run()
        assert first == second


def _run_pipeline_scenario_inline():
    """The Fig. 3 pipeline in REPAIR mode over the Fig. 2 episode.

    Inline (rather than via the CLI helper) so this file controls the
    recorder's scope; it must exercise snapshot builds, verify
    verdicts, provenance walks, a rollback, and one health tick.
    """
    from repro.core.pipeline import IntegratedControlPlane, PipelineMode
    from repro.obs.health import HealthEngine
    from repro.scenarios.fig2 import bad_lp_change
    from repro.scenarios.paper_net import P, paper_policy
    from repro.verify.policy import LoopFreedomPolicy

    net = Fig2Scenario().run_baseline()
    pipeline = IntegratedControlPlane(
        net,
        [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
        mode=PipelineMode.REPAIR,
    ).arm()
    net.apply_config_change(bad_lp_change())
    net.run(120)
    # One health-engine tick, the way the serve-metrics loop would:
    # it records the TraceKind.HEALTH events this scenario asserts on.
    HealthEngine().evaluate()
    return net, pipeline


# -- exporters -------------------------------------------------------------


class TestChromeExport:
    def test_pipeline_scenario_validates_with_one_track_per_router(self):
        graph, recorder = _run_trace_scenario("pipeline")
        document = export.chrome_trace(graph, recorder)
        assert export.validate_chrome_trace(document) == []
        tracks = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
        }
        # One track per router in the Fig. 1 topology, plus the
        # pipeline track for recorder events.
        assert {"R1", "R2", "R3"}.issubset(tracks)

    def test_flow_events_match_hbg_edges_exactly(self):
        graph, recorder = _run_trace_scenario("pipeline")
        document = export.chrome_trace(graph, recorder)
        assert export.chrome_flow_edges(document) == graph.edge_set()

    def test_slice_timestamps_non_decreasing_per_track(self):
        graph, recorder = _run_trace_scenario("fig2")
        document = export.chrome_trace(graph, recorder)
        per_track = {}
        for event in document["traceEvents"]:
            if event.get("ph") == "X":
                per_track.setdefault(event["tid"], []).append(event["ts"])
        assert per_track
        for timestamps in per_track.values():
            assert timestamps == sorted(timestamps)

    def test_validator_rejects_structural_damage(self):
        graph, recorder = _run_trace_scenario("fig2")
        document = export.chrome_trace(graph, recorder)
        orphan = {"name": "x", "ph": "s", "id": 10**9, "ts": 0.0,
                  "pid": 1, "tid": 1}
        document["traceEvents"].append(orphan)
        assert any(
            "missing an s/f endpoint" in problem
            for problem in export.validate_chrome_trace(document)
        )
        assert export.validate_chrome_trace({"traceEvents": None})
        assert export.validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x"}]}
        )


class TestOtlpExport:
    def test_pipeline_scenario_validates(self):
        graph, recorder = _run_trace_scenario("pipeline")
        document = export.otlp_spans(graph, recorder)
        assert export.validate_otlp_spans(document) == []

    def test_parents_plus_links_reproduce_hbg_edges(self):
        graph, recorder = _run_trace_scenario("pipeline")
        document = export.otlp_spans(graph, recorder)
        assert export.otlp_parent_edges(document) == graph.edge_set()

    def test_parent_is_highest_confidence_in_edge(self):
        graph, _recorder = _run_trace_scenario("fig2")
        document = export.otlp_spans(graph)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        by_id = {span["spanId"]: span for span in spans}
        for event in graph.events():
            parents = graph.parents(event.event_id)
            if not parents:
                continue
            best = max(
                parents,
                key=lambda p: (p[1].confidence, p[0].timestamp, p[0].event_id),
            )
            span = by_id[export.span_id(event.event_id)]
            assert span["parentSpanId"] == export.span_id(best[0].event_id)

    def test_validator_rejects_unresolved_parent(self):
        graph, _recorder = _run_trace_scenario("fig2")
        document = export.otlp_spans(graph)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        spans[0]["parentSpanId"] = "f" * 16
        assert any(
            "resolves to no span" in problem
            for problem in export.validate_otlp_spans(document)
        )

    def test_span_ids_are_deterministic(self):
        assert export.span_id(7) == export.span_id(7)
        assert export.span_id(7) != export.span_id(8)
        assert len(export.span_id(7)) == 16


class TestTextTimeline:
    def test_per_router_sections_and_causal_annotations(self):
        graph, recorder = _run_trace_scenario("fig2")
        text = export.text_timeline(graph, recorder)
        for router in ("R1", "R2", "R3"):
            assert f"== {router} ==" in text
        assert "== pipeline ==" in text
        assert "<-" in text  # at least one causal annotation


# -- latency attribution ---------------------------------------------------


class TestAttribution:
    def test_fig2_repair_scenario_reports_per_rule_histograms(self):
        graph, _recorder = _run_trace_scenario("pipeline")
        with obs.capturing() as (registry, _tracer):
            report = attribution.attribute_latency(graph)
        assert report.fib_updates > 0
        assert report.paths, "repair scenario must attribute some paths"
        # The chain rib->fib must appear as an attributed rule.
        assert "rib-before-fib" in report.per_rule
        labelled = {
            (h.name, dict(h.labels).get("rule"))
            for h in registry.histograms()
            if h.name == "trace.hop_latency_seconds"
        }
        assert labelled  # one histogram per HBR rule
        assert {rule for _n, rule in labelled} == set(report.per_rule)
        end_to_end = [
            h
            for h in registry.histograms()
            if h.name == "trace.root_to_fib_seconds"
        ]
        assert end_to_end and end_to_end[0].count == len(report.paths)

    def test_hop_sums_are_consistent_with_paths(self):
        graph, _recorder = _run_trace_scenario("fig2")
        report = attribution.attribute_latency(graph)
        for path in report.paths:
            assert path.seconds >= 0
            assert all(hop.seconds >= 0 for hop in path.hops)
            # Hops chain cause->effect from root to the FIB update.
            assert path.hops[0].cause == path.root
            assert path.hops[-1].effect == path.fib_update

    def test_report_serialises_and_renders(self):
        graph, _recorder = _run_trace_scenario("fig2")
        report = attribution.attribute_latency(graph)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["attributed_paths"] == len(report.paths)
        assert set(document["per_rule"]) == set(report.per_rule)
        lines = report.table_lines()
        assert any("slowest" in line for line in lines)

    def test_no_registry_side_effects_when_disabled(self):
        graph, _recorder = _run_trace_scenario("fig2")
        attribution.attribute_latency(graph)
        assert len(obs.get_registry()) == 0


# -- drift + overhead guards ----------------------------------------------


def _site_function(module: str, qualname: str) -> ast.AST:
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    path = os.path.join(root, *module.split(".")) + ".py"
    tree = ast.parse(open(path).read())
    node = tree
    for part in qualname.split("."):
        node = next(
            child
            for child in ast.walk(node)
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            and child.name == part
        )
    return node


class TestTraceSiteContracts:
    def test_catalogue_and_kind_enum_cannot_drift(self):
        """TRACE_SITES and TraceKind must stay a bijection."""
        catalogued = [
            kind
            for sites in TRACE_SITES.values()
            for _qualname, kind in sites
        ]
        assert sorted(catalogued) == sorted(
            member.name for member in TraceKind
        ), (
            "TRACE_SITES (repro/lint/rules/obs_rules.py) and TraceKind "
            "(repro/obs/trace/recorder.py) have drifted apart"
        )

    def test_every_site_guards_on_recorder_enabled(self):
        """The disabled fast path is one attribute check per site."""
        for module, sites in TRACE_SITES.items():
            for qualname, _kind in sites:
                func = _site_function(module, qualname)
                guards = [
                    node
                    for node in ast.walk(func)
                    if isinstance(node, ast.Attribute)
                    and node.attr == "enabled"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "recorder"
                ]
                assert guards, (
                    f"{module}:{qualname} must guard recording behind "
                    "a single `recorder.enabled` check"
                )

    def test_disabled_recorder_never_reaches_record(self):
        """Behavioral half of the overhead guard: with recording off,
        no instrumentation site may even *call* record()."""

        class TrippingRecorder(NullRecorder):
            def record(self, *args, **kwargs):
                raise AssertionError(
                    "record() called while recorder.enabled is False"
                )

        import repro.obs as obs_module

        previous = obs_module._recorder
        obs_module._recorder = TrippingRecorder()
        try:
            net, _pipeline = _run_pipeline_scenario_inline()
            assert len(net.collector) > 0
        finally:
            obs_module._recorder = previous

    def test_disabled_recorder_records_nothing(self):
        Fig2Scenario().run_fig2a()
        assert len(obs.get_recorder()) == 0


# -- CLI -------------------------------------------------------------------


class TestTraceCli:
    def test_chrome_export_validates(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        rc = cli_main(
            [
                "trace",
                "--scenario",
                "pipeline",
                "--format",
                "chrome",
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert export.validate_chrome_trace(document) == []

    def test_otlp_to_stdout(self, capsys):
        rc = cli_main(["trace", "--scenario", "fig2", "--format", "otlp"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert export.validate_otlp_spans(document) == []

    def test_table_with_attribution(self, capsys):
        rc = cli_main(
            ["trace", "--scenario", "fig2", "--format", "table", "--attribute"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "== R1 ==" in captured.out
        assert "latency attribution" in captured.err

    def test_ring_size_controls_eviction(self, capsys):
        rc = cli_main(
            [
                "trace",
                "--scenario",
                "fig2",
                "--format",
                "table",
                "--ring-size",
                "10",
                "--overflow",
                "drop-newest",
            ]
        )
        assert rc == 0
        capsys.readouterr()

    def test_cli_state_is_restored(self, capsys):
        cli_main(["trace", "--scenario", "fig2", "--format", "table"])
        capsys.readouterr()
        assert obs.get_recorder().enabled is False


# -- fuzz artifacts carry a trace tail -------------------------------------


class TestFuzzTraceArtifacts:
    def test_failure_artifact_embeds_recorder_tail(self, tmp_path):
        from repro.testkit import load_artifact
        from repro.testkit import oracles as oracles_mod
        from repro.testkit.oracles import OracleVerdict
        from repro.testkit.runner import FuzzRunner

        def planted_failure(context):
            context.shared  # force plan execution under the recorder
            return OracleVerdict(
                oracle="planted-failure", ok=False, detail="planted"
            )

        oracles_mod.ORACLES["planted-failure"] = planted_failure
        try:
            runner = FuzzRunner(
                oracle_names=["planted-failure"],
                artifacts_dir=tmp_path,
                shrink_failures=False,
                trace_tail=50,
            )
            report = runner.run(seed=3, cases=1)
        finally:
            del oracles_mod.ORACLES["planted-failure"]
        [result] = report.results
        artifact = load_artifact(
            __import__("pathlib").Path(result.artifact_path)
        )
        assert artifact.trace, "failure artifact must carry a trace tail"
        assert len(artifact.trace) <= 50
        assert {"seq", "kind", "at"}.issubset(artifact.trace[0])

    def test_trace_tail_zero_disables_recording(self, tmp_path):
        from repro.testkit import load_artifact
        from repro.testkit import oracles as oracles_mod
        from repro.testkit.oracles import OracleVerdict
        from repro.testkit.runner import FuzzRunner

        def planted_failure(context):
            context.shared
            return OracleVerdict(
                oracle="planted-failure", ok=False, detail="planted"
            )

        oracles_mod.ORACLES["planted-failure"] = planted_failure
        try:
            runner = FuzzRunner(
                oracle_names=["planted-failure"],
                artifacts_dir=tmp_path,
                shrink_failures=False,
                trace_tail=0,
            )
            report = runner.run(seed=3, cases=1)
        finally:
            del oracles_mod.ORACLES["planted-failure"]
        [result] = report.results
        artifact = load_artifact(
            __import__("pathlib").Path(result.artifact_path)
        )
        assert artifact.trace == []

    def test_schema_one_artifacts_still_load(self, tmp_path):
        from repro.testkit import load_artifact
        from repro.testkit.case import FuzzCase

        plan_dict = FuzzCase(seed=1).to_dict()
        data = {
            "schema": 1,
            "oracle": "snapshot-consistency",
            "expect": "pass",
            "case": plan_dict,
            "events": [],
            "probe_times": [],
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(data))
        artifact = load_artifact(path)
        assert artifact.trace == []

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99}))
        from repro.testkit import load_artifact

        with pytest.raises(ValueError, match="schema"):
            load_artifact(path)
