"""Tests for the FIB and admin-distance selection."""

import pytest

from repro.net.addr import Prefix, parse_ip
from repro.net.config import DEFAULT_ADMIN_DISTANCE
from repro.protocols.fib import Fib, FibEntry, select_route

P = Prefix.parse("203.0.113.0/24")


def _entry(prefix=P, protocol="ebgp", nh_router="R2", metric=0, discard=False):
    return FibEntry(
        prefix=prefix,
        next_hop=parse_ip("10.0.0.2") if nh_router else None,
        next_hop_router=nh_router,
        out_interface="eth0" if nh_router else None,
        protocol=protocol,
        metric=metric,
        discard=discard,
    )


class TestFib:
    def test_install_and_lookup(self):
        fib = Fib("R1")
        assert fib.install(_entry())
        found = fib.lookup(P.first_address() + 5)
        assert found is not None and found.next_hop_router == "R2"

    def test_install_identical_is_noop(self):
        fib = Fib("R1")
        fib.install(_entry())
        assert not fib.install(_entry())
        assert len(fib.journal) == 1

    def test_install_replaces(self):
        fib = Fib("R1")
        fib.install(_entry(nh_router="R2"))
        assert fib.install(_entry(nh_router="R3"))
        assert fib.get(P).next_hop_router == "R3"

    def test_remove(self):
        fib = Fib("R1")
        fib.install(_entry())
        removed = fib.remove(P)
        assert removed is not None
        assert fib.get(P) is None
        assert fib.journal[-1][0] == "remove"

    def test_remove_missing(self):
        assert Fib("R1").remove(P) is None

    def test_longest_prefix_match(self):
        fib = Fib("R1")
        fib.install(_entry(prefix=Prefix.parse("203.0.0.0/16"), nh_router="R9"))
        fib.install(_entry())
        assert fib.lookup(P.first_address()).next_hop_router == "R2"
        other = parse_ip("203.0.50.1")
        assert fib.lookup(other).next_hop_router == "R9"

    def test_guard_blocks_install(self):
        fib = Fib("R1")
        fib.install_guard = lambda router, old, new: False
        assert not fib.install(_entry())
        assert fib.get(P) is None
        assert fib.blocked_writes == 1

    def test_guard_blocks_removal(self):
        fib = Fib("R1")
        fib.install(_entry())
        fib.install_guard = lambda router, old, new: new is not None
        assert fib.remove(P) is None
        assert fib.get(P) is not None

    def test_guard_sees_old_and_new(self):
        fib = Fib("R1")
        fib.install(_entry(nh_router="R2"))
        seen = []
        fib.install_guard = lambda router, old, new: seen.append((old, new)) or True
        fib.install(_entry(nh_router="R3"))
        old, new = seen[0]
        assert old.next_hop_router == "R2" and new.next_hop_router == "R3"

    def test_guard_not_invoked_for_noop(self):
        fib = Fib("R1")
        fib.install(_entry())
        calls = []
        fib.install_guard = lambda *args: calls.append(args) or True
        fib.install(_entry())
        assert calls == []

    def test_snapshot_and_iter(self):
        fib = Fib("R1")
        fib.install(_entry())
        assert list(fib.snapshot()) == [P]
        assert len(list(fib)) == 1

    def test_entry_forwards(self):
        assert _entry().forwards()
        assert not _entry(nh_router=None).forwards()
        assert not _entry(discard=True).forwards()


class TestSelectRoute:
    def test_lowest_admin_distance_wins(self):
        winner = select_route(
            [_entry(protocol="ibgp"), _entry(protocol="ebgp"), _entry(protocol="ospf")],
            DEFAULT_ADMIN_DISTANCE,
        )
        assert winner.protocol == "ebgp"

    def test_connected_beats_everything(self):
        winner = select_route(
            [_entry(protocol="connected", nh_router=None), _entry(protocol="static")],
            DEFAULT_ADMIN_DISTANCE,
        )
        assert winner.protocol == "connected"

    def test_metric_breaks_distance_tie(self):
        winner = select_route(
            [_entry(metric=20, nh_router="R2"), _entry(metric=5, nh_router="R3")],
            DEFAULT_ADMIN_DISTANCE,
        )
        assert winner.next_hop_router == "R3"

    def test_name_breaks_full_tie(self):
        winner = select_route(
            [_entry(nh_router="R3"), _entry(nh_router="R2")],
            DEFAULT_ADMIN_DISTANCE,
        )
        assert winner.next_hop_router == "R2"

    def test_empty_candidates(self):
        assert select_route([], DEFAULT_ADMIN_DISTANCE) is None

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError):
            select_route([_entry(protocol="martian")], DEFAULT_ADMIN_DISTANCE)
