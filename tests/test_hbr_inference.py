"""Tests for HBR inference: the four techniques and their combination."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import (
    InferenceConfig,
    InferenceEngine,
    PatternMiner,
    score_inference,
)
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, build_paper_network


def _observable_ids(net):
    return {e.event_id for e in net.collector}


@pytest.fixture
def converged_fig1(fast_delays):
    scenario = Fig1Scenario(seed=0, delays=fast_delays)
    return scenario.run_fig1b()


class TestRuleInference:
    def test_high_precision_on_paper_network(self, converged_fig1):
        net = converged_fig1
        engine = InferenceEngine()
        graph = engine.build_graph(net.collector.all_events())
        score = score_inference(
            graph, net.ground_truth, observable_ids=_observable_ids(net)
        )
        assert score.precision >= 0.9
        assert score.recall >= 0.9

    def test_recv_rib_fib_send_chain_inferred(self, converged_fig1):
        net = converged_fig1
        engine = InferenceEngine()
        graph = engine.build_graph(net.collector.all_events())
        fib = net.collector.query(router="R3", kind=IOKind.FIB_UPDATE, prefix=P)
        latest_fib = max(fib, key=lambda e: e.timestamp)
        ancestors = graph.ancestors(latest_fib.event_id)
        kinds = {graph.event(i).kind for i in ancestors}
        assert IOKind.RIB_UPDATE in kinds
        assert IOKind.ROUTE_RECEIVE in kinds
        assert IOKind.ROUTE_SEND in kinds  # the cross-router edge

    def test_cross_router_send_recv_edges(self, converged_fig1):
        net = converged_fig1
        graph = InferenceEngine().build_graph(net.collector.all_events())
        cross = [
            e
            for e in graph.edges()
            if graph.event(e.cause).router != graph.event(e.effect).router
        ]
        assert cross, "expected inferred send->recv edges across routers"
        for edge in cross:
            cause = graph.event(edge.cause)
            effect = graph.event(edge.effect)
            assert cause.kind is IOKind.ROUTE_SEND
            assert effect.kind is IOKind.ROUTE_RECEIVE

    def test_config_rib_edge_spans_soft_reconfig_lag(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig2a()
        graph = InferenceEngine().build_graph(net.collector.all_events())
        config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
        children = graph.children(config.event_id)
        assert any(e.kind is IOKind.RIB_UPDATE for e, _ in children)


class TestNaiveBaseline:
    def test_naive_mode_has_terrible_precision(self, converged_fig1):
        """'Timestamps cannot be used as the sole mechanism' (§4.2)."""
        net = converged_fig1
        engine = InferenceEngine(
            config=InferenceConfig(naive_prefix_timestamp=True)
        )
        graph = engine.build_graph(net.collector.all_events())
        score = score_inference(
            graph, net.ground_truth, observable_ids=_observable_ids(net)
        )
        rule_score = score_inference(
            InferenceEngine().build_graph(net.collector.all_events()),
            net.ground_truth,
            observable_ids=_observable_ids(net),
        )
        assert score.precision < rule_score.precision / 2


class TestClockSkew:
    def test_skewed_clocks_still_inferable(self, fast_delays):
        net = build_paper_network(
            seed=0,
            delays=fast_delays,
            clock_skews={"R1": 0.02, "R2": -0.02, "R3": 0.01},
        )
        net.start()
        net.announce_prefix("Ext1", P)
        net.announce_prefix("Ext2", P)
        net.run(5)
        engine = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.05)
        )
        graph = engine.build_graph(net.collector.all_events())
        score = score_inference(
            graph, net.ground_truth, observable_ids=_observable_ids(net)
        )
        assert score.recall >= 0.8

    def test_zero_tolerance_loses_skewed_edges(self, fast_delays):
        net = build_paper_network(
            seed=0, delays=fast_delays, clock_skews={"R1": 0.05, "R2": -0.05}
        )
        net.start()
        net.announce_prefix("Ext1", P)
        net.announce_prefix("Ext2", P)
        net.run(5)
        tolerant = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.15)
        ).build_graph(net.collector.all_events())
        strict = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.0)
        ).build_graph(net.collector.all_events())
        obs = _observable_ids(net)
        tolerant_score = score_inference(tolerant, net.ground_truth, obs)
        strict_score = score_inference(strict, net.ground_truth, obs)
        assert tolerant_score.recall > strict_score.recall


class TestPatternMining:
    def _trained_miner(self, fast_delays, seed=0):
        scenario = Fig1Scenario(seed=seed, delays=fast_delays)
        net = scenario.run_fig1b()
        miner = PatternMiner(window=1.0)
        miner.train(net.collector.all_events())
        return miner

    def test_miner_learns_recv_to_rib_pattern(self, fast_delays):
        miner = self._trained_miner(fast_delays)
        patterns = miner.known_patterns(min_confidence=0.5)
        shapes = {(key[0][0], key[1][0]) for key, _ in patterns}
        assert ("route_receive", "rib_update") in shapes

    def test_pattern_only_inference_finds_edges(self, fast_delays):
        miner = self._trained_miner(fast_delays, seed=0)
        # Infer on a *different* run (fresh seed), rules disabled.
        scenario = Fig1Scenario(seed=5, delays=fast_delays)
        net = scenario.run_fig1b()
        engine = InferenceEngine(
            config=InferenceConfig(
                use_rules=False,
                use_patterns=True,
                pattern_confidence_threshold=0.6,
            ),
            miner=miner,
        )
        graph = engine.build_graph(net.collector.all_events())
        assert graph.edge_count() > 0
        score = score_inference(
            graph, net.ground_truth, observable_ids=_observable_ids(net)
        )
        naive = InferenceEngine(
            config=InferenceConfig(naive_prefix_timestamp=True)
        ).build_graph(net.collector.all_events())
        naive_score = score_inference(
            naive, net.ground_truth, observable_ids=_observable_ids(net)
        )
        # Mined patterns recover most true HBRs and are far more
        # precise than the naive strawman, but (as §4.2 anticipates)
        # noisier than protocol-rule matching.
        assert score.recall >= 0.7
        assert score.precision > 2 * naive_score.precision

    def test_combined_beats_patterns_alone(self, fast_delays):
        miner = self._trained_miner(fast_delays, seed=0)
        scenario = Fig1Scenario(seed=5, delays=fast_delays)
        net = scenario.run_fig1b()
        obs = _observable_ids(net)
        patterns_only = InferenceEngine(
            config=InferenceConfig(use_rules=False, use_patterns=True),
            miner=miner,
        ).build_graph(net.collector.all_events())
        combined = InferenceEngine(
            config=InferenceConfig(use_rules=True, use_patterns=True),
            miner=miner,
        ).build_graph(net.collector.all_events())
        pattern_score = score_inference(patterns_only, net.ground_truth, obs)
        combined_score = score_inference(combined, net.ground_truth, obs)
        assert combined_score.f1 >= pattern_score.f1

    def test_patterns_without_miner_rejected(self):
        with pytest.raises(ValueError):
            InferenceEngine(config=InferenceConfig(use_patterns=True))

    def test_confidence_zero_for_unknown_signature(self, fast_delays):
        miner = PatternMiner()
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1a()
        events = net.collector.all_events()
        assert miner.confidence(events[0], events[-1]) == 0.0


class TestStreaming:
    def test_streaming_equals_batch(self, converged_fig1):
        net = converged_fig1
        engine = InferenceEngine()
        batch = engine.build_graph(net.collector.all_events())
        stream = engine.streaming()
        for event in net.collector:
            stream.observe(event)
        assert stream.graph.edge_set() == batch.edge_set()
        assert len(stream.graph) == len(batch)

    def test_streaming_out_of_order_within_skew(self, fast_delays):
        """Events arriving out of timestamp order (skewed routers) are
        still linked when the cause lands after the effect."""
        net = build_paper_network(
            seed=0, delays=fast_delays, clock_skews={"R1": 0.02}
        )
        net.start()
        net.announce_prefix("Ext1", P)
        net.run(5)
        engine = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.05)
        )
        batch = engine.build_graph(net.collector.all_events())
        stream = engine.streaming()
        for event in net.collector:  # arrival order = capture order
            stream.observe(event)
        assert stream.graph.edge_set() == batch.edge_set()

    def test_legacy_scan_streaming_matches_indexed(self, converged_fig1):
        net = converged_fig1
        indexed = InferenceEngine().streaming()
        legacy = InferenceEngine(
            config=InferenceConfig(legacy_scan=True)
        ).streaming()
        for event in net.collector:
            indexed.observe(event)
            legacy.observe(event)
        assert indexed.graph.edge_set() == legacy.graph.edge_set()
        assert len(indexed) == len(legacy) == len(net.collector)

    def test_observe_gauge_refresh_is_o1(self, converged_fig1):
        """Per-event gauges must come from the graph's maintained
        totals, never from re-walking the adjacency maps (the pre-fix
        ``edge_count()`` summed ``_out.values()`` on every observe).
        Tripping-collection style, like the recorder overhead guard in
        tests/test_trace.py: any traversal raises."""
        from collections import defaultdict

        from repro import obs

        class TrippingAdjacency(defaultdict):
            def _trip(self):
                raise AssertionError(
                    "observe() traversed a graph adjacency map"
                )

            def values(self):
                self._trip()

            def items(self):
                self._trip()

            def __iter__(self):
                self._trip()

        net = converged_fig1
        registry, _tracer = obs.enable()
        try:
            stream = InferenceEngine().streaming()
            # Point lookups (getitem / .get) stay allowed; anything
            # that walks the whole map trips the assertion above.
            stream.graph._out = TrippingAdjacency(dict)
            stream.graph._in = TrippingAdjacency(dict)
            for event in net.collector:
                stream.observe(event)
            assert stream.graph.edge_count() > 0
            assert (
                registry.gauge("inference.hbg_edges").value
                == stream.graph.edge_count()
            )
            assert registry.gauge("inference.hbg_events").value == len(
                stream.graph
            )
        finally:
            obs.disable()


class TestScoring:
    def test_empty_graph_scores(self, converged_fig1):
        net = converged_fig1
        from repro.hbr.graph import HappensBeforeGraph

        score = score_inference(
            HappensBeforeGraph(),
            net.ground_truth,
            observable_ids=_observable_ids(net),
        )
        assert score.precision == 1.0  # no false positives possible
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_score_str(self, converged_fig1):
        net = converged_fig1
        graph = InferenceEngine().build_graph(net.collector.all_events())
        text = str(
            score_inference(
                graph, net.ground_truth, observable_ids=_observable_ids(net)
            )
        )
        assert "precision" in text and "recall" in text
