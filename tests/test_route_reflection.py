"""Tests for RFC 4456 route reflection (iBGP beyond the full mesh)."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix, parse_ip
from repro.net.config import (
    BgpNeighborConfig,
    OspfInterfaceConfig,
    RouterConfig,
)
from repro.net.simulator import DelayModel
from repro.net.topology import Router, Topology
from repro.protocols.network import Network
from repro.repair.provenance import ProvenanceTracer

RP = Prefix.parse("203.0.113.0/24")


def _delays():
    return DelayModel(
        fib_install=0.001,
        rib_update=0.0005,
        advertisement=0.001,
        config_to_reconfig=0.05,
        spf_compute=0.001,
    )


def _star_network(clients=3, seed=0):
    """RR in the middle, ``clients`` spokes, no client-client iBGP.

    Client C0 has an external uplink announcing RP.  OSPF runs on all
    internal links so reflected next hops resolve.
    """
    topo = Topology("rr-star")
    topo.add_router(Router("RR", asn=65000, loopback=parse_ip("192.168.0.100")))
    configs = []
    rr = RouterConfig(router="RR", asn=65000, router_id=100)
    for i in range(clients):
        name = f"C{i}"
        topo.add_router(
            Router(name, asn=65000, loopback=parse_ip("192.168.0.1") + i)
        )
        subnet = Prefix(parse_ip("10.240.0.0") + i * 4, 30)
        topo.connect("RR", name, subnet)
        rr.add_bgp_neighbor(
            BgpNeighborConfig(
                peer=name, remote_asn=65000, route_reflector_client=True
            )
        )
        client = RouterConfig(router=name, asn=65000, router_id=i + 1)
        client.add_bgp_neighbor(
            BgpNeighborConfig(peer="RR", remote_asn=65000, next_hop_self=True)
        )
        configs.append(client)
    topo.add_router(
        Router("Ext", asn=65009, loopback=parse_ip("192.168.9.9"), external=True)
    )
    topo.connect("C0", "Ext", Prefix.parse("10.241.0.0/30"))
    configs[0].add_bgp_neighbor(BgpNeighborConfig(peer="Ext", remote_asn=65009))
    ext = RouterConfig(router="Ext", asn=65009, router_id=999)
    ext.add_bgp_neighbor(BgpNeighborConfig(peer="C0", remote_asn=65000))
    configs.append(ext)
    configs.append(rr)
    # OSPF everywhere internal.
    for config in configs:
        if config.router == "Ext":
            continue
        router = topo.router(config.router)
        for iface_name, iface in router.interfaces.items():
            link = next(
                l
                for l in topo.links_of(config.router)
                if l.interface_of(config.router).name == iface_name
            )
            if link.other_end(config.router).router == "Ext":
                continue
            config.ospf_interfaces[iface_name] = OspfInterfaceConfig(iface_name)
    net = Network(topo, configs, seed=seed, delays=_delays())
    net.start()
    return net


@pytest.fixture(scope="module")
def star():
    net = _star_network(clients=3)
    net.announce_prefix("Ext", RP)
    net.run(10)
    return net


class TestReflection:
    def test_all_clients_learn_via_reflector(self, star):
        for client in ("C1", "C2"):
            best = star.runtime(client).bgp.rib.best(RP)
            assert best is not None
            assert best.from_peer == "RR"

    def test_reflector_itself_has_route(self, star):
        best = star.runtime("RR").bgp.rib.best(RP)
        assert best is not None and best.from_peer == "C0"

    def test_traffic_delivered_through_star(self, star):
        for client in ("C1", "C2"):
            path, outcome = star.trace_path(client, RP.first_address())
            assert outcome == "delivered"
            assert path[0] == client and path[-1] == "Ext"
            assert "RR" in path  # physical star: traffic transits the hub

    def test_originator_id_stamped(self, star):
        best = star.runtime("C1").bgp.rib.best(RP)
        # C0 (router-id 1) injected the route into iBGP.
        assert best.originator_id == 1

    def test_cluster_list_stamped(self, star):
        best = star.runtime("C1").bgp.rib.best(RP)
        assert 100 in best.cluster_list  # RR's router-id

    def test_originator_does_not_relearn_own_route(self, star):
        """RFC 4456 loop prevention: the reflected copy that comes back
        to C0 is rejected (ORIGINATOR_ID == own router-id)."""
        paths = star.runtime("C0").bgp.rib.paths_for(RP)
        assert all(p.from_peer != "RR" or p.originator_id != 1 for p in paths)
        best = star.runtime("C0").bgp.rib.best(RP)
        assert best.from_peer == "Ext"

    def test_withdrawal_propagates_through_reflector(self):
        net = _star_network(clients=3, seed=7)
        net.announce_prefix("Ext", RP)
        net.run(10)
        assert net.runtime("C2").fib.get(RP) is not None
        net.withdraw_prefix("Ext", RP)
        net.run(10)
        assert net.runtime("C2").fib.get(RP) is None
        assert net.runtime("RR").fib.get(RP) is None


class TestLoopPrevention:
    def test_cluster_loop_rejected(self):
        """A route carrying our own cluster id is dropped on receipt."""
        from repro.protocols.bgp import BgpProcess
        from repro.protocols.bgp_decision import VendorProfile
        from repro.protocols.routes import BgpRoute

        config = RouterConfig(router="RR", asn=65000, router_id=100)
        config.add_bgp_neighbor(
            BgpNeighborConfig(peer="X", remote_asn=65000)
        )
        bgp = BgpProcess("RR", config, VendorProfile.cisco())
        looped = BgpRoute(
            prefix=RP, next_hop=1, from_peer="X", cluster_list=(100,)
        )
        assert bgp.receive("X", looped) is None

    def test_originator_loop_rejected(self):
        from repro.protocols.bgp import BgpProcess
        from repro.protocols.bgp_decision import VendorProfile
        from repro.protocols.routes import BgpRoute

        config = RouterConfig(router="C0", asn=65000, router_id=1)
        config.add_bgp_neighbor(BgpNeighborConfig(peer="RR", remote_asn=65000))
        bgp = BgpProcess("C0", config, VendorProfile.cisco())
        own = BgpRoute(prefix=RP, next_hop=1, from_peer="RR", originator_id=1)
        assert bgp.receive("RR", own) is None


class TestDecisionTieBreaks:
    def test_shorter_cluster_list_preferred(self):
        from repro.protocols.bgp_decision import VendorProfile, best_path
        from repro.protocols.routes import BgpRoute

        near = BgpRoute(prefix=RP, next_hop=1, cluster_list=(100,))
        far = BgpRoute(prefix=RP, next_hop=2, cluster_list=(100, 101))
        profile = VendorProfile.cisco()
        assert best_path([far, near], profile) == near


class TestHbrThroughReflection:
    def test_provenance_crosses_the_reflector(self, star):
        """Root-causing C2's FIB entry walks through RR back to C0's
        receive from the external peer."""
        graph = InferenceEngine().build_graph(star.collector.all_events())
        fib = star.collector.query(
            router="C2", kind=IOKind.FIB_UPDATE, prefix=RP
        )
        target = max(fib, key=lambda e: e.timestamp)
        result = ProvenanceTracer(graph).trace(target.event_id)
        routers_in_chain = {
            graph.event(i).router for i in result.ancestry
        }
        assert {"RR", "C0"} <= routers_in_chain
