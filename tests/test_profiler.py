"""Tests for the deterministic sampling profiler: the zero-cost
disabled path, event-paced determinism, stage/rule attribution, and
the collapsed-stack / speedscope / metrics exports."""

import json
import sys

import pytest

from repro import obs
from repro.hbr.inference import InferenceEngine
from repro.obs.profiler import (
    NULL_PROFILER,
    DeterministicProfiler,
    NullProfiler,
    stage_for_path,
)
from repro.scenarios.fig2 import Fig2Scenario


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Never leak an installed profile hook into other tests."""
    yield
    obs.disable_profiling()
    obs.disable()
    assert sys.getprofile() is None


def _busy_workload(rounds=40):
    """A deterministic pure-Python workload with a few frames."""

    def leaf(n):
        return sum(range(n))

    def middle(n):
        return leaf(n) + leaf(n // 2)

    total = 0
    for i in range(rounds):
        total += middle(50 + i)
    return total


def _fig2_events():
    net = Fig2Scenario().run_fig2a()
    return net.collector.all_events()


class TestStageMapping:
    @pytest.mark.parametrize(
        ("path", "stage"),
        [
            ("/x/src/repro/hbr/inference.py", "inference"),
            ("/x/src/repro/net/simulator.py", "sim"),
            ("/x/src/repro/protocols/bgp.py", "sim"),
            ("/x/src/repro/snapshot/consistent.py", "snapshot"),
            ("/x/src/repro/verify/verifier.py", "verify"),
            ("/x/src/repro/repair/provenance.py", "repair"),
            ("/x/src/repro/core/pipeline.py", "pipeline"),
            ("/x/src/repro/obs/metrics.py", "obs"),
            ("/usr/lib/python3.11/json/encoder.py", "other"),
        ],
    )
    def test_paths_map_to_stages(self, path, stage):
        assert stage_for_path(path) == stage

    def test_windows_separators_normalised(self):
        assert stage_for_path("C:\\x\\repro\\hbr\\rules.py") == "inference"


class TestLifecycle:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            DeterministicProfiler(stride=0)
        with pytest.raises(ValueError):
            DeterministicProfiler(weights="cpu")
        with pytest.raises(ValueError):
            DeterministicProfiler(max_stack=0)

    def test_start_installs_and_stop_removes_the_hook(self):
        profiler = DeterministicProfiler(stride=1)
        assert sys.getprofile() is None
        profiler.start()
        try:
            assert profiler.running
            assert sys.getprofile() is not None
        finally:
            profiler.stop()
        assert sys.getprofile() is None
        assert not profiler.running

    def test_stop_leaves_foreign_hooks_alone(self):
        profiler = DeterministicProfiler(stride=1)
        profiler.start()

        def foreign(frame, event, arg):
            pass

        sys.setprofile(foreign)
        try:
            profiler.stop()
            assert sys.getprofile() is foreign
        finally:
            sys.setprofile(None)

    def test_clear_resets_counters_and_stacks(self):
        profiler = DeterministicProfiler(stride=1, weights="events")
        profiler.start()
        _busy_workload(5)
        profiler.stop()
        assert profiler.samples_total > 0
        profiler.clear()
        assert profiler.samples_total == 0
        assert profiler.events_total == 0
        assert profiler.stacks() == {}


class TestDeterminism:
    def test_events_mode_is_byte_identical_across_runs(self):
        def run():
            profiler = DeterministicProfiler(stride=7, weights="events")
            profiler.start()
            _busy_workload()
            profiler.stop()
            return profiler

        first, second = run(), run()
        assert first.collapsed() == second.collapsed()
        assert first.events_total == second.events_total
        assert first.samples_total == second.samples_total
        assert json.dumps(first.speedscope(), sort_keys=True) == json.dumps(
            second.speedscope(), sort_keys=True
        )

    def test_stride_paces_sampling(self):
        profiler = DeterministicProfiler(stride=10, weights="events")
        profiler.start()
        _busy_workload()
        profiler.stop()
        assert profiler.samples_total == profiler.events_total // 10


class TestAttribution:
    def _profiled_build(self):
        events = _fig2_events()
        with obs.profiling(stride=3, weights="events") as profiler:
            InferenceEngine().build_graph(events)
        return profiler

    def test_inference_stage_dominates_a_build(self):
        profiler = self._profiled_build()
        by_stage = profiler.self_weight_by_stage()
        assert by_stage, "a build this size must collect samples"
        assert "inference" in by_stage
        assert by_stage["inference"] == max(by_stage.values())

    def test_rule_attribution_names_hbr_rules(self):
        profiler = self._profiled_build()
        by_rule = profiler.self_weight_by_rule()
        # Rule frames live in repro/hbr/rules.py; a full build spends
        # real time there, so at least one rule function must appear.
        assert by_rule
        assert all(weight > 0 for weight in by_rule.values())

    def test_max_stack_bounds_sample_depth(self):
        profiler = DeterministicProfiler(stride=1, weights="events",
                                         max_stack=3)
        profiler.start()
        _busy_workload(10)
        profiler.stop()
        assert profiler.stacks()
        assert all(len(s) <= 3 for s in profiler.stacks())


class TestExports:
    def test_collapsed_lines_are_sorted_and_weighted(self):
        profiler = DeterministicProfiler(stride=5, weights="events")
        profiler.start()
        _busy_workload()
        profiler.stop()
        lines = profiler.collapsed()
        assert lines == sorted(lines)
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert ";" in path or ":" in path
            assert float(weight) > 0

    def test_speedscope_document_shape(self):
        profiler = DeterministicProfiler(stride=5, weights="events")
        profiler.start()
        _busy_workload()
        profiler.stop()
        document = json.loads(json.dumps(profiler.speedscope("x")))
        assert document["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = document["shared"]["frames"]
        profile = document["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "none"  # events mode
        assert len(profile["samples"]) == len(profile["weights"])
        for stack in profile["samples"]:
            assert all(0 <= index < len(frames) for index in stack)
        assert profile["endValue"] == pytest.approx(
            sum(profile["weights"])
        )

    def test_wall_mode_exports_seconds(self):
        with obs.profiling(stride=3, weights="wall") as profiler:
            _busy_workload()
        assert profiler.speedscope()["profiles"][0]["unit"] == "seconds"
        assert profiler.wall_seconds() > 0
        assert profiler.samples_per_sec() > 0

    def test_publish_emits_profile_metrics(self):
        with obs.capturing() as (registry, _tracer):
            profiler = DeterministicProfiler(stride=3, weights="events")
            profiler.start()
            _busy_workload()
            profiler.stop()
            profiler.publish(registry)
            histograms = {h.name for h in registry.histograms()}
            counters = {c.name: c.value for c in registry.counters()}
        assert "profile.self_seconds" in histograms
        assert counters["profile.samples_total"] == profiler.samples_total
        assert counters["profile.events_total"] == profiler.events_total

    def test_publish_noop_when_metrics_disabled(self):
        profiler = DeterministicProfiler(stride=3, weights="events")
        profiler.start()
        _busy_workload(5)
        profiler.stop()
        profiler.publish(obs.get_registry())  # must not raise


class TestObsWiring:
    def test_off_by_default_with_no_hook_installed(self):
        assert obs.get_profiler() is NULL_PROFILER
        assert obs.get_profiler().enabled is False
        assert sys.getprofile() is None

    def test_enable_disable_profiling(self):
        profiler = obs.enable_profiling(stride=11, weights="events")
        assert obs.get_profiler() is profiler and profiler.running
        obs.disable_profiling()
        assert obs.get_profiler() is NULL_PROFILER
        assert sys.getprofile() is None

    def test_profiling_context_restores_and_uninstalls(self):
        with obs.profiling(stride=11, weights="events") as profiler:
            assert obs.get_profiler() is profiler
            assert sys.getprofile() is not None
        assert obs.get_profiler() is NULL_PROFILER
        assert sys.getprofile() is None
        assert not profiler.running

    def test_null_profiler_is_inert(self):
        null = NullProfiler()
        null.start()
        assert sys.getprofile() is None  # "off" installs nothing at all
        null.stop()
        assert null.stacks() == {} and null.collapsed() == []
        assert null.speedscope()["profiles"] == []
        assert null.samples_per_sec() == 0.0
        null.publish()
        null.clear()
