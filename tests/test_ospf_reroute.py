"""End-to-end OSPF scenarios: cost changes, multihop iBGP, provenance."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix, parse_ip
from repro.net.config import (
    BgpNeighborConfig,
    ConfigChange,
    OspfInterfaceConfig,
    RouterConfig,
)
from repro.net.simulator import DelayModel
from repro.net.topology import Router, Topology
from repro.protocols.network import Network
from repro.repair.provenance import ProvenanceTracer

XP = Prefix.parse("203.0.113.0/24")


def _delays():
    return DelayModel(
        fib_install=0.001,
        rib_update=0.0005,
        advertisement=0.001,
        config_to_reconfig=0.05,
        spf_compute=0.001,
    )


def _diamond_network(seed=0):
    """A diamond: S - (A | B) - D, with an external peer at D.

    S reaches D via A (cost 10+10) or via B (cost 10+10); we nudge
    costs to steer.  iBGP full mesh over the OSPF underlay (the S<->D
    session is multihop), next_hop_self on D — transit routers carry
    the BGP route too, as a real non-MPLS core must.
    """
    topo = Topology("diamond")
    for index, name in enumerate(("S", "A", "B", "D")):
        topo.add_router(
            Router(name, asn=65000, loopback=parse_ip("192.168.0.1") + index)
        )
    topo.add_router(
        Router("Ext", asn=65009, loopback=parse_ip("192.168.9.9"), external=True)
    )
    links = [
        ("S", "A", "10.242.0.0/30"),
        ("S", "B", "10.242.0.4/30"),
        ("A", "D", "10.242.0.8/30"),
        ("B", "D", "10.242.0.12/30"),
        ("D", "Ext", "10.242.0.16/30"),
    ]
    for a, b, subnet in links:
        topo.connect(a, b, Prefix.parse(subnet))

    configs = {}
    for name in ("S", "A", "B", "D"):
        config = RouterConfig(
            router=name, asn=65000, router_id=ord(name[0])
        )
        router = topo.router(name)
        for iface_name in router.interfaces:
            link = next(
                l
                for l in topo.links_of(name)
                if l.interface_of(name).name == iface_name
            )
            if link.other_end(name).router == "Ext":
                continue
            config.ospf_interfaces[iface_name] = OspfInterfaceConfig(
                iface_name, cost=10
            )
        configs[name] = config
    internal = ("S", "A", "B", "D")
    for name in internal:
        for peer in internal:
            if peer == name:
                continue
            configs[name].add_bgp_neighbor(
                BgpNeighborConfig(
                    peer=peer,
                    remote_asn=65000,
                    next_hop_self=(name == "D"),
                )
            )
    configs["D"].add_bgp_neighbor(
        BgpNeighborConfig(peer="Ext", remote_asn=65009)
    )
    ext = RouterConfig(router="Ext", asn=65009, router_id=99)
    ext.add_bgp_neighbor(BgpNeighborConfig(peer="D", remote_asn=65000))
    net = Network(
        topo, list(configs.values()) + [ext], seed=seed, delays=_delays()
    )
    net.start()
    net.announce_prefix("Ext", XP)
    net.run(10)
    return net


class TestMultihopIbgp:
    def test_session_over_ospf_underlay(self):
        net = _diamond_network()
        best = net.runtime("S").bgp.rib.best(XP)
        assert best is not None
        assert best.from_peer == "D"

    def test_fib_resolves_via_igp(self):
        net = _diamond_network()
        entry = net.runtime("S").fib.get(XP)
        assert entry is not None
        assert entry.next_hop_router in ("A", "B")

    def test_end_to_end_delivery(self):
        net = _diamond_network()
        path, outcome = net.trace_path("S", XP.first_address())
        assert outcome == "delivered"
        assert path[0] == "S" and path[-1] == "Ext"
        assert len(path) == 4  # S -> (A|B) -> D -> Ext


class TestOspfCostReroute:
    def test_cost_change_shifts_traffic(self):
        net = _diamond_network()
        entry_before = net.runtime("S").fib.get(XP)
        via_before = entry_before.next_hop_router
        other = "B" if via_before == "A" else "A"
        # Penalise the current path's first link heavily.
        iface = net.topology.link_between("S", via_before).interface_of("S")
        change = ConfigChange(
            "S",
            "set_ospf_cost",
            key=iface.name,
            value=100,
            description=f"penalise link to {via_before}",
        )
        net.apply_config_change(change)
        net.run(10)
        entry_after = net.runtime("S").fib.get(XP)
        assert entry_after.next_hop_router == other

    def test_reroute_is_traced_to_cost_change(self):
        net = _diamond_network()
        via_before = net.runtime("S").fib.get(XP).next_hop_router
        iface = net.topology.link_between("S", via_before).interface_of("S")
        change = ConfigChange(
            "S",
            "set_ospf_cost",
            key=iface.name,
            value=100,
            description="penalise link",
        )
        t_change = net.sim.now
        net.apply_config_change(change)
        net.run(10)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        fibs = [
            e
            for e in net.collector.query(
                router="S", kind=IOKind.FIB_UPDATE, prefix=XP
            )
            if e.timestamp > t_change
        ]
        assert fibs
        result = ProvenanceTracer(graph).trace(
            max(fibs, key=lambda e: e.timestamp).event_id
        )
        config_events = [
            e
            for e in result.root_causes
            if e.kind is IOKind.CONFIG_CHANGE and e.router == "S"
        ]
        assert config_events
        assert change.change_id in result.config_change_ids()

    def test_cost_change_revertible(self):
        net = _diamond_network()
        via_before = net.runtime("S").fib.get(XP).next_hop_router
        iface = net.topology.link_between("S", via_before).interface_of("S")
        change = ConfigChange(
            "S", "set_ospf_cost", key=iface.name, value=100
        )
        net.apply_config_change(change)
        net.run(10)
        net.apply_config_change(change.inverted())
        net.run(10)
        assert net.runtime("S").fib.get(XP).next_hop_router == via_before


class TestPathFailover:
    def test_losing_active_path_fails_over(self):
        net = _diamond_network()
        via = net.runtime("S").fib.get(XP).next_hop_router
        other = "B" if via == "A" else "A"
        net.fail_link("S", via)
        net.run(10)
        entry = net.runtime("S").fib.get(XP)
        assert entry is not None and entry.next_hop_router == other
        path, outcome = net.trace_path("S", XP.first_address())
        assert outcome == "delivered"

    def test_losing_both_paths_kills_session_state(self):
        net = _diamond_network()
        net.fail_link("S", "A")
        net.fail_link("S", "B")
        net.run(10)
        # S is partitioned from D: the iBGP session drops and the
        # route disappears.
        assert net.runtime("S").fib.get(XP) is None
