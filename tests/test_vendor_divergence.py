"""Tests for the vendor-divergence scenario (§2's model-gap motivation)."""

import pytest

from repro.scenarios.vendor import (
    FIRST_PEER,
    SECOND_PEER,
    VP,
    VendorDivergenceScenario,
    divergence,
)


class TestDivergence:
    def test_cisco_prefers_first_arrival(self, fast_delays):
        scenario = VendorDivergenceScenario(
            vendor="cisco", seed=0, delays=fast_delays
        )
        scenario.run()
        assert scenario.chosen_exit() == FIRST_PEER

    def test_juniper_prefers_low_router_id(self, fast_delays):
        scenario = VendorDivergenceScenario(
            vendor="juniper", seed=0, delays=fast_delays
        )
        scenario.run()
        assert scenario.chosen_exit() == SECOND_PEER

    def test_identical_configs_diverge(self, fast_delays):
        cisco_exit, juniper_exit = divergence(seed=0, delays=fast_delays)
        assert cisco_exit != juniper_exit

    def test_divergence_stable_across_seeds(self, fast_delays):
        for seed in (1, 2, 3):
            cisco_exit, juniper_exit = divergence(seed=seed, delays=fast_delays)
            assert cisco_exit == FIRST_PEER
            assert juniper_exit == SECOND_PEER

    def test_data_plane_reflects_divergence(self, fast_delays):
        cisco = VendorDivergenceScenario(
            vendor="cisco", seed=0, delays=fast_delays
        )
        cisco.run()
        juniper = VendorDivergenceScenario(
            vendor="juniper", seed=0, delays=fast_delays
        )
        juniper.run()
        cisco_path, _ = cisco.network.trace_path("B1", VP.first_address())
        juniper_path, _ = juniper.network.trace_path("B1", VP.first_address())
        assert cisco_path[-1] == FIRST_PEER
        assert juniper_path[-1] == SECOND_PEER

    def test_deterministic_profile_removes_divergence(self, fast_delays):
        """§8: Add-Path-style determinism makes both vendors converge
        on an order-independent choice."""
        from repro.scenarios.vendor import _build
        from repro.scenarios.vendor import VP as prefix

        exits = []
        for vendor in ("cisco", "juniper"):
            net = _build(vendor, 0, fast_delays)
            net.deterministic_bgp = True
            # Rebuild runtimes with the deterministic profile.
            from repro.protocols.router import RouterRuntime

            net.runtimes = {
                r.name: RouterRuntime(r, net) for r in net.topology
            }
            net.start()
            net.announce_prefix(FIRST_PEER, prefix)
            net.run(1.0)
            net.announce_prefix(SECOND_PEER, prefix)
            net.run(5.0)
            best = net.runtime("B1").bgp.rib.best(prefix)
            exits.append(best.from_peer)
        assert exits[0] == exits[1]
