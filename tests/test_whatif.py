"""Tests for the §8 what-if engine (CrystalNet-style forked emulation)."""

import pytest

from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.whatif.engine import (
    WhatIfEngine,
    config_change,
    link_failure,
    link_recovery,
    route_announcement,
    route_withdrawal,
)


@pytest.fixture
def live(fig1):
    """A converged live network (Fig. 1b state: exit via R2)."""
    return fig1.run_fig1b()


@pytest.fixture
def engine(live):
    return WhatIfEngine(live, [paper_policy()], settle=30.0)


class TestForking:
    def test_fork_reconverges_to_live_state(self, engine):
        fork = engine.fork(seed=123)
        assert engine._forwarding_matches(fork)

    def test_fork_is_isolated(self, engine, live):
        fork = engine.fork(seed=123)
        fork.fail_link("R2", "Ext2")
        fork.run(10)
        # The live network is untouched.
        link = live.topology.link_between("R2", "Ext2")
        assert link.up
        path, outcome = live.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext2"

    def test_fork_copies_link_state(self, engine, live):
        live.fail_link("R1", "R3")
        live.run(5)
        fork = engine.fork(seed=5)
        forked_link = fork.topology.link_between("R1", "R3")
        assert not forked_link.up


class TestQuestions:
    def test_bad_change_predicted_unsafe(self, engine, live):
        result = engine.is_change_safe(bad_lp_change())
        assert not result.safe
        assert any(v.policy == "preferred-exit" for v in result.violations)
        # The live network never saw the change.
        lp = live.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
        assert lp.set_local_pref == 30

    def test_harmless_change_predicted_safe(self, engine):
        from repro.net.config import ConfigChange, local_pref_map

        harmless = ConfigChange(
            "R2",
            "set_route_map",
            key="r2-uplink-lp",
            value=local_pref_map("r2-uplink-lp", 40),  # still > R1's 20
            description="raise preferred uplink LP",
        )
        result = engine.is_change_safe(harmless)
        assert result.safe

    def test_uplink_failure_without_backup_unsafe_shape(self, engine):
        """Fig. 1b state has both uplinks announcing; losing R2's
        uplink fails over to R1 — safe under the policy (fallback)."""
        result = engine.survives_link_failure("R2", "Ext2")
        assert result.safe
        # But forwarding changed: everyone moved to Ext1.
        assert result.deltas
        path, outcome = result.hypothetical.trace("R3", P.first_address())
        assert outcome == "delivered" and "Ext1" in path

    def test_withdrawal_question(self, engine):
        """Withdrawing Ext2's route while the uplink stays physically
        up *violates* the as-written policy (it keys on link status) —
        the §8 observation that some violations cannot be repaired."""
        result = engine.ask([route_withdrawal("Ext2", P)])
        assert not result.safe
        assert all(v.policy == "preferred-exit" for v in result.violations)
        movers = {d.router for d in result.deltas}
        assert {"R1", "R2", "R3"} <= movers

    def test_combined_injection_blackhole(self, engine):
        """Withdraw the fallback and fail the preferred uplink: no
        route anywhere — reachability-free but not policy-violating
        (both uplinks unusable disables the preferred-exit policy)."""
        result = engine.ask(
            [route_withdrawal("Ext1", P), link_failure("R2", "Ext2")]
        )
        assert result.safe
        entry = result.hypothetical.entry("R3", P)
        assert entry is None

    def test_deltas_describe(self, engine):
        result = engine.ask([route_withdrawal("Ext2", P)])
        text = result.describe()
        assert "VIOLATES" in text
        assert "->" in text
        safe_text = engine.ask([]).describe()
        assert "SAFE" in safe_text

    def test_recovery_injection(self, engine, live):
        live.fail_link("R2", "Ext2")
        live.run(5)
        engine2 = WhatIfEngine(live, [paper_policy()], settle=30.0)
        result = engine2.ask([link_recovery("R2", "Ext2")])
        assert result.safe
        path, outcome = result.hypothetical.trace("R3", P.first_address())
        assert outcome == "delivered" and "Ext2" in path

    def test_announcement_injection(self, fig1):
        net = fig1.run_fig1a()  # only Ext1 announcing
        engine = WhatIfEngine(net, [paper_policy()], settle=30.0)
        result = engine.ask([route_announcement("Ext2", P)])
        assert result.safe
        path, _ = result.hypothetical.trace("R3", P.first_address())
        assert "Ext2" in path

    def test_fork_match_flag(self, engine):
        result = engine.ask([])
        assert result.fork_matches_live
        assert result.deltas == []
