"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.capture.io_events import reset_event_ids
from repro.net.simulator import DelayModel
from repro.net.topology import paper_prefix
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import build_paper_network, paper_policy


@pytest.fixture(autouse=True)
def _fresh_event_ids():
    """Keep event ids small and deterministic within each test."""
    reset_event_ids()
    yield


@pytest.fixture
def prefix_p():
    return paper_prefix()


@pytest.fixture
def paper_network():
    """The paper's 5-router network, built but not started."""
    return build_paper_network(seed=0)


@pytest.fixture
def fast_delays():
    """Millisecond-scale delays for tests that need quick convergence."""
    return DelayModel(
        fib_install=0.001,
        rib_update=0.0005,
        advertisement=0.001,
        config_to_reconfig=0.05,
        spf_compute=0.001,
    )


@pytest.fixture
def fig1(fast_delays):
    return Fig1Scenario(seed=0, delays=fast_delays)


@pytest.fixture
def fig2(fast_delays):
    return Fig2Scenario(seed=0, delays=fast_delays)


@pytest.fixture
def exit_policy():
    return paper_policy()
