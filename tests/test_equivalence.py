"""Tests for prefix equivalence grouping (§6)."""

import pytest

from repro.net.addr import Prefix
from repro.repair.equivalence import PrefixGrouper
from repro.scenarios.generators import planted_ec_snapshot
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


def _snapshot(rows):
    """rows: list of (router, prefix, next_hop)."""
    snapshot = DataPlaneSnapshot()
    for router, prefix, nh in rows:
        snapshot.install(
            SnapshotEntry(router, prefix, nh, "eth0", "ibgp", False, 0, 1.0)
        )
    return snapshot


class TestGrouping:
    def test_identical_prefixes_grouped(self):
        snapshot = _snapshot(
            [("R1", P, "R2"), ("R2", P, "Ext2"),
             ("R1", Q, "R2"), ("R2", Q, "Ext2")]
        )
        groups = PrefixGrouper().group(snapshot)
        assert len(groups) == 1
        assert set(groups[0].prefixes) == {P, Q}

    def test_divergent_prefixes_split(self):
        snapshot = _snapshot(
            [("R1", P, "R2"), ("R1", Q, "R3")]
        )
        groups = PrefixGrouper().group(snapshot)
        assert len(groups) == 2

    def test_group_of(self):
        snapshot = _snapshot([("R1", P, "R2"), ("R1", Q, "R3")])
        grouper = PrefixGrouper()
        groups = grouper.group(snapshot)
        found = grouper.group_of(groups, P)
        assert found is not None and P in found.prefixes
        assert grouper.group_of(groups, Prefix.parse("10.0.0.0/8")) is None

    def test_representative_is_member(self):
        snapshot = _snapshot([("R1", P, "R2"), ("R1", Q, "R2")])
        groups = PrefixGrouper().group(snapshot)
        for group in groups:
            assert group.representative in group.prefixes

    def test_planted_group_count_recovered(self):
        for planted in (2, 5, 12):
            snapshot, _ = planted_ec_snapshot(
                num_prefixes=120, num_classes=planted, num_routers=6, seed=3
            )
            groups = PrefixGrouper().group(snapshot)
            assert len(groups) == planted

    def test_compression_matches_paper_claim_shape(self):
        """§6: many prefixes, few classes — compression far above 1."""
        snapshot, _ = planted_ec_snapshot(
            num_prefixes=1000, num_classes=10, num_routers=8, seed=0
        )
        groups = PrefixGrouper().group(snapshot)
        assert PrefixGrouper.compression(groups) == pytest.approx(100.0)

    def test_router_subset_coarsens(self):
        snapshot = _snapshot(
            [("R1", P, "R2"), ("R2", P, "Ext2"),
             ("R1", Q, "R2"), ("R2", Q, "R9")]
        )
        all_groups = PrefixGrouper().group(snapshot)
        r1_groups = PrefixGrouper(routers=["R1"]).group(snapshot)
        assert len(all_groups) == 2
        assert len(r1_groups) == 1

    def test_empty_snapshot(self):
        assert PrefixGrouper().group(DataPlaneSnapshot()) == []
        assert PrefixGrouper.compression([]) == 0.0
