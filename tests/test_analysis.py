"""Tests for the analysis/rendering module."""

import pytest

from repro.analysis.report import IncidentReporter
from repro.analysis.timeline import render_timeline
from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.fig5 import Fig5Scenario
from repro.scenarios.paper_net import P, paper_policy
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.verifier import DataPlaneVerifier


@pytest.fixture(scope="module")
def fig5_capture():
    scenario = Fig5Scenario(seed=0)
    net = scenario.run_localpref_change()
    return scenario, net


class TestTimeline:
    def test_empty_window(self, fig5_capture):
        _scenario, net = fig5_capture
        text = render_timeline(net.collector.all_events(), since=1e9)
        assert "no events" in text

    def test_lanes_contain_router_names(self, fig5_capture):
        scenario, net = fig5_capture
        text = render_timeline(
            net.collector.all_events(), since=scenario.t_change
        )
        header = text.splitlines()[0]
        for router in ("R1", "R2", "R3"):
            assert router in header

    def test_fig5_shape_rendered(self, fig5_capture):
        """The rendering shows the Fig. 5 ladder: config, then ~25 s
        gap, then RIB/FIB/Send cells."""
        scenario, net = fig5_capture
        text = render_timeline(
            net.collector.all_events(), since=scenario.t_change
        )
        assert "Config" in text
        assert "RIB" in text and "FIB" in text and "Send" in text
        assert "+26.1s" in text or "+25" in text or "+26" in text

    def test_delay_annotations_in_ms(self, fig5_capture):
        scenario, net = fig5_capture
        text = render_timeline(
            net.collector.all_events(), since=scenario.t_change + 26.0
        )
        assert "ms" in text

    def test_router_subset(self, fig5_capture):
        scenario, net = fig5_capture
        text = render_timeline(
            net.collector.all_events(),
            routers=["R1"],
            since=scenario.t_change,
        )
        assert "R1" in text.splitlines()[0]
        assert "R2" not in text.splitlines()[0]

    def test_long_cells_truncated(self, fig5_capture):
        scenario, net = fig5_capture
        text = render_timeline(
            net.collector.all_events(),
            since=scenario.t_change,
            column_width=12,
        )
        for line in text.splitlines()[2:]:
            # time column (14) + lanes; no cell text overruns its lane
            assert len(line) <= 14 + 2 + (12 + 2) * 3 + 4


class TestIncidentReporter:
    def _incident(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig2a()
        graph = InferenceEngine().build_graph(net.collector.all_events())
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        violations = verifier.verify(
            DataPlaneSnapshot.from_live_network(net)
        ).violations
        config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
        fibs = [
            e
            for e in net.collector.query(kind=IOKind.FIB_UPDATE, prefix=P)
            if e.timestamp > config.timestamp
        ]
        provenance = ProvenanceTracer(graph).trace_many(
            [e.event_id for e in fibs]
        )
        return net, graph, violations, provenance

    def test_report_contains_sections(self, fast_delays):
        net, graph, violations, provenance = self._incident(fast_delays)
        text = IncidentReporter(graph).render(violations, provenance)
        assert "INCIDENT REPORT" in text
        assert "Violations detected" in text
        assert "Root-cause analysis" in text
        assert "Causal timeline" in text
        assert "Blast radius" in text
        assert "Operator guidance" in text

    def test_report_names_the_config_change(self, fast_delays):
        net, graph, violations, provenance = self._incident(fast_delays)
        text = IncidentReporter(graph).render(violations, provenance)
        assert "config change" in text
        assert "local-pref" in text

    def test_report_with_repair(self, fast_delays):
        from repro.repair.rollback import RepairEngine

        net, graph, violations, provenance = self._incident(fast_delays)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        repair = RepairEngine(net, verifier).repair(provenance, settle=30.0)
        text = IncidentReporter(graph).render(
            violations, provenance, repair=repair
        )
        assert "Automatic repair" in text
        assert "reverted automatically" in text

    def test_report_without_provenance(self, fast_delays):
        net, graph, violations, _ = self._incident(fast_delays)
        text = IncidentReporter(graph).render(violations)
        assert "No actionable root cause" in text
