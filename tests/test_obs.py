"""Tests for repro.obs: metrics, tracing, exporters, and integration."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    ExpositionError,
    format_table,
    missing_sections,
    parse_exposition,
    registry_to_dict,
    render_json,
    render_jsonl,
    render_prometheus,
    render_table,
    validate_exposition,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NullTracer, Tracer


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Never leak an enabled registry into other (timing-sensitive) tests."""
    yield
    obs.disable()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x.total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x.total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("x.depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_empty_histogram_percentiles_are_none(self):
        histogram = Histogram("x.seconds")
        assert histogram.count == 0
        assert histogram.percentile(50) is None
        assert histogram.percentile(99) is None
        assert histogram.mean is None
        assert histogram.min is None and histogram.max is None

    def test_single_sample_is_every_percentile(self):
        histogram = Histogram("x.seconds")
        histogram.observe(0.25)
        for p in (0, 50, 95, 99, 100):
            assert histogram.percentile(p) == 0.25
        assert histogram.mean == 0.25
        assert histogram.min == histogram.max == 0.25

    def test_percentiles_nearest_rank(self):
        histogram = Histogram("x.seconds")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_percentile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_moments_exact_beyond_reservoir(self):
        histogram = Histogram("x.seconds", max_samples=16)
        for value in range(1000):
            histogram.observe(float(value))
        assert histogram.count == 1000
        assert histogram.sum == sum(range(1000))
        assert histogram.min == 0.0 and histogram.max == 999.0
        assert len(histogram._samples) == 16  # bounded memory

    def test_summary_keys(self):
        histogram = Histogram("x.seconds")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a.total") is registry.counter("a.total")
        assert registry.counter("a.total", k="1") is not registry.counter(
            "a.total", k="2"
        )
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_sections_from_name_prefix(self):
        registry = MetricsRegistry()
        registry.counter("verify.x").inc()
        registry.gauge("capture.y").set(1)
        registry.histogram("repair.z").observe(1)
        assert registry.sections() == ["capture", "repair", "verify"]

    def test_null_registry_is_free_and_silent(self):
        registry = NullRegistry()
        assert not registry.enabled
        registry.counter("a").inc()
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1.0)
        assert len(registry) == 0
        assert registry.sections() == []
        assert registry.histogram("c").percentile(50) is None

    def test_global_enable_disable_roundtrip(self):
        assert not obs.enabled()
        registry, tracer = obs.enable()
        assert obs.enabled()
        assert obs.get_registry() is registry
        registry.counter("x.total").inc()
        obs.disable()
        assert not obs.enabled()
        # Writes after disable go to the null registry, not the old one.
        obs.get_registry().counter("x.total").inc(100)
        assert registry.counter("x.total").value == 1

    def test_capturing_context_restores_previous(self):
        with obs.capturing() as (registry, _tracer):
            assert obs.get_registry() is registry
        assert not obs.enabled()

    def test_metric_creation_is_serialized_by_internal_lock(self):
        """Regression for the scrape-vs-pipeline registry race.

        Before the registry grew its internal lock, a /metrics scrape
        thread iterating ``counters()`` raced metric *creation* on the
        owner thread ("dictionary changed size during iteration").
        Creation of a new metric must block while the lock is held;
        the get-or-create hit path must not need it.
        """
        import threading

        registry = MetricsRegistry()
        registry.counter("pre.total")
        created = threading.Event()

        def create_new():
            registry.counter("post.total").inc()
            created.set()

        with registry._lock:
            worker = threading.Thread(target=create_new, daemon=True)
            worker.start()
            assert not created.wait(0.1), "creation ignored the lock"
            # The lock-free hit path must still work while held.
            assert registry.counter("pre.total") is not None
        worker.join(timeout=5)
        assert created.is_set()
        assert registry.counter("post.total").value == 1

    def test_concurrent_creation_and_snapshot_do_not_race(self):
        """Hammer get-or-create against snapshot iteration."""
        import threading

        registry = MetricsRegistry()
        errors = []

        def creator():
            try:
                for i in range(300):
                    registry.counter("c.total", i=str(i)).inc()
                    registry.histogram("h.seconds", i=str(i)).observe(0.1)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def scraper():
            try:
                for _ in range(300):
                    list(registry.counters())
                    list(registry.histograms())
                    registry.all_metrics()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=creator),
            threading.Thread(target=scraper),
            threading.Thread(target=scraper),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert len(registry.counters()) == 300


class TestTracer:
    def test_nesting_records_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.finished("outer")[0]
        inner = tracer.finished("inner")[0]
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert tracer.active_depth == 0

    def test_exception_safety(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner = tracer.finished("inner")[0]
        outer = tracer.finished("outer")[0]
        assert inner.status == "error" and "boom" in inner.error
        assert outer.status == "error"
        assert tracer.active_depth == 0
        # Tracer still usable after the exception unwound.
        with tracer.span("after"):
            pass
        assert tracer.finished("after")[0].status == "ok"

    def test_decorator_form(self):
        tracer = Tracer()

        @tracer.span("work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work.__name__ == "work"
        assert len(tracer.finished("work")) == 1

    def test_late_bound_traced_decorator(self):
        @obs.traced("late.work")
        def work():
            return 7

        assert work() == 7  # tracer disabled: no records anywhere
        registry, tracer = obs.enable()
        assert work() == 7
        assert len(tracer.finished("late.work")) == 1
        # ... and the span fed a histogram in the registry.
        assert registry.histogram("span.late.work_seconds").count == 1

    def test_span_feeds_registry_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("stage"):
            pass
        assert registry.histogram("span.stage_seconds").count == 1

    def test_bounded_records(self):
        tracer = Tracer(max_records=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped == 3

    def test_null_tracer_passthrough(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass

        @tracer.span("y")
        def fn():
            return 1

        assert fn() == 1
        assert tracer.finished() == []


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("verify.fib_writes_verified").inc(4)
        registry.counter("capture.events", kind="fib_update").inc(9)
        registry.gauge("sim.events_per_wall_second").set(1234.5)
        histogram = registry.histogram("verify.latency_seconds")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        tracer = Tracer(registry=registry)
        with tracer.span("scenario.pipeline"):
            pass
        return registry, tracer

    def test_registry_to_dict_sections(self):
        registry, tracer = self._populated()
        document = registry_to_dict(registry, tracer)
        assert document["schema"] == "repro-obs/v1"
        assert set(document["sections"]) >= {"verify", "capture", "sim", "span"}
        verify = document["sections"]["verify"]
        assert verify["counters"]["verify.fib_writes_verified"] == 4
        latency = verify["histograms"]["verify.latency_seconds"]
        assert latency["count"] == 3
        assert latency["p50"] == 0.002
        assert document["spans"]["recorded"] == 1

    def test_labels_in_metric_keys(self):
        registry, _ = self._populated()
        document = registry_to_dict(registry)
        capture = document["sections"]["capture"]["counters"]
        assert capture["capture.events{kind=fib_update}"] == 9

    def test_render_json_roundtrips(self):
        registry, tracer = self._populated()
        text = render_json(registry, tracer, meta={"seed": 0})
        document = json.loads(text)
        assert document["meta"]["seed"] == 0
        assert "sections" in document

    def test_render_jsonl_one_object_per_line(self):
        registry, tracer = self._populated()
        lines = render_jsonl(registry, tracer).splitlines()
        parsed = [json.loads(line) for line in lines]
        kinds = {record["kind"] for record in parsed}
        assert kinds == {"counter", "gauge", "histogram", "span"}

    def test_render_table_contains_sections_and_metrics(self):
        registry, tracer = self._populated()
        text = render_table(registry, tracer)
        assert "[verify]" in text and "[capture]" in text
        assert "verify.fib_writes_verified" in text
        assert "[spans]" in text and "scenario.pipeline" in text

    def test_render_table_empty_registry(self):
        assert "no metrics" in render_table(MetricsRegistry())

    def test_render_prometheus_format(self):
        registry, _ = self._populated()
        text = render_prometheus(registry)
        assert "# TYPE repro_verify_fib_writes_verified counter" in text
        assert 'repro_capture_events{kind="fib_update"} 9' in text
        assert 'repro_verify_latency_seconds{quantile="0.5"} 0.002' in text
        assert "repro_verify_latency_seconds_count 3" in text

    def test_prometheus_label_values_escaped_per_spec(self):
        registry = MetricsRegistry()
        registry.counter("capture.events", router='edge"1').inc()
        registry.counter("capture.events", router="back\\slash").inc()
        registry.counter("capture.events", router="two\nlines").inc()
        text = render_prometheus(registry)
        assert 'router="edge\\"1"' in text
        assert 'router="back\\\\slash"' in text
        assert 'router="two\\nlines"' in text
        # The escaping keeps every sample on its own line.
        assert len(text.splitlines()) == 4  # 1 TYPE + 3 samples

    def test_prometheus_hostile_labels_round_trip(self):
        hostile = 'a"b\\c\nd'
        registry = MetricsRegistry()
        registry.counter("capture.events", router=hostile).inc(5)
        registry.gauge("resource.bytes", component=hostile).set(9)
        parsed = parse_exposition(render_prometheus(registry))
        by_name = {name: labels for name, labels, _v in parsed["samples"]}
        assert by_name["repro_capture_events"] == {"router": hostile}
        assert by_name["repro_resource_bytes"] == {"component": hostile}

    def test_parse_exposition_rejects_malformed_lines(self):
        for bad in (
            'm{router="unterminated} 1',
            'm{router="x"extra="y"} 1',
            'm{router="bad\\q"} 1',
            "m one",
            "# TYPE m sideways",
            "1bad_name 2",
        ):
            with pytest.raises(ExpositionError):
                parse_exposition(bad)

    def test_validate_exposition_flags_empty_and_accepts_real_output(self):
        assert validate_exposition("") == ["no samples in exposition"]
        registry, _ = self._populated()
        assert validate_exposition(render_prometheus(registry)) == []

    def test_missing_sections_detects_dead_and_empty(self):
        registry = MetricsRegistry()
        registry.counter("verify.x")  # created but never incremented
        document = registry_to_dict(registry)
        assert missing_sections(document, ["verify", "repair"]) == [
            "verify",
            "repair",
        ]
        registry.counter("verify.x").inc()
        document = registry_to_dict(registry)
        assert missing_sections(document, ["verify"]) == []

    def test_format_table_alignment(self):
        text = format_table(("a", "bee"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)


class TestPipelineIntegration:
    def test_fig3_pipeline_records_all_stages(self):
        """The Fig. 3 demo with metrics on records every pipeline stage."""
        from repro.core.pipeline import IntegratedControlPlane, PipelineMode
        from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
        from repro.scenarios.paper_net import P, paper_policy
        from repro.verify.policy import LoopFreedomPolicy

        with obs.capturing() as (registry, tracer):
            scenario = Fig2Scenario(seed=0)
            net = scenario.run_baseline()
            pipeline = IntegratedControlPlane(
                net,
                [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
                mode=PipelineMode.REPAIR,
            ).arm()
            net.apply_config_change(bad_lp_change())
            net.run(120)
            document = registry_to_dict(registry, tracer)

        assert not scenario.violates_policy()
        sections = document["sections"]
        verify = sections["verify"]["counters"]
        inference = sections["inference"]["counters"]
        assert verify["verify.fib_writes_verified"] > 0
        assert inference["inference.hbg_edges_inferred"] > 0
        assert verify["verify.fib_writes_blocked"] > 0
        assert sections["repair"]["counters"][
            "repair.root_causes_reverted_total"
        ] > 0
        assert sections["capture"]["counters"]["capture.events_total"] > 0
        latency = sections["verify"]["histograms"][
            "verify.fib_write_latency_seconds"
        ]
        assert latency["count"] > 0 and latency["p95"] > 0
        assert missing_sections(
            document,
            ["capture", "inference", "snapshot", "verify", "repair", "sim"],
        ) == []

    def test_disabled_metrics_record_nothing(self):
        """The default (null) registry stays empty through a full run."""
        from repro.scenarios.fig2 import Fig2Scenario

        assert not obs.enabled()
        Fig2Scenario(seed=0).run_fig2a()
        assert len(obs.get_registry()) == 0

    def test_detect_and_repair_emits_spans(self):
        from repro.core.pipeline import IntegratedControlPlane, PipelineMode
        from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
        from repro.scenarios.paper_net import paper_policy

        with obs.capturing() as (_registry, tracer):
            scenario = Fig2Scenario(seed=0)
            net = scenario.run_baseline()
            pipeline = IntegratedControlPlane(
                net, [paper_policy()], mode=PipelineMode.MONITOR
            )
            net.apply_config_change(bad_lp_change())
            net.run(90)
            pipeline.detect_and_repair()
            names = {record.name for record in tracer.records}
        assert "pipeline.detect_and_repair" in names
        assert "snapshot.wait_until_consistent" in names


class TestPrometheusHistogramBuckets:
    def _exact_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("verify.latency_seconds")
        for _ in range(4):
            histogram.observe(0.003)
        for _ in range(6):
            histogram.observe(0.07)
        return registry, histogram

    def test_bucket_counts_exact_below_reservoir(self):
        from repro.obs.export import DEFAULT_BUCKETS

        _registry, histogram = self._exact_histogram()
        counts = dict(
            zip(DEFAULT_BUCKETS, histogram.bucket_counts(DEFAULT_BUCKETS))
        )
        assert counts[0.001] == 0
        assert counts[0.005] == 4
        assert counts[0.05] == 4
        assert counts[0.1] == 10
        assert counts[10000.0] == 10

    def test_bucket_counts_monotone_under_reservoir_scaling(self):
        from repro.obs.export import DEFAULT_BUCKETS
        from repro.obs.metrics import Histogram

        histogram = Histogram("verify.latency_seconds")
        for i in range(20000):
            histogram.observe(0.003 if i % 2 else 0.07)
        counts = histogram.bucket_counts(DEFAULT_BUCKETS)
        assert counts == sorted(counts)  # cumulative → nondecreasing
        assert counts[-1] == histogram.count
        by_bound = dict(zip(DEFAULT_BUCKETS, counts))
        # Reservoir CDF scaled to the true count: ~half under 5ms.
        assert by_bound[0.005] == pytest.approx(10000, rel=0.05)

    def test_render_emits_cumulative_le_series_and_type(self):
        registry, histogram = self._exact_histogram()
        text = render_prometheus(registry)
        assert "# TYPE repro_verify_latency_seconds histogram" in text
        assert (
            'repro_verify_latency_seconds_bucket{le="0.005"} 4' in text
        )
        assert (
            'repro_verify_latency_seconds_bucket{le="+Inf"} 10' in text
        )
        assert "repro_verify_latency_seconds_count 10" in text
        # Quantile gauges survive alongside the buckets.
        assert 'repro_verify_latency_seconds{quantile="0.5"}' in text

    def test_bucket_series_round_trip_and_validate(self):
        registry, histogram = self._exact_histogram()
        text = render_prometheus(registry)
        assert validate_exposition(text) == []
        parsed = parse_exposition(text)
        assert parsed["types"]["repro_verify_latency_seconds"] == (
            "histogram"
        )
        buckets = [
            (labels["le"], value)
            for name, labels, value in parsed["samples"]
            if name == "repro_verify_latency_seconds_bucket"
        ]
        values = [v for _le, v in buckets]
        assert values == sorted(values)
        assert buckets[-1] == ("+Inf", 10.0)
        count = next(
            value
            for name, _labels, value in parsed["samples"]
            if name == "repro_verify_latency_seconds_count"
        )
        assert buckets[-1][1] == count

    def test_labelled_histogram_buckets_keep_their_labels(self):
        registry = MetricsRegistry()
        registry.histogram("verify.latency_seconds", router="R1").observe(
            0.003
        )
        parsed = parse_exposition(render_prometheus(registry))
        labelled = [
            labels
            for name, labels, _v in parsed["samples"]
            if name == "repro_verify_latency_seconds_bucket"
        ]
        assert labelled and all(
            entry["router"] == "R1" and "le" in entry for entry in labelled
        )
