"""Tests for the PREDICT pipeline mode (§6 early repair)."""

import pytest

from repro.capture.io_events import IOKind
from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.verify.policy import LoopFreedomPolicy


def _armed(fast_delays, seed=0):
    scenario = Fig2Scenario(seed=seed, delays=fast_delays)
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net,
        [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
        mode=PipelineMode.PREDICT,
    ).arm()
    return scenario, net, pipeline


class TestFirstOffense:
    def test_behaves_like_repair_without_history(self, fast_delays):
        """With no history, PREDICT falls back to the guard: block,
        trace, revert — and learn."""
        scenario, net, pipeline = _armed(fast_delays)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert pipeline.updates_blocked >= 1
        assert not scenario.violates_policy()
        assert pipeline.predictor.history_size() >= 1
        lp = net.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
        assert lp.set_local_pref == 30


class TestRepeatOffense:
    def test_second_offense_reverted_before_any_damage(self, fast_delays):
        scenario, net, pipeline = _armed(fast_delays)
        # First offense: caught by the guard; predictor learns.
        net.apply_config_change(bad_lp_change())
        net.run(30)
        guard_incidents = len(
            [i for i in pipeline.incidents if not i.predicted]
        )
        assert guard_incidents >= 1
        blocked_before = pipeline.updates_blocked
        # Second offense: same change signature.
        t_change = net.sim.now
        net.apply_config_change(bad_lp_change())
        net.run(30)
        predicted = [i for i in pipeline.incidents if i.predicted]
        assert predicted, "the repeat offense must be caught by prediction"
        # The revert fired immediately, long before the ~reconfig lag.
        assert predicted[0].at - t_change < 0.01
        # No FIB update was even attempted this time.
        assert pipeline.updates_blocked == blocked_before
        lp = net.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
        assert lp.set_local_pref == 30
        assert not scenario.violates_policy()

    def test_prediction_faster_than_guard(self, fast_delays):
        """Early repair beats the guard by at least the
        soft-reconfiguration delay."""
        scenario, net, pipeline = _armed(fast_delays)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        guard_incident = next(
            i for i in pipeline.incidents if not i.predicted
        )
        guard_config = net.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )[0]
        guard_latency = guard_incident.at - guard_config.timestamp
        t_change = net.sim.now
        net.apply_config_change(bad_lp_change())
        net.run(30)
        predicted = next(i for i in pipeline.incidents if i.predicted)
        predict_latency = predicted.at - t_change
        assert predict_latency < guard_latency

    def test_own_reverts_not_predicted_against(self, fast_delays):
        """The inverse change (LP back to 30) shares the signature of
        the bad change; the predictor must not revert the revert."""
        scenario, net, pipeline = _armed(fast_delays)
        for _ in range(3):
            net.apply_config_change(bad_lp_change())
            net.run(30)
        lp = net.configs.get("R2").route_maps["r2-uplink-lp"].clauses[0]
        assert lp.set_local_pref == 30
        assert not scenario.violates_policy()

    def test_harmless_change_with_same_key_not_blocked_by_default(
        self, fast_delays
    ):
        """The signature generalises the value away, so after learning
        that touching this route-map broke things once, a *harmless*
        touch is also flagged — the §4.2-style false-positive risk of
        learned models.  Verify the revert at least keeps the network
        compliant (fail-safe, not fail-broken)."""
        from repro.net.config import ConfigChange, local_pref_map

        scenario, net, pipeline = _armed(fast_delays)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        harmless = ConfigChange(
            "R2",
            "set_route_map",
            key="r2-uplink-lp",
            value=local_pref_map("r2-uplink-lp", 40),
            description="raise LP slightly",
        )
        net.apply_config_change(harmless)
        net.run(30)
        # Whether or not it got reverted, the policy must hold.
        assert not scenario.violates_policy()

    def test_summary_mentions_prediction(self, fast_delays):
        scenario, net, pipeline = _armed(fast_delays)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert "predicted" in pipeline.summary()
