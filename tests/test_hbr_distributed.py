"""Tests for distributed HBG construction and path expansion."""

import pytest

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.distributed import (
    DistributedHbg,
    DistributionUnsupported,
    RouterSubgraph,
    boundary_kinds,
    supports_distribution,
)
from repro.hbr.inference import InferenceConfig, InferenceEngine, PatternMiner
from repro.net.addr import Prefix, parse_ip
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import P

PFX = Prefix(parse_ip("203.0.113.0"), 24)


def _event(router, kind, ts, peer=None, prefix=PFX, action=RouteAction.ANNOUNCE):
    return IOEvent.create(
        kind=kind,
        timestamp=ts,
        router=router,
        peer=peer,
        protocol="bgp",
        prefix=prefix,
        action=action,
    )


@pytest.fixture
def fig2_net(fast_delays):
    scenario = Fig2Scenario(seed=0, delays=fast_delays)
    net = scenario.run_fig2a()
    return net


class TestRouterSubgraph:
    def test_ingest_rejects_foreign_events(self, fig2_net):
        subgraph = RouterSubgraph("R1")
        foreign = fig2_net.collector.events_of("R2")[0]
        with pytest.raises(ValueError):
            subgraph.ingest(foreign)

    def test_build_links_local_chain(self, fig2_net):
        subgraph = RouterSubgraph("R1")
        for event in fig2_net.collector.events_of("R1"):
            subgraph.ingest(event)
        graph = subgraph.build()
        assert graph.edge_count() > 0
        # All edges are intra-R1.
        for edge in graph.edges():
            assert graph.event(edge.cause).router == "R1"
            assert graph.event(edge.effect).router == "R1"

    def test_find_matching_send(self, fig2_net):
        r2 = RouterSubgraph("R2")
        for event in fig2_net.collector.events_of("R2"):
            r2.ingest(event)
        r2.build()
        recv = [
            e
            for e in fig2_net.collector.events_of("R1")
            if e.kind is IOKind.ROUTE_RECEIVE and e.peer == "R2"
        ][0]
        send = r2.find_matching_send(recv)
        assert send is not None
        assert send.kind is IOKind.ROUTE_SEND
        assert send.peer == "R1"
        assert send.prefix == recv.prefix
        assert send.timestamp <= recv.timestamp


class TestDistributedHbg:
    def _build(self, net):
        dist = DistributedHbg()
        dist.ingest_all(net.collector.all_events())
        dist.build_all()
        return dist

    def test_routers_discovered(self, fig2_net):
        dist = self._build(fig2_net)
        assert dist.routers() == ["R1", "R2", "R3"]

    def test_distributed_roots_match_central(self, fig2_net):
        """§5: distribution must not change the analysis outcome."""
        dist = self._build(fig2_net)
        # Find R1's RIB update that flipped it to its own uplink.
        config = fig2_net.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )[0]
        rib_r1 = [
            e
            for e in fig2_net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > config.timestamp
        ]
        target = max(rib_r1, key=lambda e: e.timestamp)
        distributed_roots = dist.trace_root_causes(target.event_id)
        central_graph = InferenceEngine().build_graph(
            fig2_net.collector.all_events()
        )
        central_roots = ProvenanceTracer(central_graph).trace(
            target.event_id
        ).root_causes
        central_ids = {e.event_id for e in central_roots}
        distributed_ids = {e.event_id for e in distributed_roots}
        assert config.event_id in distributed_ids
        assert central_ids <= distributed_ids | central_ids  # sanity
        assert config.event_id in central_ids

    def test_message_counter_increments(self, fig2_net):
        dist = self._build(fig2_net)
        config = fig2_net.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )[0]
        rib_r1 = [
            e
            for e in fig2_net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > config.timestamp
        ]
        target = max(rib_r1, key=lambda e: e.timestamp)
        before = dist.messages_exchanged
        dist.trace_root_causes(target.event_id)
        assert dist.messages_exchanged > before

    def test_merged_graph_matches_central(self, fig2_net):
        dist = self._build(fig2_net)
        merged = dist.merged_graph()
        central = InferenceEngine().build_graph(fig2_net.collector.all_events())
        assert merged.edge_set() == central.edge_set()

    def test_unknown_event_raises(self, fig2_net):
        dist = self._build(fig2_net)
        with pytest.raises(KeyError):
            dist.trace_root_causes(10**9)

    def test_merged_graph_byte_identical_to_central(self, fig2_net):
        dist = self._build(fig2_net)
        central = InferenceEngine().build_graph(
            fig2_net.collector.all_events()
        )
        assert dist.merged_graph().to_records() == central.to_records()

    def test_forked_build_byte_identical(self, fig2_net):
        events = fig2_net.collector.all_events()
        serial = DistributedHbg()
        serial.ingest_all(events)
        serial.build_all()
        forked = DistributedHbg()
        forked.ingest_all(events)
        forked.build_all(workers=2)
        assert forked.merged_graph().to_records() == (
            serial.merged_graph().to_records()
        )
        assert forked.last_build.workers == 2

    def test_merged_graph_never_rebuilds_centrally(self, fig2_net, monkeypatch):
        """Regression for the prototype's dead-merge bug: the old
        merged_graph() built (and discarded) a merge, then quietly
        called the global build_graph over the full event list."""
        dist = DistributedHbg()
        dist.ingest_all(fig2_net.collector.all_events())

        def forbidden(self, events, parallel=None):
            raise AssertionError(
                "distributed path called the central build_graph"
            )

        monkeypatch.setattr(InferenceEngine, "build_graph", forbidden)
        dist.build_all()
        merged = dist.merged_graph()
        assert merged.edge_count() > 0

    def test_owner_map_lookup(self, fig2_net):
        dist = self._build(fig2_net)
        event = fig2_net.collector.events_of("R2")[0]
        before = dist.owner_lookups
        router, found = dist._find_event(event.event_id)
        assert router == "R2"
        assert found.event_id == event.event_id
        assert dist.owner_lookups == before + 1

    def test_build_stats_meter_boundary_traffic(self, fig2_net):
        dist = self._build(fig2_net)
        stats = dist.last_build
        assert stats.routers == 3
        assert stats.boundary_messages > 0
        assert stats.boundary_events > 0
        # The point of summaries: strictly cheaper than shipping every
        # event to a central collector.
        assert 0 < stats.boundary_bytes < stats.central_bytes

    def test_ingest_after_build_invalidates(self, fig2_net):
        dist = self._build(fig2_net)
        edges_before = dist.merged_graph().edge_count()
        extra_recv = _event(
            "R1", IOKind.ROUTE_RECEIVE, 10_000.0, peer="R2"
        )
        extra_send = _event(
            "R2", IOKind.ROUTE_SEND, 9_999.999, peer="R1"
        )
        dist.ingest(extra_send)
        dist.ingest(extra_recv)
        merged = dist.merged_graph()  # implicit rebuild
        assert extra_recv.event_id in merged
        assert (extra_send.event_id, extra_recv.event_id) in {
            (e.cause, e.effect) for e in merged.edges()
        }
        assert merged.edge_count() > edges_before


class TestDistributionSupport:
    def test_default_engine_supported(self):
        assert supports_distribution(InferenceEngine())

    @pytest.mark.parametrize(
        "make_engine",
        [
            lambda: InferenceEngine(
                config=InferenceConfig(naive_prefix_timestamp=True)
            ),
            lambda: InferenceEngine(
                config=InferenceConfig(use_patterns=True),
                miner=PatternMiner(),
            ),
            lambda: InferenceEngine(
                config=InferenceConfig(legacy_scan=True)
            ),
        ],
    )
    def test_global_scan_configs_refused(self, make_engine):
        engine = make_engine()
        assert not supports_distribution(engine)
        dist = DistributedHbg(engine)
        dist.ingest(_event("R1", IOKind.RIB_UPDATE, 1.0))
        with pytest.raises(DistributionUnsupported):
            dist.build_all()

    def test_default_boundary_kinds_are_sends_only(self):
        # No default rule has a receive antecedent across routers, so
        # summaries carry sends only — half the boundary traffic.
        assert boundary_kinds(InferenceEngine()) == (IOKind.ROUTE_SEND,)


class TestBoundaryExchange:
    def _pair(self):
        dist = DistributedHbg()
        dist.ingest(_event("R1", IOKind.ROUTE_SEND, 1.0, peer="R2"))
        dist.ingest(_event("R1", IOKind.ROUTE_SEND, 2.0, peer="R2"))
        dist.ingest(_event("R1", IOKind.ROUTE_RECEIVE, 1.5, peer="R2"))
        dist.ingest(_event("R2", IOKind.ROUTE_RECEIVE, 1.01, peer="R1"))
        return dist

    def test_summary_carries_sorted_send_keys(self):
        dist = self._pair()
        summary = dist.subgraphs["R1"].summary_for(
            "R2", boundary_kinds(dist.engine)
        )
        assert summary.origin == "R1"
        assert summary.neighbor == "R2"
        # Sends only (the receive stays home), in (ts, id) order.
        assert [e.timestamp for e in summary.events] == [1.0, 2.0]
        assert all(e.kind is IOKind.ROUTE_SEND for e in summary.events)
        assert summary.wire_bytes() > 0

    def test_exchange_stats(self):
        dist = self._pair()
        stats = dist.exchange_summaries()
        # R1→R2 carries two sends; R2 has no sends, so nothing flows
        # back (empty summaries stay home).
        assert stats.messages == 1
        assert stats.events == 2
        assert stats.bytes > 0

    def test_exchange_is_idempotent(self):
        dist = self._pair()
        dist.exchange_summaries()
        dist.exchange_summaries()
        dist.build_all()
        merged = dist.merged_graph()
        central = InferenceEngine().build_graph(
            [e for sg in dist.subgraphs.values() for e in sg.events()]
        )
        assert merged.to_records() == central.to_records()


class TestClockSkewEdges:
    """Boundary matching at the edges of clock_skew_tolerance."""

    SKEW = InferenceConfig().clock_skew_tolerance  # 0.050

    def _dist(self, send_ts, recv_ts):
        dist = DistributedHbg()
        send = _event("R2", IOKind.ROUTE_SEND, send_ts, peer="R1")
        recv = _event("R1", IOKind.ROUTE_RECEIVE, recv_ts, peer="R2")
        dist.ingest(send)
        dist.ingest(recv)
        return dist, send, recv

    def _edge_pairs(self, dist):
        dist.build_all()
        return {(e.cause, e.effect) for e in dist.merged_graph().edges()}

    def test_send_just_inside_tolerance_links(self):
        # Skewed clocks: the send is stamped *after* the receive but
        # within tolerance — still a valid cross-router edge.
        dist, send, recv = self._dist(10.0 + self.SKEW, 10.0)
        assert (send.event_id, recv.event_id) in self._edge_pairs(dist)

    def test_send_just_outside_tolerance_does_not_link(self):
        dist, send, recv = self._dist(10.0 + self.SKEW + 1e-6, 10.0)
        assert (send.event_id, recv.event_id) not in self._edge_pairs(dist)

    def test_skew_edges_match_central_build(self):
        for offset in (-1e-6, 0.0, 1e-6):
            dist, _send, _recv = self._dist(10.0 + self.SKEW + offset, 10.0)
            events = [
                e for sg in dist.subgraphs.values() for e in sg.events()
            ]
            dist.build_all()
            central = InferenceEngine().build_graph(events)
            assert dist.merged_graph().to_records() == central.to_records()

    def test_find_matching_send_respects_tolerance(self):
        dist, send, recv = self._dist(10.0 + self.SKEW, 10.0)
        dist.build_all()
        assert dist.subgraphs["R2"].find_matching_send(recv) is send
        dist2, send2, recv2 = self._dist(10.0 + self.SKEW + 1e-6, 10.0)
        dist2.build_all()
        assert dist2.subgraphs["R2"].find_matching_send(recv2) is None

    def test_find_matching_send_picks_latest_admissible(self):
        dist = DistributedHbg()
        early = _event("R2", IOKind.ROUTE_SEND, 9.0, peer="R1")
        late = _event("R2", IOKind.ROUTE_SEND, 9.9, peer="R1")
        over = _event("R2", IOKind.ROUTE_SEND, 10.1, peer="R1")
        recv = _event("R1", IOKind.ROUTE_RECEIVE, 10.0, peer="R2")
        dist.ingest_all([early, late, over, recv])
        dist.build_all()
        assert dist.subgraphs["R2"].find_matching_send(recv) is late
