"""Tests for distributed HBG construction and path expansion."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.distributed import DistributedHbg, RouterSubgraph
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import P


@pytest.fixture
def fig2_net(fast_delays):
    scenario = Fig2Scenario(seed=0, delays=fast_delays)
    net = scenario.run_fig2a()
    return net


class TestRouterSubgraph:
    def test_ingest_rejects_foreign_events(self, fig2_net):
        subgraph = RouterSubgraph("R1")
        foreign = fig2_net.collector.events_of("R2")[0]
        with pytest.raises(ValueError):
            subgraph.ingest(foreign)

    def test_build_links_local_chain(self, fig2_net):
        subgraph = RouterSubgraph("R1")
        for event in fig2_net.collector.events_of("R1"):
            subgraph.ingest(event)
        graph = subgraph.build()
        assert graph.edge_count() > 0
        # All edges are intra-R1.
        for edge in graph.edges():
            assert graph.event(edge.cause).router == "R1"
            assert graph.event(edge.effect).router == "R1"

    def test_find_matching_send(self, fig2_net):
        r2 = RouterSubgraph("R2")
        for event in fig2_net.collector.events_of("R2"):
            r2.ingest(event)
        r2.build()
        recv = [
            e
            for e in fig2_net.collector.events_of("R1")
            if e.kind is IOKind.ROUTE_RECEIVE and e.peer == "R2"
        ][0]
        send = r2.find_matching_send(recv)
        assert send is not None
        assert send.kind is IOKind.ROUTE_SEND
        assert send.peer == "R1"
        assert send.prefix == recv.prefix
        assert send.timestamp <= recv.timestamp


class TestDistributedHbg:
    def _build(self, net):
        dist = DistributedHbg()
        dist.ingest_all(net.collector.all_events())
        dist.build_all()
        return dist

    def test_routers_discovered(self, fig2_net):
        dist = self._build(fig2_net)
        assert dist.routers() == ["R1", "R2", "R3"]

    def test_distributed_roots_match_central(self, fig2_net):
        """§5: distribution must not change the analysis outcome."""
        dist = self._build(fig2_net)
        # Find R1's RIB update that flipped it to its own uplink.
        config = fig2_net.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )[0]
        rib_r1 = [
            e
            for e in fig2_net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > config.timestamp
        ]
        target = max(rib_r1, key=lambda e: e.timestamp)
        distributed_roots = dist.trace_root_causes(target.event_id)
        central_graph = InferenceEngine().build_graph(
            fig2_net.collector.all_events()
        )
        central_roots = ProvenanceTracer(central_graph).trace(
            target.event_id
        ).root_causes
        central_ids = {e.event_id for e in central_roots}
        distributed_ids = {e.event_id for e in distributed_roots}
        assert config.event_id in distributed_ids
        assert central_ids <= distributed_ids | central_ids  # sanity
        assert config.event_id in central_ids

    def test_message_counter_increments(self, fig2_net):
        dist = self._build(fig2_net)
        config = fig2_net.collector.query(
            router="R2", kind=IOKind.CONFIG_CHANGE
        )[0]
        rib_r1 = [
            e
            for e in fig2_net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > config.timestamp
        ]
        target = max(rib_r1, key=lambda e: e.timestamp)
        before = dist.messages_exchanged
        dist.trace_root_causes(target.event_id)
        assert dist.messages_exchanged > before

    def test_merged_graph_matches_central(self, fig2_net):
        dist = self._build(fig2_net)
        merged = dist.merged_graph()
        central = InferenceEngine().build_graph(fig2_net.collector.all_events())
        assert merged.edge_set() == central.edge_set()

    def test_unknown_event_raises(self, fig2_net):
        dist = self._build(fig2_net)
        with pytest.raises(KeyError):
            dist.trace_root_causes(10**9)
