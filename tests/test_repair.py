"""Tests for root-cause rollback and the blocking baseline."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.blocking import BlockingRepair
from repro.repair.provenance import ProvenanceTracer
from repro.repair.rollback import RepairEngine
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.policy import LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier


def _broken_fig2(fast_delays, seed=0):
    scenario = Fig2Scenario(seed=seed, delays=fast_delays)
    net = scenario.run_fig2a()
    return scenario, net


def _provenance_of_violation(net):
    graph = InferenceEngine().build_graph(net.collector.all_events())
    config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
    fibs = [
        e
        for e in net.collector.query(kind=IOKind.FIB_UPDATE, prefix=P)
        if e.timestamp > config.timestamp
    ]
    tracer = ProvenanceTracer(graph)
    return tracer.trace_many([e.event_id for e in fibs])


class TestRollback:
    def test_fig2_violation_repaired(self, fast_delays):
        scenario, net = _broken_fig2(fast_delays)
        assert scenario.violates_policy()
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        engine = RepairEngine(net, verifier)
        report = engine.repair(_provenance_of_violation(net), settle=30.0)
        assert report.repaired
        assert not scenario.violates_policy()
        # Traffic exits via R2 again.
        path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext2"

    def test_repair_reverts_exact_change(self, fast_delays):
        scenario, net = _broken_fig2(fast_delays)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        report = RepairEngine(net, verifier).repair(
            _provenance_of_violation(net), settle=30.0
        )
        reverted = [a.change_reverted for a in report.actions if a.succeeded]
        assert scenario.change in reverted
        # Config store reflects the revert: LP is back to 30.
        current = net.configs.get("R2").route_maps["r2-uplink-lp"]
        assert current.clauses[0].set_local_pref == 30

    def test_control_and_data_plane_in_sync_after_repair(self, fast_delays):
        """The paper's key advantage over blocking: after root-cause
        revert, the control plane's beliefs match the FIBs."""
        scenario, net = _broken_fig2(fast_delays)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        RepairEngine(net, verifier).repair(
            _provenance_of_violation(net), settle=30.0
        )
        for router in ("R1", "R2", "R3"):
            runtime = net.runtime(router)
            best = runtime.bgp.rib.best(P)
            fib = runtime.fib.get(P)
            assert best is not None and fib is not None
            resolved = runtime.resolve_next_hop(best.next_hop)
            assert resolved is not None
            assert fib.next_hop_router == resolved[0]

    def test_post_repair_survives_uplink_failure(self, fast_delays):
        """After rollback, the Fig. 2b follow-on failure is handled
        correctly (traffic fails over to R1 instead of black-holing)."""
        scenario, net = _broken_fig2(fast_delays)
        # Put a route on R1's uplink too so failover has a target.
        net.announce_prefix("Ext1", P)
        net.run(5)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        RepairEngine(net, verifier).repair(
            _provenance_of_violation(net), settle=30.0
        )
        net.fail_link("R2", "Ext2")
        net.run(10)
        path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext1"

    def test_hardware_cause_reported_unrepairable(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.fig1.run_fig1b()
        net.fail_link("R2", "Ext2")
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        hw = net.collector.query(router="R2", kind=IOKind.HARDWARE_STATUS)[0]
        from repro.capture.io_events import RouteAction

        withdraw = net.collector.query(
            router="R3", kind=IOKind.FIB_UPDATE, action=RouteAction.WITHDRAW
        )[0]
        provenance = ProvenanceTracer(graph).trace(withdraw.event_id)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        report = RepairEngine(net, verifier).repair(provenance, settle=5.0)
        assert not report.repaired
        assert any(
            e.kind is IOKind.HARDWARE_STATUS for e in report.unrepairable
        )

    def test_report_describe(self, fast_delays):
        scenario, net = _broken_fig2(fast_delays)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        report = RepairEngine(net, verifier).repair(
            _provenance_of_violation(net), settle=30.0
        )
        text = report.describe()
        assert "repair report" in text and "ok" in text


class TestBlockingBaseline:
    def test_blocking_freezes_fibs(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        before = {
            r: net.runtime(r).fib.get(P).next_hop_router
            for r in ("R1", "R2", "R3")
        }
        blocker = BlockingRepair(net, prefixes={P})
        blocker.activate()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        after = {
            r: net.runtime(r).fib.get(P).next_hop_router
            for r in ("R1", "R2", "R3")
        }
        assert before == after
        assert blocker.blocked

    def test_blocking_causes_divergence(self, fast_delays):
        """§2: blocking 'creates an inconsistency between the data and
        control planes'."""
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        blocker = BlockingRepair(net, prefixes={P})
        blocker.activate()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        divergence = blocker.divergence()
        assert divergence
        routers = {d[0] for d in divergence}
        assert "R1" in routers  # R1 believes Ext1, FIB says R2

    def test_fig2b_blackhole_reproduced(self, fast_delays):
        """The paper's §2 disaster: frozen FIBs + uplink failure =
        black hole at R2."""
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        blocker = BlockingRepair(net, prefixes={P})
        blocker.activate()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        net.fail_link("R2", "Ext2")
        net.run(10)
        for source in ("R1", "R3"):
            path, outcome = net.trace_path(source, P.first_address())
            assert outcome == "blackhole"
            assert path[-1] == "R2"

    def test_rollback_avoids_fig2b_blackhole(self, fast_delays):
        """Same follow-on failure, but with root-cause rollback instead
        of blocking: traffic is correctly withdrawn, no black hole."""
        scenario, net = _broken_fig2(fast_delays)
        verifier = DataPlaneVerifier(net.topology, [paper_policy()])
        RepairEngine(net, verifier).repair(
            _provenance_of_violation(net), settle=30.0
        )
        net.fail_link("R2", "Ext2")
        net.run(10)
        # The Fig. 2 baseline has P on both uplinks (Fig. 1's story),
        # so after the rollback the withdrawal propagates cleanly and
        # traffic fails over to R1's uplink — the exact scenario that
        # black-holes under blocking (test above) works here.
        for source in ("R1", "R3"):
            path, outcome = net.trace_path(source, P.first_address())
            assert outcome == "delivered"
            assert path[-1] == "Ext1"

    def test_deactivate_unfreezes(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        blocker = BlockingRepair(net, prefixes={P})
        blocker.activate()
        assert blocker.active
        blocker.deactivate()
        assert not blocker.active
        assert net.runtime("R1").fib.install_guard is None

    def test_unrelated_prefixes_unblocked(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        blocker = BlockingRepair(net, prefixes={P})
        blocker.activate()
        other = P.supernet()
        net.announce_prefix("Ext1", other)
        net.run(5)
        assert net.runtime("R3").fib.get(other) is not None
