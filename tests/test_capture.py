"""Tests for the capture layer: events, logger, collector, ground truth."""

import random

import pytest

from repro.capture.collector import Collector
from repro.capture.ground_truth import GroundTruth
from repro.capture.io_events import Direction, IOEvent, IOKind, RouteAction
from repro.capture.logger import BufferingSink, RouterLogger
from repro.net.addr import Prefix

P = Prefix.parse("203.0.113.0/24")


def _event(router="R1", kind=IOKind.FIB_UPDATE, t=1.0, **kwargs):
    defaults = dict(
        protocol="bgp", prefix=P, action=RouteAction.ANNOUNCE, peer=None
    )
    defaults.update(kwargs)
    return IOEvent.create(router, kind, t, **defaults)


class TestIOEvent:
    def test_ids_unique_and_increasing(self):
        a = _event()
        b = _event()
        assert b.event_id > a.event_id

    def test_direction_classification(self):
        assert IOKind.CONFIG_CHANGE.direction is Direction.INPUT
        assert IOKind.HARDWARE_STATUS.direction is Direction.INPUT
        assert IOKind.ROUTE_RECEIVE.direction is Direction.INPUT
        assert IOKind.RIB_UPDATE.direction is Direction.OUTPUT
        assert IOKind.FIB_UPDATE.direction is Direction.OUTPUT
        assert IOKind.ROUTE_SEND.direction is Direction.OUTPUT

    def test_route_action_opposite(self):
        assert RouteAction.ANNOUNCE.opposite() is RouteAction.WITHDRAW
        assert RouteAction.WITHDRAW.opposite() is RouteAction.ANNOUNCE

    def test_attrs_sorted_and_hashable(self):
        event = _event(attrs={"b": 2, "a": 1})
        assert event.attrs == (("a", 1), ("b", 2))
        hash(event)

    def test_attr_lookup(self):
        event = _event(attrs={"local_pref": 30})
        assert event.attr("local_pref") == 30
        assert event.attr("missing", "default") == "default"

    def test_describe_fib_install(self):
        event = _event(attrs={"next_hop_router": "R2"})
        text = event.describe()
        assert "install" in text and "R2" in text and str(P) in text

    def test_describe_config(self):
        event = _event(
            kind=IOKind.CONFIG_CHANGE,
            protocol=None,
            prefix=None,
            action=None,
            attrs={"description": "set lp"},
        )
        assert "config change" in event.describe()

    def test_describe_hardware(self):
        event = _event(
            kind=IOKind.HARDWARE_STATUS,
            protocol=None,
            prefix=None,
            action=None,
            attrs={"link": "eth0", "status": "down"},
        )
        assert "eth0 down" in event.describe()

    def test_record_roundtrip(self):
        event = _event(attrs={"local_pref": 30}, peer="R2")
        restored = IOEvent.from_record(event.to_record())
        assert restored == event

    def test_record_roundtrip_no_prefix(self):
        event = _event(
            kind=IOKind.CONFIG_CHANGE, protocol=None, prefix=None, action=None
        )
        assert IOEvent.from_record(event.to_record()) == event

    def test_is_route_event(self):
        assert _event().is_route_event
        assert not _event(
            kind=IOKind.CONFIG_CHANGE, protocol=None, prefix=None, action=None
        ).is_route_event


class TestRouterLogger:
    def test_clock_skew_applied(self):
        captured = []
        logger = RouterLogger("R1", captured.append, clock_skew=0.5)
        event = logger.log(IOKind.FIB_UPDATE, 1.0, prefix=P)
        assert event.timestamp == pytest.approx(1.5)
        assert captured[0] is event

    def test_drop_rate_requires_rng(self):
        with pytest.raises(ValueError):
            RouterLogger("R1", lambda e: None, drop_rate=0.5)

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError):
            RouterLogger("R1", lambda e: None, drop_rate=1.5, rng=random.Random(0))

    def test_dropped_events_still_returned(self):
        captured = []
        logger = RouterLogger(
            "R1", captured.append, drop_rate=1.0, rng=random.Random(0)
        )
        event = logger.log(IOKind.FIB_UPDATE, 1.0, prefix=P)
        assert event is not None
        assert captured == []
        assert logger.events_dropped == 1

    def test_counting(self):
        logger = RouterLogger("R1", lambda e: None)
        logger.log(IOKind.FIB_UPDATE, 1.0)
        logger.log(IOKind.FIB_UPDATE, 2.0)
        assert logger.events_logged == 2


class TestBufferingSink:
    def test_buffers_until_flush(self):
        delivered = []
        sink = BufferingSink(delivered.append)
        logger = RouterLogger("R1", sink)
        logger.log(IOKind.FIB_UPDATE, 1.0)
        assert delivered == [] and sink.pending() == 1
        assert sink.flush() == 1
        assert len(delivered) == 1 and sink.pending() == 0


class TestCollector:
    def test_ingest_and_get(self):
        collector = Collector()
        event = _event()
        collector.ingest(event)
        assert collector.get(event.event_id) is event
        assert collector.has(event.event_id)
        assert len(collector) == 1

    def test_duplicate_rejected(self):
        collector = Collector()
        event = _event()
        collector.ingest(event)
        with pytest.raises(ValueError):
            collector.ingest(event)

    def test_get_missing(self):
        with pytest.raises(KeyError):
            Collector().get(999)

    def test_query_by_router_and_kind(self):
        collector = Collector()
        collector.ingest(_event(router="R1"))
        collector.ingest(_event(router="R2"))
        collector.ingest(_event(router="R1", kind=IOKind.RIB_UPDATE))
        assert len(collector.query(router="R1")) == 2
        assert len(collector.query(router="R1", kind=IOKind.FIB_UPDATE))== 1

    def test_query_time_window(self):
        collector = Collector()
        collector.ingest(_event(t=1.0))
        collector.ingest(_event(t=2.0))
        collector.ingest(_event(t=3.0))
        assert len(collector.query(since=1.5, until=2.5)) == 1

    def test_query_by_action_and_peer(self):
        collector = Collector()
        collector.ingest(
            _event(kind=IOKind.ROUTE_SEND, peer="R2", action=RouteAction.WITHDRAW)
        )
        collector.ingest(_event(kind=IOKind.ROUTE_SEND, peer="R3"))
        found = collector.query(action=RouteAction.WITHDRAW)
        assert len(found) == 1 and found[0].peer == "R2"

    def test_query_by_direction(self):
        collector = Collector()
        collector.ingest(_event(kind=IOKind.ROUTE_RECEIVE, peer="R2"))
        collector.ingest(_event())
        assert len(collector.query(direction=Direction.INPUT)) == 1

    def test_subscription(self):
        collector = Collector()
        seen = []
        collector.subscribe(seen.append)
        event = _event()
        collector.ingest(event)
        assert seen == [event]

    def test_latest_fib_state(self):
        collector = Collector()
        collector.ingest(_event(t=1.0, attrs={"next_hop_router": "R2"}))
        collector.ingest(_event(t=2.0, attrs={"next_hop_router": "R3"}))
        state = collector.latest_fib_state()
        assert state["R1"][P].attr("next_hop_router") == "R3"

    def test_latest_fib_state_until(self):
        collector = Collector()
        collector.ingest(_event(t=1.0, attrs={"next_hop_router": "R2"}))
        collector.ingest(_event(t=2.0, attrs={"next_hop_router": "R3"}))
        state = collector.latest_fib_state(until=1.5)
        assert state["R1"][P].attr("next_hop_router") == "R2"

    def test_export_import_records(self):
        collector = Collector()
        collector.ingest(_event())
        collector.ingest(_event(kind=IOKind.RIB_UPDATE))
        restored = Collector.from_records(collector.export_records())
        assert len(restored) == 2
        assert restored.all_events() == collector.all_events()

    def test_routers_and_prefixes(self):
        collector = Collector()
        collector.ingest(_event(router="R2"))
        collector.ingest(_event(router="R1"))
        assert collector.routers() == ["R1", "R2"]
        assert collector.prefixes() == [P]


class TestGroundTruth:
    def test_record_and_query(self):
        gt = GroundTruth()
        gt.record(1, 2)
        gt.record(2, 3)
        assert gt.causes_of(3) == {2}
        assert gt.effects_of(1) == {2}

    def test_self_cause_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth().record(1, 1)

    def test_transitive_causes(self):
        gt = GroundTruth()
        gt.record(1, 2)
        gt.record(2, 3)
        gt.record(4, 3)
        assert gt.transitive_causes(3) == {1, 2, 4}

    def test_root_causes(self):
        gt = GroundTruth()
        gt.record(1, 2)
        gt.record(2, 3)
        gt.record(4, 3)
        assert gt.root_causes(3) == {1, 4}

    def test_root_causes_of_leaf(self):
        assert GroundTruth().root_causes(7) == set()

    def test_edge_set_and_len(self):
        gt = GroundTruth()
        gt.record_all([1, 2], 3)
        assert gt.edge_set() == {(1, 3), (2, 3)}
        assert len(gt) == 2
