"""Tests for the BGP speaker (policy application, export rules, soft
reconfiguration, Add-Path)."""

import pytest

from repro.net.addr import Prefix, parse_ip
from repro.net.config import (
    BgpNeighborConfig,
    RouteMap,
    RouteMapClause,
    RouterConfig,
    local_pref_map,
)
from repro.protocols.bgp import ADD_PATH_LIMIT, LOCAL_WEIGHT, BgpProcess
from repro.protocols.bgp_decision import VendorProfile
from repro.protocols.routes import BgpRoute

P = Prefix.parse("203.0.113.0/24")


def _config(add_path=False, import_lp=None):
    config = RouterConfig(router="R1", asn=65000, router_id=1)
    kwargs = {}
    if import_lp is not None:
        config.add_route_map(local_pref_map("uplink-lp", import_lp))
        kwargs["import_map"] = "uplink-lp"
    config.add_bgp_neighbor(
        BgpNeighborConfig(peer="Ext", remote_asn=65001, **kwargs)
    )
    config.add_bgp_neighbor(
        BgpNeighborConfig(
            peer="R2", remote_asn=65000, next_hop_self=True, add_path=add_path
        )
    )
    config.add_bgp_neighbor(BgpNeighborConfig(peer="R3", remote_asn=65000))
    return config


def _process(**kwargs):
    return BgpProcess("R1", _config(**kwargs), VendorProfile.cisco())


def _ext_route(prefix=P, **kwargs):
    defaults = dict(
        prefix=prefix,
        next_hop=parse_ip("10.0.0.2"),
        as_path=(65001,),
        from_peer="Ext",
        ebgp_learned=True,
    )
    defaults.update(kwargs)
    return BgpRoute(**defaults)


class TestSessions:
    def test_sessions_built_from_config(self):
        bgp = _process()
        assert sorted(bgp.sessions) == ["Ext", "R2", "R3"]
        assert bgp.is_ebgp("Ext")
        assert not bgp.is_ebgp("R2")

    def test_is_ebgp_unknown_peer(self):
        with pytest.raises(KeyError):
            _process().is_ebgp("nobody")

    def test_set_session_state(self):
        bgp = _process()
        assert bgp.set_session_state("Ext", up=False)
        assert not bgp.set_session_state("Ext", up=False)  # no change
        assert bgp.up_peers() == ["R2", "R3"]

    def test_refresh_sessions_tracks_config(self):
        bgp = _process()
        bgp.config.bgp_neighbors.pop("R3")
        bgp.config.bgp_neighbors["R4"] = BgpNeighborConfig(
            peer="R4", remote_asn=65000
        )
        added, removed = bgp.refresh_sessions()
        assert added == ["R4"] and removed == ["R3"]


class TestImport:
    def test_receive_stores_in_adj_in(self):
        bgp = _process()
        policed = bgp.receive("Ext", _ext_route())
        assert policed is not None
        assert len(bgp.rib.paths_for(P)) == 1

    def test_import_map_sets_local_pref(self):
        bgp = _process(import_lp=30)
        policed = bgp.receive("Ext", _ext_route(local_pref=100))
        assert policed.local_pref == 30

    def test_denied_route_not_stored(self):
        config = _config()
        config.add_route_map(RouteMap("deny-all", ()))
        config.bgp_neighbors["Ext"] = BgpNeighborConfig(
            peer="Ext", remote_asn=65001, import_map="deny-all"
        )
        bgp = BgpProcess("R1", config, VendorProfile.cisco())
        assert bgp.receive("Ext", _ext_route()) is None
        assert bgp.rib.paths_for(P) == []

    def test_as_loop_rejected(self):
        bgp = _process()
        looped = _ext_route(as_path=(65001, 65000))
        assert bgp.receive("Ext", looped) is None
        assert bgp.rib.paths_for(P) == []

    def test_receive_on_down_session_ignored(self):
        bgp = _process()
        bgp.set_session_state("Ext", up=False)
        assert bgp.receive("Ext", _ext_route()) is None

    def test_withdraw_removes(self):
        bgp = _process()
        bgp.receive("Ext", _ext_route())
        assert bgp.withdraw("Ext", P)
        assert bgp.rib.paths_for(P) == []

    def test_withdraw_unknown_prefix(self):
        assert not _process().withdraw("Ext", P)

    def test_session_down_cleanup(self):
        bgp = _process()
        bgp.receive("Ext", _ext_route())
        affected = bgp.session_down_cleanup("Ext")
        assert affected == [P]
        assert bgp.rib.paths_for(P) == []


class TestSoftReconfiguration:
    def test_policy_change_reapplied_without_resend(self):
        """The §7 mechanism: the raw route is re-policed in place."""
        bgp = _process(import_lp=30)
        bgp.receive("Ext", _ext_route(local_pref=100))
        assert bgp.rib.paths_for(P)[0].local_pref == 30
        # Operator changes the import map to LP 10 (Fig. 2a).
        bgp.config.route_maps["uplink-lp"] = local_pref_map("uplink-lp", 10)
        affected = bgp.soft_reconfigure()
        assert P in affected
        assert bgp.rib.paths_for(P)[0].local_pref == 10

    def test_newly_denied_route_dropped(self):
        bgp = _process(import_lp=30)
        bgp.receive("Ext", _ext_route())
        bgp.config.route_maps["uplink-lp"] = RouteMap("uplink-lp", ())
        bgp.soft_reconfigure()
        assert bgp.rib.paths_for(P) == []

    def test_soft_reconfigure_single_peer(self):
        bgp = _process(import_lp=30)
        bgp.receive("Ext", _ext_route())
        affected = bgp.soft_reconfigure(peer="Ext")
        assert P in affected

    def test_soft_reconfigure_skips_down_sessions(self):
        bgp = _process(import_lp=30)
        bgp.receive("Ext", _ext_route())
        bgp.set_session_state("Ext", up=False)
        assert bgp.soft_reconfigure() == set()


class TestDecision:
    def test_local_route_has_cisco_weight(self):
        local = _process().local_route(P)
        assert local.weight == LOCAL_WEIGHT
        assert local.locally_originated

    def test_originated_prefix_in_candidates(self):
        bgp = _process()
        bgp.config.originated_prefixes.append(P)
        candidates = bgp.candidates(P)
        assert any(c.locally_originated for c in candidates)

    def test_igp_metric_resolution(self):
        bgp = _process()
        bgp.receive("Ext", _ext_route())
        nh = parse_ip("10.0.0.2")
        candidates = bgp.candidates(P, igp_metric_of={nh: 77})
        assert candidates[0].igp_metric == 77

    def test_decide_picks_best(self):
        bgp = _process(import_lp=30)
        bgp.receive("Ext", _ext_route())
        ibgp = _ext_route(
            from_peer="R2", ebgp_learned=False, as_path=(65002,), local_pref=10
        )
        bgp.receive("R2", ibgp)
        best = bgp.decide(P)
        assert best.from_peer == "Ext"


class TestExport:
    def test_never_advertise_back_to_source(self):
        bgp = _process()
        route = bgp.receive("Ext", _ext_route())
        assert bgp.export_route("Ext", route, own_address_toward_peer=1) is None

    def test_ibgp_learned_not_sent_to_ibgp(self):
        bgp = _process()
        ibgp_route = _ext_route(from_peer="R2", ebgp_learned=False)
        bgp.receive("R2", ibgp_route)
        stored = bgp.rib.paths_for(P)[0]
        assert bgp.export_route("R3", stored, own_address_toward_peer=1) is None

    def test_ibgp_learned_sent_to_ebgp(self):
        bgp = _process()
        ibgp_route = _ext_route(from_peer="R2", ebgp_learned=False, as_path=(65002,))
        bgp.receive("R2", ibgp_route)
        stored = bgp.rib.paths_for(P)[0]
        exported = bgp.export_route("Ext", stored, own_address_toward_peer=5)
        assert exported is not None
        assert exported.as_path[0] == 65000  # own ASN prepended
        assert exported.next_hop == 5

    def test_ebgp_export_resets_local_pref(self):
        bgp = _process(import_lp=30)
        route = bgp.receive("Ext", _ext_route())
        # Re-export of an eBGP-learned route to another eBGP peer would
        # go out with default LP (not transmitted); simulate with a
        # second external session.
        bgp.config.bgp_neighbors["Ext2"] = BgpNeighborConfig(
            peer="Ext2", remote_asn=65002
        )
        bgp.refresh_sessions()
        exported = bgp.export_route("Ext2", route, own_address_toward_peer=5)
        assert exported.local_pref == 100

    def test_next_hop_self_on_ibgp(self):
        bgp = _process()
        route = bgp.receive("Ext", _ext_route())
        exported = bgp.export_route("R2", route, own_address_toward_peer=42)
        assert exported.next_hop == 42  # R2 session has next_hop_self

    def test_next_hop_preserved_without_nhs(self):
        bgp = _process()
        route = bgp.receive("Ext", _ext_route())
        exported = bgp.export_route("R3", route, own_address_toward_peer=42)
        assert exported.next_hop == route.next_hop

    def test_export_map_deny_suppresses(self):
        config = _config()
        config.add_route_map(RouteMap("deny-all", ()))
        config.bgp_neighbors["R3"] = BgpNeighborConfig(
            peer="R3", remote_asn=65000, export_map="deny-all"
        )
        bgp = BgpProcess("R1", config, VendorProfile.cisco())
        route = bgp.receive("Ext", _ext_route())
        assert bgp.export_route("R3", route, own_address_toward_peer=1) is None

    def test_export_to_down_session(self):
        bgp = _process()
        route = bgp.receive("Ext", _ext_route())
        bgp.set_session_state("R3", up=False)
        assert bgp.export_route("R3", route, own_address_toward_peer=1) is None

    def test_prepend_clause_applies_on_export(self):
        config = _config()
        config.add_route_map(
            RouteMap("prepend", (RouteMapClause(prepend_asns=(65000, 65000)),))
        )
        config.bgp_neighbors["Ext"] = BgpNeighborConfig(
            peer="Ext", remote_asn=65001, export_map="prepend"
        )
        bgp = BgpProcess("R1", config, VendorProfile.cisco())
        route = bgp.local_route(P)
        exported = bgp.export_route("Ext", route, own_address_toward_peer=1)
        assert exported.as_path[:3] == (65000, 65000, 65000)


class TestAddPath:
    def test_add_path_advertises_top_k(self):
        bgp = _process(add_path=True)
        for index in range(6):
            route = _ext_route(
                from_peer="R3",
                ebgp_learned=False,
                next_hop=parse_ip("10.0.0.2") + index,
                peer_router_id=index + 1,
                path_id=index,
            )
            bgp.rib.update_in("R3", route)
        bgp.config.originated_prefixes.append(P)
        paths = bgp.paths_to_advertise("R2", P)
        assert 1 <= len(paths) <= ADD_PATH_LIMIT

    def test_single_path_without_add_path(self):
        bgp = _process()
        bgp.receive("Ext", _ext_route())
        assert len(bgp.paths_to_advertise("R3", P)) == 1

    def test_no_paths_for_unknown_prefix(self):
        assert _process().paths_to_advertise("R3", P) == []
