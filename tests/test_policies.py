"""Tests for the verifier's policy library on handcrafted snapshots."""

import pytest

from repro.net.addr import Prefix
from repro.net.topology import paper_topology
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.policy import (
    BlackholeFreedomPolicy,
    LoopFreedomPolicy,
    PreferredExitPolicy,
    ReachabilityPolicy,
    Violation,
    WaypointPolicy,
)

P = Prefix.parse("203.0.113.0/24")


def _snapshot(entries):
    """entries: list of (router, next_hop_router-or-None, discard)."""
    snapshot = DataPlaneSnapshot()
    for router, nh, discard in entries:
        snapshot.install(
            SnapshotEntry(router, P, nh, "eth0", "ibgp", discard, 0, 1.0)
        )
    return snapshot


@pytest.fixture
def topo():
    return paper_topology()


def _good_snapshot():
    """Everyone exits via R2 -> Ext2 (the compliant Fig. 1b state)."""
    return _snapshot(
        [("R1", "R2", False), ("R2", "Ext2", False), ("R3", "R2", False)]
    )


class TestLoopFreedom:
    def test_clean(self, topo):
        assert LoopFreedomPolicy(prefixes=[P]).check(_good_snapshot(), topo) == []

    def test_detects_loop(self, topo):
        snapshot = _snapshot(
            [("R1", "R2", False), ("R2", "R1", False), ("R3", "R2", False)]
        )
        violations = LoopFreedomPolicy(prefixes=[P]).check(snapshot, topo)
        assert violations
        assert all(v.policy == "loop-freedom" for v in violations)
        assert any("R1" in v.path and "R2" in v.path for v in violations)

    def test_default_probes_snapshot_prefixes(self, topo):
        snapshot = _snapshot([("R1", "R2", False), ("R2", "R1", False)])
        assert LoopFreedomPolicy().check(snapshot, topo)


class TestBlackholeFreedom:
    def test_clean(self, topo):
        assert BlackholeFreedomPolicy(prefixes=[P]).check(
            _good_snapshot(), topo
        ) == []

    def test_detects_forwarding_to_routeless_neighbor(self, topo):
        snapshot = _snapshot([("R1", "R3", False), ("R3", None, False)])
        # R3 has a local-delivery entry: fine.  Remove it to blackhole:
        snapshot2 = _snapshot([("R1", "R3", False)])
        snapshot2.install(
            SnapshotEntry(
                "R3", Prefix.parse("10.0.0.0/8"), None, None, "connected",
                False, 0, 1.0,
            )
        )
        violations = BlackholeFreedomPolicy(prefixes=[P]).check(snapshot2, topo)
        assert violations and violations[0].path == ("R1", "R3")

    def test_sourceless_router_not_flagged(self, topo):
        # R3 has no entry at all: not a violation by itself.
        snapshot = _snapshot([("R3", None, False)])
        snapshot.remove("R3", P)
        assert BlackholeFreedomPolicy(prefixes=[P]).check(snapshot, topo) == []


class TestReachability:
    def test_satisfied(self, topo):
        policy = ReachabilityPolicy(P, sources=["R1", "R3"])
        assert policy.check(_good_snapshot(), topo) == []

    def test_violated_by_discard(self, topo):
        snapshot = _snapshot([("R1", None, True)])
        violations = ReachabilityPolicy(P, sources=["R1"]).check(snapshot, topo)
        assert violations and "discard" in violations[0].detail

    def test_violated_by_missing_route(self, topo):
        snapshot = _snapshot([("R3", "R2", False)])
        violations = ReachabilityPolicy(P, sources=["R1"]).check(snapshot, topo)
        assert len(violations) == 1
        assert violations[0].router == "R1"


class TestWaypoint:
    def test_satisfied(self, topo):
        policy = WaypointPolicy(P, waypoint="R2")
        assert policy.check(_good_snapshot(), topo) == []

    def test_bypass_detected(self, topo):
        snapshot = _snapshot(
            [("R1", "Ext1", False), ("R2", "Ext2", False), ("R3", "R1", False)]
        )
        violations = WaypointPolicy(P, waypoint="R2").check(snapshot, topo)
        assert {v.router for v in violations} == {"R1", "R3"}

    def test_waypoint_itself_exempt(self, topo):
        snapshot = _snapshot([("R2", "Ext2", False)])
        assert WaypointPolicy(P, waypoint="R2").check(snapshot, topo) == []

    def test_undelivered_paths_ignored(self, topo):
        snapshot = _snapshot([("R1", None, True)])
        assert WaypointPolicy(P, waypoint="R2").check(snapshot, topo) == []


class TestPreferredExit:
    def _policy(self):
        return PreferredExitPolicy(
            prefix=P,
            preferred_exit="R2",
            fallback_exit="R1",
            uplink_of={"R2": "Ext2", "R1": "Ext1"},
        )

    def test_compliant_via_preferred(self, topo):
        assert self._policy().check(_good_snapshot(), topo) == []

    def test_violation_when_preferred_up_but_bypassed(self, topo):
        snapshot = _snapshot(
            [("R1", "Ext1", False), ("R2", "R1", False), ("R3", "R1", False)]
        )
        violations = self._policy().check(snapshot, topo)
        assert violations
        assert all(v.policy == "preferred-exit" for v in violations)

    def test_fallback_allowed_when_preferred_uplink_down(self, topo):
        topo.link_between("R2", "Ext2").up = False
        snapshot = _snapshot(
            [("R1", "Ext1", False), ("R2", "R1", False), ("R3", "R1", False)]
        )
        assert self._policy().check(snapshot, topo) == []

    def test_nothing_enforced_when_both_uplinks_down(self, topo):
        topo.link_between("R2", "Ext2").up = False
        topo.link_between("R1", "Ext1").up = False
        snapshot = _snapshot([("R1", "R2", False)])
        assert self._policy().check(snapshot, topo) == []

    def test_required_exit_logic(self, topo):
        policy = self._policy()
        assert policy.required_exit(topo) == "R2"
        topo.link_between("R2", "Ext2").up = False
        assert policy.required_exit(topo) == "R1"
        topo.link_between("R1", "Ext1").up = False
        assert policy.required_exit(topo) is None


class TestViolation:
    def test_key_stable(self):
        a = Violation(policy="x", detail="d", prefix=P, router="R1", path=("R1",))
        b = Violation(policy="x", detail="other", prefix=P, router="R1", path=("R1",))
        assert a.key() == b.key()

    def test_str_contains_parts(self):
        text = str(Violation(policy="x", detail="boom", prefix=P, router="R1"))
        assert "x" in text and "boom" in text and "R1" in text
