"""Tests for the paper's scenario library (Figs. 1, 2, 5)."""

import pytest

from repro.capture.io_events import IOKind, RouteAction
from repro.net.simulator import DelayModel
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig2 import BAD_LOCAL_PREF, Fig2Scenario, bad_lp_change
from repro.scenarios.fig5 import FIG5_LOCAL_PREF, Fig5Scenario, fig5_change
from repro.scenarios.paper_net import (
    P,
    R1_UPLINK_LP,
    R2_UPLINK_LP,
    build_paper_network,
    paper_policy,
)


class TestPaperNetwork:
    def test_local_prefs_match_paper(self):
        assert R1_UPLINK_LP == 20 and R2_UPLINK_LP == 30

    def test_ibgp_full_mesh(self):
        net = build_paper_network()
        for router in ("R1", "R2", "R3"):
            peers = set(net.configs.get(router).bgp_neighbors)
            internal = {"R1", "R2", "R3"} - {router}
            assert internal <= peers

    def test_uplink_sessions(self):
        net = build_paper_network()
        assert "Ext1" in net.configs.get("R1").bgp_neighbors
        assert "Ext2" in net.configs.get("R2").bgp_neighbors
        assert "Ext1" not in net.configs.get("R3").bgp_neighbors

    def test_policy_object(self):
        policy = paper_policy()
        assert policy.preferred_exit == "R2"
        assert policy.fallback_exit == "R1"


class TestFig1:
    def test_fig1a_exit_via_r1(self, fig1):
        fig1.run_fig1a()
        for source in ("R1", "R2", "R3"):
            assert fig1.exit_router_for(source) == "R1"

    def test_fig1b_exit_switches_to_r2(self, fig1):
        fig1.run_fig1b()
        for source in ("R1", "R2", "R3"):
            assert fig1.exit_router_for(source) == "R2"

    def test_fig1b_timestamps_recorded(self, fig1):
        fig1.run_fig1b()
        assert 0 < fig1.t_r2_route < fig1.t_converged

    def test_fig1b_r1_rib_holds_both_paths(self, fig1):
        """Fig. 1b shows R1's RIB with both Pref=20 and Pref=30 paths."""
        net = fig1.network
        fig1.run_fig1b()
        paths = net.runtime("R1").bgp.rib.paths_for(P)
        prefs = {p.local_pref for p in paths}
        assert {20, 30} <= prefs

    def test_exit_router_none_when_no_route(self, fig1):
        fig1.network.start()
        fig1.network.run(1)
        assert fig1.exit_router_for("R3") is None


class TestFig2:
    def test_fig2a_policy_violated(self, fig2):
        fig2.run_fig2a()
        assert fig2.violates_policy()
        for source in ("R1", "R3"):
            assert fig2.exit_router_for(source) == "R1"

    def test_fig2a_rib_state_matches_figure(self, fig2):
        """Fig. 2b: R2 and R3 hold P via R1 with Pref=20."""
        net = fig2.network
        fig2.run_fig2a()
        for router in ("R2", "R3"):
            best = net.runtime(router).bgp.rib.best(P)
            assert best is not None
            assert best.local_pref == 20
            assert best.from_peer == "R1"

    def test_bad_change_value(self):
        change = bad_lp_change()
        assert change.router == "R2"
        assert change.value.clauses[0].set_local_pref == BAD_LOCAL_PREF

    def test_fig2b_uplink_failure_converges_cleanly(self, fig2):
        """Without blocking, the withdrawal propagates: no black hole,
        everyone on R1's uplink."""
        net = fig2.run_fig2b_uplink_failure()
        for source in ("R1", "R3"):
            path, outcome = net.trace_path(source, P.first_address())
            assert outcome == "delivered" and path[-1] == "Ext1"

    def test_violation_check_respects_uplink_status(self, fig2):
        net = fig2.run_fig2b_uplink_failure()
        # R2's uplink is down: exiting via R1 is now the *correct*
        # behaviour, not a violation.
        assert not fig2.violates_policy()


class TestFig5:
    def test_correct_start_state(self):
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_correct_state()
        for source in ("R1", "R3"):
            path, outcome = net.trace_path(source, P.first_address())
            assert outcome == "delivered"
            assert path[-1] == "Ext2"

    def test_localpref_change_flips_exit(self):
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        for source in ("R2", "R3"):
            path, outcome = net.trace_path(source, P.first_address())
            assert outcome == "delivered"
            assert path[-1] == "Ext1"

    def test_soft_reconfig_lag_about_25s(self):
        """§7: 'Twenty[-five] seconds after the console configuration,
        router R1 starts soft reconfiguration.'"""
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        ribs = [
            e
            for e in net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > scenario.t_change
        ]
        first = min(e.timestamp for e in ribs)
        lag = first - scenario.t_change
        assert 20.0 <= lag <= 30.0

    def test_fib_install_within_milliseconds_of_rib(self):
        """§7: 'Very quickly (within 4ms), a direct route to P is
        installed in the FIB.'"""
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        ribs = [
            e
            for e in net.collector.query(
                router="R1", kind=IOKind.RIB_UPDATE, prefix=P
            )
            if e.timestamp > scenario.t_change
        ]
        fibs = [
            e
            for e in net.collector.query(
                router="R1", kind=IOKind.FIB_UPDATE, prefix=P
            )
            if e.timestamp > scenario.t_change
        ]
        gap = min(f.timestamp for f in fibs) - min(r.timestamp for r in ribs)
        assert 0 < gap < 0.010

    def test_r2_withdraws_own_route(self):
        """Fig. 5's final row: 'Withdraw: P via R2' at all routers."""
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        withdraws = net.collector.query(
            router="R2",
            kind=IOKind.ROUTE_SEND,
            prefix=P,
            action=RouteAction.WITHDRAW,
        )
        assert {w.peer for w in withdraws} >= {"R1", "R3"}

    def test_event_sequence_matches_fig5_rows(self):
        """config -> (25 s) -> RIB -> FIB -> announce -> recv at R2/R3
        -> their FIBs -> R2's withdraw, strictly ordered in time."""
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        t0 = scenario.t_change

        def first(router, kind, **kw):
            events = [
                e
                for e in net.collector.query(router=router, kind=kind, **kw)
                if e.timestamp > t0
            ]
            return min(e.timestamp for e in events)

        t_rib_r1 = first("R1", IOKind.RIB_UPDATE, prefix=P)
        t_fib_r1 = first("R1", IOKind.FIB_UPDATE, prefix=P)
        t_send_r1 = first("R1", IOKind.ROUTE_SEND, prefix=P)
        t_recv_r3 = first("R3", IOKind.ROUTE_RECEIVE, prefix=P)
        t_fib_r3 = first("R3", IOKind.FIB_UPDATE, prefix=P)
        t_withdraw_r2 = first(
            "R2", IOKind.ROUTE_SEND, prefix=P, action=RouteAction.WITHDRAW
        )
        assert (
            t0
            < t_rib_r1
            <= t_fib_r1
            <= t_send_r1
            <= t_recv_r3
            <= t_fib_r3
            <= t_withdraw_r2
        )

    def test_fig5_change_value(self):
        assert fig5_change().value.clauses[0].set_local_pref == FIG5_LOCAL_PREF
