"""Tests for the live observability endpoint: MetricsServer routes,
exposition validity under hostile labels, the /healthz flip, and the
``repro serve-metrics`` CLI."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs.export import parse_exposition, validate_exposition
from repro.obs.health import HealthEngine, HealthRule
from repro.obs.serve import MetricsServer


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    obs.disable()
    obs.disable_recording()
    obs.disable_ledger()
    obs.disable_verdicts()
    obs.disable_profiling()


def _get(url):
    """(status, content_type, body_text) for one GET, 4xx/5xx included."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return (
            error.code,
            error.headers.get("Content-Type", ""),
            error.read().decode("utf-8"),
        )


class TestMetricsServer:
    def test_port_zero_resolves_to_a_real_port(self):
        with MetricsServer(port=0) as server:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")

    def test_metrics_route_serves_valid_exposition(self):
        with obs.capturing() as (registry, _tracer):
            registry.counter("verify.fib_writes_verified").inc(3)
            registry.histogram("verify.latency_seconds").observe(0.01)
            with MetricsServer(port=0) as server:
                status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert validate_exposition(body) == []
        parsed = parse_exposition(body)
        assert parsed["types"]["repro_verify_fib_writes_verified"] == (
            "counter"
        )

    def test_hostile_label_values_survive_a_live_scrape(self):
        hostile = 'edge"1\\back\nnewline'
        with obs.capturing() as (registry, _tracer):
            registry.counter("test.events", router=hostile).inc(7)
            with MetricsServer(port=0) as server:
                _status, _ct, body = _get(server.url + "/metrics")
        samples = [
            (name, labels, value)
            for name, labels, value in parse_exposition(body)["samples"]
            if name == "repro_test_events"
        ]
        assert samples == [("repro_test_events", {"router": hostile}, 7.0)]

    def test_healthz_ok_then_flips_to_503(self):
        with obs.capturing() as (registry, _tracer):
            engine = HealthEngine(
                rules=(
                    HealthRule(name="load", metric="test.load", op="<=",
                               threshold=1.0),
                )
            )
            with MetricsServer(port=0, engine=engine) as server:
                healthz = server.url + "/healthz"
                status, _ct, body = _get(healthz)  # pre-tick inline eval
                assert status == 200
                assert json.loads(body)["ok"] is True
                registry.gauge("test.load").set(5.0)
                assert server.tick() is False
                status, content_type, body = _get(healthz)
                assert status == 503
                assert content_type.startswith("application/json")
                document = json.loads(body)
                assert document["schema"] == "repro-health/v1"
                assert document["ok"] is False
                failing = [
                    r for r in document["rules"] if not r["ok"]
                ]
                assert [r["rule"] for r in failing] == ["load"]

    def test_resources_route_serves_ledger_document(self):
        with obs.capturing():
            with obs.accounting() as ledger:

                class Accountable:
                    def account_bytes(self, audit=False):
                        return 123

                owner = Accountable()
                ledger.register("test.component", owner)
                ledger.refresh()
                with MetricsServer(port=0) as server:
                    status, content_type, body = _get(
                        server.url + "/resources.json"
                    )
        assert status == 200 and content_type.startswith("application/json")
        document = json.loads(body)
        assert document["schema"] == "repro-resources/v1"
        assert document["components"]["test.component"]["bytes"] == 123

    def test_profile_route_404_when_profiling_off(self):
        with MetricsServer(port=0) as server:
            status, _ct, body = _get(server.url + "/profile.speedscope.json")
        assert status == 404
        assert "profiling is not enabled" in body

    def test_profile_route_serves_speedscope_when_on(self):
        obs.enable_profiling(stride=5, weights="events")
        try:
            sum(range(2000))  # collect a few samples
            with MetricsServer(port=0) as server:
                status, _ct, body = _get(
                    server.url + "/profile.speedscope.json"
                )
        finally:
            obs.disable_profiling()
        assert status == 200
        document = json.loads(body)
        assert document["$schema"].startswith("https://www.speedscope.app")

    def test_unknown_path_404_lists_routes(self):
        with MetricsServer(port=0) as server:
            status, _ct, body = _get(server.url + "/nope")
        assert status == 404
        assert "/metrics" in body and "/healthz" in body

    def test_stop_is_idempotent_and_start_after_stop_refused_cleanly(self):
        server = MetricsServer(port=0)
        server.start()
        server.start()  # second start is a no-op
        server.stop()
        server.stop()  # second stop is a no-op


class TestServeMetricsCli:
    def test_short_lived_serve_run_exits_healthy(self, capsys):
        rc = cli_main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--scenario",
                "fig2",
                "--interval",
                "0.05",
                "--duration",
                "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving on http://127.0.0.1:" in out
        assert "health: ok" in out

    def test_custom_health_rule_can_fail_the_run(self, capsys):
        # health.ticks_total starts counting with the first tick, so a
        # <= 0 ceiling on it must fail by the second tick.
        rc = cli_main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--scenario",
                "none",
                "--interval",
                "0.05",
                "--duration",
                "0.2",
                "--health-rule",
                "no-ticks: health.ticks_total <= 0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAILING" in out and "no-ticks" in out

    def test_custom_rule_overrides_same_named_default(self, capsys):
        # Without the override this duplicate name would be rejected by
        # HealthEngine; with it, the user's bound replaces the default's
        # and the run stays healthy even under a profiler-inflated p99.
        rc = cli_main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--scenario",
                "fig2",
                "--interval",
                "0.05",
                "--duration",
                "0.1",
                "--health-rule",
                "inference-p99: inference.build_graph_seconds.p99 <= 1e9",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "health: ok" in out

    def test_malformed_health_rule_is_a_usage_error(self, capsys):
        rc = cli_main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--scenario",
                "none",
                "--duration",
                "0.05",
                "--health-rule",
                "not a rule",
            ]
        )
        assert rc == 2
        assert "serve-metrics" in capsys.readouterr().err

    def test_profile_output_writes_speedscope_file(self, tmp_path, capsys):
        target = tmp_path / "profile.speedscope.json"
        rc = cli_main(
            [
                "serve-metrics",
                "--port",
                "0",
                "--scenario",
                "fig2",
                "--interval",
                "0.05",
                "--duration",
                "0.1",
                "--profile",
                "--profile-output",
                str(target),
            ]
        )
        assert rc == 0
        document = json.loads(target.read_text())
        assert document["profiles"], "profiled warmup must collect samples"
        assert document["$schema"].startswith("https://www.speedscope.app")


class TestVerdictsRoute:
    def test_404_when_verdict_ledger_off(self):
        with MetricsServer(port=0) as server:
            status, _ct, body = _get(server.url + "/verdicts.json")
        assert status == 404
        assert "verdict ledger is not enabled" in body

    def test_serves_ledger_document_when_on(self):
        with obs.verdicts() as ledger:
            ledger.record(
                kind="incremental",
                at=1.5,
                ok=False,
                prefix="203.0.113.0/24",
                router="R2",
                refs=(7,),
            )
            with MetricsServer(port=0) as server:
                status, content_type, body = _get(
                    server.url + "/verdicts.json"
                )
        assert status == 200 and content_type.startswith("application/json")
        document = json.loads(body)
        assert document["schema"] == "repro-verdicts/v1"
        assert document["failing_total"] == 1
        record = document["records"][0]
        assert record["prefix"] == "203.0.113.0/24"
        assert record["refs"] == [7]

    def test_404_fallback_lists_verdicts_route(self):
        with MetricsServer(port=0) as server:
            status, _ct, body = _get(server.url + "/nope")
        assert status == 404
        assert "/verdicts.json" in body


class TestConcurrentScrapes:
    def test_scrapes_stay_valid_under_registry_and_ledger_churn(self):
        """Hammer every route from reader threads while writers mutate
        the registry and append verdicts: every response must parse."""
        import threading

        with obs.capturing() as (registry, _tracer):
            with obs.verdicts() as ledger:
                stop = threading.Event()
                errors = []

                def writer(index):
                    i = 0
                    while not stop.is_set():
                        registry.counter(
                            "verify.fib_writes_verified", worker=str(index)
                        ).inc()
                        registry.histogram(
                            "verify.detection_latency_seconds"
                        ).observe(0.001 * (i % 7))
                        ledger.record(
                            kind="incremental",
                            at=float(i),
                            ok=bool(i % 2),
                            prefix="203.0.113.0/24",
                        )
                        i += 1

                def reader(url, parse):
                    while not stop.is_set():
                        status, _ct, body = _get(url)
                        try:
                            assert status == 200
                            parse(body)
                        except Exception as exc:  # noqa: BLE001
                            errors.append(f"{url}: {exc}")
                            return

                with MetricsServer(port=0) as server:
                    threads = [
                        threading.Thread(target=writer, args=(n,))
                        for n in range(2)
                    ] + [
                        threading.Thread(
                            target=reader,
                            args=(
                                server.url + "/metrics",
                                lambda b: validate_exposition(b) == []
                                or (_ for _ in ()).throw(
                                    AssertionError("invalid exposition")
                                ),
                            ),
                        ),
                        threading.Thread(
                            target=reader,
                            args=(server.url + "/verdicts.json", json.loads),
                        ),
                        threading.Thread(
                            target=reader,
                            args=(server.url + "/resources.json", json.loads),
                        ),
                    ]
                    for t in threads:
                        t.start()
                    import time as _time

                    _time.sleep(1.0)
                    stop.set()
                    for t in threads:
                        t.join(timeout=10)
                assert not errors, errors
                assert ledger.appended_total > 0
