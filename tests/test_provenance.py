"""Tests for provenance tracing — the Fig. 4 root-cause analysis."""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import P


@pytest.fixture
def fig2_traced(fast_delays):
    scenario = Fig2Scenario(seed=0, delays=fast_delays)
    net = scenario.run_fig2a()
    graph = InferenceEngine().build_graph(net.collector.all_events())
    return scenario, net, graph


def _violating_fib_event(net):
    """R1's FIB flip to its own uplink — the Fig. 4 'fault' vertex."""
    config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
    fibs = [
        e
        for e in net.collector.query(
            router="R1", kind=IOKind.FIB_UPDATE, prefix=P
        )
        if e.timestamp > config.timestamp
    ]
    return max(fibs, key=lambda e: e.timestamp), config


class TestFig4RootCause:
    def test_root_cause_is_r2_config_change(self, fig2_traced):
        """Fig. 4 / §6: traversing from 'R1 install P->Ext in FIB'
        reaches the leaf 'R2 configuration change'."""
        _scenario, net, graph = fig2_traced
        fib, config = _violating_fib_event(net)
        tracer = ProvenanceTracer(graph)
        result = tracer.trace(fib.event_id)
        root_ids = {e.event_id for e in result.root_causes}
        assert config.event_id in root_ids

    def test_config_cause_is_actionable(self, fig2_traced):
        _scenario, net, graph = fig2_traced
        fib, config = _violating_fib_event(net)
        result = ProvenanceTracer(graph).trace(fib.event_id)
        actionable_ids = {e.event_id for e in result.actionable_causes}
        assert config.event_id in actionable_ids

    def test_chain_matches_fig4_shape(self, fig2_traced):
        """config -> (R2 RIB/send) -> R1 recv -> R1 RIB -> R1 FIB."""
        _scenario, net, graph = fig2_traced
        fib, config = _violating_fib_event(net)
        result = ProvenanceTracer(graph).trace(fib.event_id)
        chain = result.chains[config.event_id]
        kinds = [e.kind for e in chain]
        assert kinds[0] is IOKind.CONFIG_CHANGE
        assert kinds[-1] is IOKind.FIB_UPDATE
        assert IOKind.ROUTE_RECEIVE in kinds
        routers = [e.router for e in chain]
        assert routers[0] == "R2" and routers[-1] == "R1"

    def test_config_change_ids_extracted(self, fig2_traced):
        scenario, net, graph = fig2_traced
        fib, _config = _violating_fib_event(net)
        result = ProvenanceTracer(graph).trace(fib.event_id)
        assert scenario.change.change_id in result.config_change_ids()

    def test_describe_readable(self, fig2_traced):
        _scenario, net, graph = fig2_traced
        fib, _config = _violating_fib_event(net)
        text = ProvenanceTracer(graph).trace(fib.event_id).describe()
        assert "root cause" in text
        assert "config change" in text


class TestTraceMany:
    def test_shared_root_reported_once(self, fig2_traced):
        """One config change poisoned R1, R2 and R3; joint provenance
        must surface it exactly once (Fig. 4's shared leaf)."""
        _scenario, net, graph = fig2_traced
        config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
        fib_events = [
            e
            for e in net.collector.query(kind=IOKind.FIB_UPDATE, prefix=P)
            if e.timestamp > config.timestamp
        ]
        assert len(fib_events) >= 2
        result = ProvenanceTracer(graph).trace_many(
            [e.event_id for e in fib_events]
        )
        config_roots = [
            e
            for e in result.root_causes
            if e.kind is IOKind.CONFIG_CHANGE and e.router == "R2"
        ]
        assert len(config_roots) == 1

    def test_empty_input_rejected(self, fig2_traced):
        _scenario, _net, graph = fig2_traced
        with pytest.raises(ValueError):
            ProvenanceTracer(graph).trace_many([])


class TestHardwareRootCause:
    def test_link_failure_traced(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.fig1.run_fig1b()
        net.fail_link("R2", "Ext2")
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        hw = net.collector.query(router="R2", kind=IOKind.HARDWARE_STATUS)[0]
        # R3's FIB removal traces back to R2's hardware event.
        from repro.capture.io_events import RouteAction

        withdraws = net.collector.query(
            router="R3",
            kind=IOKind.FIB_UPDATE,
            prefix=P,
            action=RouteAction.WITHDRAW,
        )
        assert withdraws
        result = ProvenanceTracer(graph).trace(withdraws[0].event_id)
        root_ids = {e.event_id for e in result.root_causes}
        assert hw.event_id in root_ids
        # Hardware causes are actionable in classification terms but the
        # repair engine reports them unrepairable (can't fix fibre).
        assert any(
            e.kind is IOKind.HARDWARE_STATUS for e in result.actionable_causes
        )


class TestBlastRadius:
    def test_blast_radius_covers_downstream(self, fig2_traced):
        _scenario, net, graph = fig2_traced
        config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
        downstream = ProvenanceTracer(graph).blast_radius(config.event_id)
        routers = {e.router for e in downstream}
        assert routers >= {"R1", "R2", "R3"}

    def test_confidence_threshold_respected(self, fig2_traced):
        _scenario, net, graph = fig2_traced
        fib, config = _violating_fib_event(net)
        strict = ProvenanceTracer(graph, min_confidence=1.1 - 1e-9)
        # With an impossible confidence bar, nothing is reachable and
        # the event is its own root cause.
        result = strict.trace(fib.event_id)
        assert result.root_causes == [graph.event(fib.event_id)]
