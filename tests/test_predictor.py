"""Tests for the §6 early-repair outcome predictor."""

import pytest

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix
from repro.repair.predictor import (
    OutcomePredictor,
    TrainingExample,
    input_signature,
)

P = Prefix.parse("203.0.113.0/24")


def _config_event(router="R2", key="r2-uplink-lp", t=1.0):
    return IOEvent.create(
        router,
        IOKind.CONFIG_CHANGE,
        t,
        attrs={"kind": "set_route_map", "key": key, "change_id": 1},
    )


def _hw_event(router="R2", t=1.0):
    return IOEvent.create(
        router,
        IOKind.HARDWARE_STATUS,
        t,
        attrs={"link": "eth3", "status": "down"},
    )


class TestSignatures:
    def test_config_signature_generalises_value(self):
        """Two changes to the same route-map have the same signature
        regardless of the value set — the repeatable unit."""
        a = _config_event(t=1.0)
        b = _config_event(t=99.0)
        assert input_signature(a) == input_signature(b)

    def test_different_keys_different_signature(self):
        assert input_signature(_config_event(key="a")) != input_signature(
            _config_event(key="b")
        )

    def test_hardware_signature(self):
        sig = input_signature(_hw_event())
        assert sig[0] == "hardware_status"
        assert "eth3" in sig[2]

    def test_route_event_signature(self):
        event = IOEvent.create(
            "R1",
            IOKind.ROUTE_RECEIVE,
            1.0,
            protocol="bgp",
            prefix=P,
            action=RouteAction.ANNOUNCE,
            peer="Ext1",
        )
        sig = input_signature(event)
        assert "bgp" in sig[2] and "Ext1" in sig[2]


class TestPredictor:
    def test_no_history_predicts_safe(self):
        prediction = OutcomePredictor().predict(_config_event(), group_id=0)
        assert not prediction.will_violate
        assert prediction.support == 0

    def test_learns_violation(self):
        predictor = OutcomePredictor()
        predictor.learn_from_event(
            _config_event(), group_id=0, violated=True, detail="preferred-exit"
        )
        prediction = predictor.predict(_config_event(t=50.0), group_id=0)
        assert prediction.will_violate
        assert prediction.detail == "preferred-exit"
        assert prediction.support == 1

    def test_learns_safe(self):
        predictor = OutcomePredictor()
        predictor.learn_from_event(_config_event(), group_id=0, violated=False)
        prediction = predictor.predict(_config_event(t=50.0), group_id=0)
        assert not prediction.will_violate

    def test_mixed_history_uses_threshold(self):
        predictor = OutcomePredictor(threshold=0.5)
        for violated in (True, True, False):
            predictor.learn_from_event(
                _config_event(), group_id=0, violated=violated
            )
        prediction = predictor.predict(_config_event(t=9.0), group_id=0)
        assert prediction.will_violate  # 2/3 >= 0.5
        strict = OutcomePredictor(threshold=0.9)
        for violated in (True, True, False):
            strict.learn_from_event(_config_event(), group_id=0, violated=violated)
        assert not strict.predict(_config_event(t=9.0), group_id=0).will_violate

    def test_cross_group_fallback_discounted(self):
        """'Many destinations are treated alike': evidence from another
        equivalence group still counts, at reduced weight."""
        predictor = OutcomePredictor(threshold=0.5)
        predictor.learn_from_event(_config_event(), group_id=1, violated=True)
        prediction = predictor.predict(_config_event(t=9.0), group_id=2)
        assert prediction.will_violate
        assert prediction.confidence == pytest.approx(0.8)

    def test_min_support_gate(self):
        predictor = OutcomePredictor(min_support=3)
        predictor.learn_from_event(_config_event(), group_id=0, violated=True)
        prediction = predictor.predict(_config_event(t=9.0), group_id=0)
        assert not prediction.will_violate  # not enough evidence

    def test_validation(self):
        with pytest.raises(ValueError):
            OutcomePredictor(min_support=0)
        with pytest.raises(ValueError):
            OutcomePredictor(threshold=1.5)

    def test_history_bookkeeping(self):
        predictor = OutcomePredictor()
        predictor.learn_from_event(_config_event(), group_id=0, violated=True)
        predictor.learn_from_event(_hw_event(), group_id=None, violated=False)
        assert predictor.history_size() == 2
        assert len(predictor.known_signatures()) == 2

    def test_prediction_str(self):
        predictor = OutcomePredictor()
        predictor.learn_from_event(_config_event(), group_id=0, violated=True)
        text = str(predictor.predict(_config_event(t=2.0), group_id=0))
        assert "VIOLATION" in text


class TestEndToEndPrediction:
    def test_predicts_fig2_repeat_offense(self, fast_delays):
        """Train on one Fig. 2 run; predict the violation on a repeat
        of the same config change before any FIB damage."""
        from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
        from repro.capture.io_events import IOKind as K

        first = Fig2Scenario(seed=0, delays=fast_delays)
        net = first.run_fig2a()
        config_event = net.collector.query(
            router="R2", kind=K.CONFIG_CHANGE
        )[0]
        predictor = OutcomePredictor()
        predictor.learn_from_event(
            config_event,
            group_id=0,
            violated=first.violates_policy(),
            detail="preferred-exit",
        )
        # Second run, same kind of change: predicted violating *at
        # config time*, before soft reconfiguration even fires.
        second = Fig2Scenario(seed=9, delays=fast_delays)
        net2 = second.run_baseline()
        net2.apply_config_change(bad_lp_change())
        net2.run(0.001)  # before the reconfiguration delay elapses
        new_config_event = net2.network.collector.query(
            router="R2", kind=K.CONFIG_CHANGE
        )[0] if hasattr(net2, "network") else net2.collector.query(
            router="R2", kind=K.CONFIG_CHANGE
        )[0]
        prediction = predictor.predict(new_config_event, group_id=0)
        assert prediction.will_violate
        assert not second.violates_policy()  # damage not yet done
