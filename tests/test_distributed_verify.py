"""Tests for distributed verification."""

import pytest

from repro.net.addr import Prefix
from repro.net.topology import paper_topology
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.distributed import (
    DistributedVerifier,
    centralized_equivalent_stats,
)


def _entry(router, nh, discard=False):
    return SnapshotEntry(router, P, nh, "eth0", "ibgp", discard, 0, 1.0)


def _snapshot(entries):
    snapshot = DataPlaneSnapshot()
    for router, nh in entries:
        snapshot.install(_entry(router, nh))
    return snapshot


@pytest.fixture
def topo():
    return paper_topology()


class TestProbes:
    def test_delivered_outcome(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        verifier = DistributedVerifier(topo, snapshot)
        outcomes, stats = verifier.verify_address(P.first_address())
        assert {o.outcome for o in outcomes} == {"delivered"}
        assert stats.messages > 0

    def test_loop_detected(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "R1"), ("R3", "R2")])
        verifier = DistributedVerifier(topo, snapshot)
        outcomes, _stats = verifier.verify_address(P.first_address())
        assert any(o.outcome == "loop" for o in outcomes)

    def test_blackhole_detected(self, topo):
        snapshot = _snapshot([("R1", "R3")])
        snapshot.install(
            SnapshotEntry(
                "R3", Prefix.parse("10.0.0.0/8"), None, None, "connected",
                False, 0, 1.0,
            )
        )
        verifier = DistributedVerifier(topo, snapshot)
        outcomes, _stats = verifier.verify_address(P.first_address())
        by_source = {o.source: o.outcome for o in outcomes}
        assert by_source["R1"] == "blackhole"

    def test_outcomes_match_central_trace(self, topo, fast_delays):
        """The distributed walk must agree with the centralized one."""
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshot = DataPlaneSnapshot.from_live_network(net)
        verifier = DistributedVerifier(net.topology, snapshot)
        outcomes, _ = verifier.verify_address(P.first_address())
        for outcome in outcomes:
            central_path, central_outcome = snapshot.trace(
                outcome.source, P.first_address()
            )
            assert outcome.outcome == central_outcome
            assert list(outcome.path) == central_path


class TestStats:
    def test_work_distributed_across_routers(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        verifier = DistributedVerifier(topo, snapshot)
        _outcomes, stats = verifier.verify_address(P.first_address())
        assert len(stats.per_router_work) >= 3
        assert stats.bottleneck_work < stats.total_work

    def test_central_does_all_work_in_one_place(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        stats = centralized_equivalent_stats(topo, snapshot, [P])
        assert list(stats.per_router_work) == ["verifier"]
        assert stats.latency == 0.0

    def test_distributed_bottleneck_smaller_than_central(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        verifier = DistributedVerifier(topo, snapshot)
        _o, dist_stats = verifier.verify_address(P.first_address())
        central = centralized_equivalent_stats(topo, snapshot, [P])
        assert dist_stats.bottleneck_work < central.bottleneck_work

    def test_distributed_has_latency_cost(self, topo):
        """§5: 'This approach adds time overhead.'"""
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        verifier = DistributedVerifier(topo, snapshot, hop_delay=0.01)
        _o, stats = verifier.verify_address(P.first_address())
        central = centralized_equivalent_stats(topo, snapshot, [P])
        assert stats.latency > central.latency

    def test_verify_prefixes_accumulates(self, topo):
        other = Prefix.parse("198.51.100.0/24")
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2")])
        snapshot.install(
            SnapshotEntry("R1", other, "R2", "eth0", "ibgp", False, 0, 1.0)
        )
        snapshot.install(
            SnapshotEntry("R2", other, "Ext2", "eth0", "ibgp", False, 0, 1.0)
        )
        verifier = DistributedVerifier(topo, snapshot)
        outcomes, stats = verifier.verify_prefixes([P, other])
        assert len(outcomes) >= 4
        assert stats.total_work > 0

    def test_loop_violations_wrapper(self, topo):
        snapshot = _snapshot([("R1", "R2"), ("R2", "R1")])
        verifier = DistributedVerifier(topo, snapshot)
        violations, _stats = verifier.loop_violations([P])
        assert violations and violations[0].policy == "loop-freedom"
