"""Tests for the centralized verifier and its incremental mode."""

import pytest

from repro.net.addr import Prefix
from repro.net.topology import paper_topology
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.policy import LoopFreedomPolicy, PreferredExitPolicy
from repro.verify.verifier import DataPlaneVerifier

P = Prefix.parse("203.0.113.0/24")


def _entry(router, nh, discard=False, prefix=P):
    return SnapshotEntry(router, prefix, nh, "eth0", "ibgp", discard, 0, 1.0)


def _snapshot(entries):
    snapshot = DataPlaneSnapshot()
    for router, nh in entries:
        snapshot.install(_entry(router, nh))
    return snapshot


@pytest.fixture
def topo():
    return paper_topology()


@pytest.fixture
def exit_policy():
    return PreferredExitPolicy(
        prefix=P,
        preferred_exit="R2",
        fallback_exit="R1",
        uplink_of={"R2": "Ext2", "R1": "Ext1"},
    )


GOOD = [("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")]
BAD_EXIT = [("R1", "Ext1"), ("R2", "R1"), ("R3", "R1")]


class TestVerify:
    def test_ok_result(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy, LoopFreedomPolicy()])
        result = verifier.verify(_snapshot(GOOD))
        assert result.ok
        assert result.policies_checked == 2
        assert result.wall_seconds >= 0

    def test_violations_reported(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        result = verifier.verify(_snapshot(BAD_EXIT))
        assert not result.ok
        assert result.by_policy()["preferred-exit"]

    def test_equivalence_class_mode_counts(self, topo, exit_policy):
        verifier = DataPlaneVerifier(
            topo, [exit_policy], use_equivalence_classes=True
        )
        result = verifier.verify(_snapshot(GOOD))
        assert result.equivalence_classes == 1

    def test_str(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        assert "OK" in str(verifier.verify(_snapshot(GOOD)))


class TestIncremental:
    def test_hypothetical_copy_does_not_mutate(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        snapshot = _snapshot(GOOD)
        clone = verifier.with_hypothetical_entry(
            snapshot, _entry("R1", "Ext1"), "R1", P
        )
        assert snapshot.entry("R1", P).next_hop_router == "R2"
        assert clone.entry("R1", P).next_hop_router == "Ext1"

    def test_hypothetical_removal(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        clone = verifier.with_hypothetical_entry(_snapshot(GOOD), None, "R1", P)
        assert clone.entry("R1", P) is None

    def test_bad_update_introduces_violation(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        introduced, _result = verifier.new_violations_from(
            _snapshot(GOOD), _entry("R1", "Ext1"), "R1", P
        )
        assert introduced
        assert introduced[0].policy == "preferred-exit"

    def test_convergence_step_not_blamed(self, topo, exit_policy):
        """An update that *fixes* things introduces no violations even
        if other violations remain."""
        verifier = DataPlaneVerifier(topo, [exit_policy])
        broken = _snapshot(BAD_EXIT)
        # R3 flips back toward R2: strictly an improvement.
        introduced, _ = verifier.new_violations_from(
            broken, _entry("R3", "R2"), "R3", P
        )
        assert introduced == []

    def test_neutral_update_not_blamed(self, topo, exit_policy):
        verifier = DataPlaneVerifier(topo, [exit_policy])
        introduced, _ = verifier.new_violations_from(
            _snapshot(GOOD), _entry("R3", "R2"), "R3", P
        )
        assert introduced == []

    def test_loop_introduction_detected(self, topo):
        verifier = DataPlaneVerifier(topo, [LoopFreedomPolicy(prefixes=[P])])
        snapshot = _snapshot([("R1", "R2"), ("R2", "Ext2"), ("R3", "R2")])
        introduced, _ = verifier.new_violations_from(
            snapshot, _entry("R2", "R1"), "R2", P
        )
        assert introduced and introduced[0].policy == "loop-freedom"
