"""Tests for repro.testkit: fuzzer, oracles, shrinker, artifacts.

The expensive end-to-end checks (25-case oracle sweep, byte-identical
replay) run on deliberately small cases; the whole module stays well
inside the tier-1 time budget.
"""

import json
import os
from pathlib import Path

import pytest

from repro.testkit import (
    Artifact,
    CasePlan,
    FuzzCase,
    FuzzRunner,
    ORACLES,
    OracleContext,
    OracleVerdict,
    PlannedEvent,
    ScenarioFuzzer,
    artifact_matches_expectation,
    execute_plan,
    execution_digest,
    iter_artifacts,
    load_artifact,
    normalize_events,
    plan_case,
    shrink,
    write_artifact,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REGRESSIONS = os.path.join(
    REPO_ROOT, "tests", "fixtures", "fuzz_regressions"
)


class TestCaseModel:
    def test_planned_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown planned-event kind"):
            PlannedEvent(1.0, "reboot", "R0")

    def test_case_round_trips_through_json(self):
        case = ScenarioFuzzer(5).case(3)
        data = json.loads(json.dumps(case.to_dict()))
        assert FuzzCase.from_dict(data) == case

    def test_case_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FuzzCase field"):
            FuzzCase.from_dict({"seed": 1, "bogus": 2})

    def test_case_requires_seed(self):
        with pytest.raises(ValueError, match="needs a seed"):
            FuzzCase.from_dict({"routers": 4})

    def test_plan_round_trips_through_json(self):
        plan = plan_case(ScenarioFuzzer(5).case(0))
        data = json.loads(json.dumps(plan.to_dict()))
        assert CasePlan.from_dict(data) == plan

    def test_normalize_drops_orphaned_withdraw(self):
        kept = normalize_events(
            [PlannedEvent(2.0, "withdraw", "Ext0", prefix_index=0)]
        )
        assert kept == ()

    def test_normalize_keeps_announced_withdraw(self):
        kept = normalize_events(
            [
                PlannedEvent(1.0, "announce", "Ext0", prefix_index=0),
                PlannedEvent(2.0, "withdraw", "Ext0", prefix_index=0),
            ]
        )
        assert [e.kind for e in kept] == ["announce", "withdraw"]

    def test_normalize_drops_orphaned_link_up_and_dup_down(self):
        kept = normalize_events(
            [
                PlannedEvent(1.0, "link_up", "R0|R1"),
                PlannedEvent(2.0, "link_down", "R0|R1"),
                PlannedEvent(3.0, "link_down", "R0|R1"),
                PlannedEvent(4.0, "link_up", "R0|R1"),
            ]
        )
        assert [(e.time, e.kind) for e in kept] == [
            (2.0, "link_down"),
            (4.0, "link_up"),
        ]

    def test_normalize_orders_by_time(self):
        kept = normalize_events(
            [
                PlannedEvent(3.0, "announce", "Ext0", prefix_index=1),
                PlannedEvent(1.0, "announce", "Ext0", prefix_index=0),
            ]
        )
        assert [e.time for e in kept] == [1.0, 3.0]


class TestFuzzerDeterminism:
    def test_same_seed_same_cases(self):
        assert ScenarioFuzzer(9).cases(10) == ScenarioFuzzer(9).cases(10)

    def test_case_independent_of_stream_position(self):
        # Case i never depends on cases generated before it.
        assert ScenarioFuzzer(9).case(7) == ScenarioFuzzer(9).cases(10)[7]

    def test_different_seeds_differ(self):
        assert ScenarioFuzzer(1).cases(5) != ScenarioFuzzer(2).cases(5)

    def test_knobs_within_ranges(self):
        for case in ScenarioFuzzer(3).cases(20):
            assert 4 <= case.routers <= 7
            assert 1 <= case.uplinks <= 2
            assert 2 <= case.prefixes <= 4
            assert (case.straggler_index >= 0) == (case.straggler_lag > 0)

    def test_plan_is_deterministic(self):
        case = ScenarioFuzzer(4).case(0)
        assert plan_case(case) == plan_case(case)


class TestExecutionDigest:
    def test_same_plan_same_digest(self):
        plan = plan_case(FuzzCase(seed=11, routers=4, uplinks=1, prefixes=2,
                                  churn_events=3, flap_events=1))
        assert execution_digest(execute_plan(plan)) == execution_digest(
            execute_plan(plan)
        )

    def test_different_plans_different_digest(self):
        small = FuzzCase(seed=11, routers=4, uplinks=1, prefixes=2,
                         churn_events=3, flap_events=0)
        other = FuzzCase(seed=12, routers=4, uplinks=1, prefixes=2,
                         churn_events=3, flap_events=0)
        assert execution_digest(execute_plan(plan_case(small))) != (
            execution_digest(execute_plan(plan_case(other)))
        )


class TestOracles:
    def test_registry_has_the_eight_oracles(self):
        assert list(ORACLES) == [
            "snapshot-consistency",
            "hbg-distributed",
            "hbg-indexed-equivalence",
            "hbg-distributed-equivalence",
            "whatif-replay",
            "provenance-rollback",
            "verify-incremental-equivalence",
            "replay-determinism",
        ]

    @pytest.mark.parametrize("index", range(5))
    def test_all_oracles_pass_on_seeded_cases(self, index):
        # A slice of the seed-0 campaign; `repro fuzz --cases 25` in CI
        # covers the quantity, this keeps a sample inside tier-1.
        plan = plan_case(ScenarioFuzzer(0).case(index))
        ctx = OracleContext(plan)
        for name, oracle_fn in ORACLES.items():
            verdict = oracle_fn(ctx)
            assert verdict.ok, f"{name} failed on case {index}: {verdict.detail}"
            assert verdict.oracle == name


def _planted_oracle(ctx):
    """Fails iff the workload contains an inverting misconfig."""
    bad = [
        e
        for e in ctx.plan.events
        if e.kind == "misconfig" and e.local_pref < 100
    ]
    return OracleVerdict(
        oracle="planted",
        ok=not bad,
        detail=f"{len(bad)} inverting misconfig(s)",
        checked=len(ctx.plan.events),
    )


class TestShrinker:
    def test_converges_on_planted_bug(self):
        case = FuzzCase(seed=42, routers=5, uplinks=2, prefixes=3,
                        churn_events=12, flap_events=2, misconfig_rounds=2)
        plan = plan_case(case)
        assert not _planted_oracle(OracleContext(plan)).ok
        result = shrink(plan, _planted_oracle)
        assert not result.verdict.ok
        assert result.shrunk_events <= 0.25 * result.original_events
        assert all(
            e.kind == "misconfig" and e.local_pref < 100
            for e in result.plan.events
        )

    def test_shrunk_plan_replays_to_same_failure(self, tmp_path):
        case = FuzzCase(seed=42, routers=5, uplinks=2, prefixes=3,
                        churn_events=12, flap_events=2, misconfig_rounds=2)
        result = shrink(plan_case(case), _planted_oracle)
        artifact = Artifact(
            oracle="planted", expect="fail", plan=result.plan,
            detail=result.verdict.detail, shrink=result.to_dict(),
        )
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)
        assert loaded.plan == result.plan
        replayed = _planted_oracle(OracleContext(loaded.plan))
        assert not replayed.ok
        assert replayed.detail == result.verdict.detail

    def test_rejects_passing_plan(self):
        plan = plan_case(FuzzCase(seed=1, routers=4, uplinks=1, prefixes=2,
                                  churn_events=2, misconfig_rounds=0))
        with pytest.raises(ValueError, match="does not fail"):
            shrink(plan, _planted_oracle)

    def test_respects_oracle_run_budget(self):
        case = FuzzCase(seed=42, routers=5, uplinks=2, prefixes=3,
                        churn_events=12, flap_events=2, misconfig_rounds=2)
        result = shrink(plan_case(case), _planted_oracle, max_oracle_runs=3)
        assert result.oracle_runs <= 3


class TestArtifacts:
    def _plan(self):
        return plan_case(FuzzCase(seed=7, routers=4, uplinks=1, prefixes=2,
                                  churn_events=2, flap_events=0))

    def test_round_trip(self, tmp_path):
        artifact = Artifact(
            oracle="replay-determinism", expect="pass", plan=self._plan()
        )
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)
        assert loaded.oracle == artifact.oracle
        assert loaded.expect == artifact.expect
        assert loaded.plan == artifact.plan

    def test_corrupt_json_raises_value_error(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="cannot read artifact"):
            load_artifact(bad)

    def test_wrong_schema_raises_value_error(self, tmp_path):
        bad = tmp_path / "schema.json"
        bad.write_text(json.dumps({"schema": 99}), encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported artifact schema"):
            load_artifact(bad)

    def test_missing_field_raises_value_error(self, tmp_path):
        bad = tmp_path / "missing.json"
        bad.write_text(
            json.dumps({"schema": 1, "oracle": "x", "expect": "pass"}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="missing"):
            load_artifact(bad)

    def test_bad_expect_raises_value_error(self, tmp_path):
        artifact = Artifact(
            oracle="replay-determinism", expect="pass", plan=self._plan()
        )
        data = artifact.to_dict()
        data["expect"] = "maybe"
        bad = tmp_path / "expect.json"
        bad.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ValueError, match="expect"):
            load_artifact(bad)

    def test_iter_artifacts_on_missing_dir(self, tmp_path):
        assert list(iter_artifacts(tmp_path / "nope")) == []


class TestRunner:
    def test_report_is_deterministic(self):
        kwargs = dict(seed=0, cases=2)
        first = FuzzRunner().run(**kwargs).to_dict()
        second = FuzzRunner().run(**kwargs).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["failures"] == 0

    def test_rejects_unknown_oracle(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            FuzzRunner(oracle_names=["nope"])

    def test_oracle_subset_runs_only_those(self):
        report = FuzzRunner(oracle_names=["replay-determinism"]).run(
            seed=0, cases=1
        )
        assert report.oracles == ["replay-determinism"]
        assert [v.oracle for v in report.results[0].verdicts] == [
            "replay-determinism"
        ]

    def test_planted_failure_produces_shrunk_artifact(self, tmp_path):
        # Register a throwaway oracle, fuzz one case known to contain
        # an inverting misconfig, and check the full failure pipeline:
        # detect -> shrink -> persist -> replay.
        name = "planted-test-oracle"

        def stamped(ctx):
            verdict = _planted_oracle(ctx)
            verdict.oracle = name
            return verdict

        ORACLES[name] = stamped
        try:
            runner = FuzzRunner(
                oracle_names=[name], artifacts_dir=tmp_path
            )
            report = runner.run(seed=42, cases=8)
            failing = report.failures
            assert failing, "expected at least one inverting misconfig"
            result = failing[0]
            assert result.artifact_path is not None
            assert result.shrink is not None
            assert result.shrink["shrunk_events"] <= result.events
            loaded = load_artifact(iter_artifacts(tmp_path).__next__())
            assert loaded.expect == "fail"
            assert not _planted_oracle(OracleContext(loaded.plan)).ok
        finally:
            del ORACLES[name]

    def test_minutes_budget_skips_remaining_cases(self):
        report = FuzzRunner(
            oracle_names=["replay-determinism"]
        ).run(seed=0, cases=3, minutes=0.0)
        assert report.cases == 0
        assert report.budget_skipped == 3


@pytest.mark.parametrize(
    "path",
    sorted(
        os.path.join(REGRESSIONS, name)
        for name in os.listdir(REGRESSIONS)
        if name.endswith(".json")
    ),
    ids=os.path.basename,
)
def test_regression_fixture_replays(path):
    """Every committed artifact must replay to its recorded outcome."""
    artifact = load_artifact(Path(path))
    verdict = artifact_matches_expectation(artifact)
    assert verdict.oracle == artifact.oracle
