"""Tests for the synthetic topology/workload generators."""

import pytest

from repro.scenarios.generators import (
    attach_uplinks,
    build_random_network,
    churn_workload,
    external_prefixes,
    misconfig_campaign,
    planted_ec_snapshot,
    random_connected_topology,
)


class TestRandomTopology:
    def test_connected(self):
        for seed in range(4):
            topo = random_connected_topology(10, seed=seed)
            reachable = {"R0"}
            frontier = ["R0"]
            while frontier:
                node = frontier.pop()
                for neighbor in topo.neighbors(node):
                    if neighbor not in reachable:
                        reachable.add(neighbor)
                        frontier.append(neighbor)
            assert len(reachable) == 10

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            random_connected_topology(1)

    def test_edge_count_scales(self):
        sparse = random_connected_topology(20, extra_edge_fraction=0.0, seed=1)
        dense = random_connected_topology(20, extra_edge_fraction=1.0, seed=1)
        assert len(sparse.links) == 19
        assert len(dense.links) > len(sparse.links)

    def test_deterministic_per_seed(self):
        a = random_connected_topology(12, seed=7)
        b = random_connected_topology(12, seed=7)
        assert set(a.links) == set(b.links)


class TestUplinks:
    def test_attach_count(self):
        topo = random_connected_topology(8, seed=0)
        specs = attach_uplinks(topo, 3, seed=0)
        assert len(specs) == 3
        assert len(topo.external_routers()) == 3

    def test_too_many_uplinks_rejected(self):
        topo = random_connected_topology(3, seed=0)
        with pytest.raises(ValueError):
            attach_uplinks(topo, 5, seed=0)

    def test_local_prefs_descend(self):
        topo = random_connected_topology(8, seed=0)
        specs = attach_uplinks(topo, 3, seed=0)
        prefs = [s.local_pref for s in specs]
        assert prefs == sorted(prefs, reverse=True)


class TestRandomNetwork:
    def test_converges_with_ospf_and_bgp(self):
        net, specs = build_random_network(6, uplinks=2, seed=1)
        net.start()
        prefixes = external_prefixes(3)
        for prefix in prefixes:
            net.announce_prefix(specs[0].external, prefix)
        net.run(30)
        for prefix in prefixes:
            path, outcome = net.trace_path("R3", prefix.first_address())
            assert outcome == "delivered"

    def test_preferred_uplink_wins(self):
        net, specs = build_random_network(6, uplinks=2, seed=1)
        net.start()
        prefix = external_prefixes(1)[0]
        for spec in specs:
            net.announce_prefix(spec.external, prefix)
        net.run(30)
        preferred = max(specs, key=lambda s: s.local_pref)
        for router in net.topology.internal_routers():
            path, outcome = net.trace_path(router, prefix.first_address())
            assert outcome == "delivered"
            assert path[-1] == preferred.external

    def test_ospf_provides_loopback_reachability(self):
        net, _specs = build_random_network(6, uplinks=1, seed=2)
        net.start()
        net.run(10)
        r0 = net.runtime("R0")
        target = net.topology.router("R5").loopback
        path, outcome = net.trace_path("R0", target)
        assert outcome == "delivered"
        assert path[-1] == "R5"


class TestScaledNetwork:
    """The O(n)-event family for the n≥128 scaling benchmarks."""

    def test_full_coverage_without_ospf(self):
        from repro.capture.io_events import IOKind
        from repro.scenarios.generators import build_scaled_network

        net, specs = build_scaled_network(16, seed=0)
        net.start()
        prefixes = external_prefixes(2)
        for prefix in prefixes:
            net.announce_prefix(specs[0].external, prefix)
        net.run(30)
        # Route reflection + the static underlay must install every
        # external prefix on every internal router.
        for router in net.topology.internal_routers():
            for prefix in prefixes:
                path, outcome = net.trace_path(
                    router, prefix.first_address()
                )
                assert outcome == "delivered", (router, str(prefix))
        # No OSPF: the IGP event budget is the static-config one.
        events = net.collector.all_events()
        assert not any(e.protocol == "ospf" for e in events)

    def test_events_scale_linearly(self):
        from repro.capture.io_events import reset_event_ids
        from repro.scenarios.generators import build_scaled_network

        counts = {}
        for n in (8, 16):
            reset_event_ids()
            net, specs = build_scaled_network(n, seed=0)
            net.start()
            net.announce_prefix(specs[0].external, external_prefixes(1)[0])
            net.run(30)
            counts[n] = len(net.collector.all_events())
        # Doubling n must not quadruple events (the full-mesh + OSPF
        # family does): allow 3x for constant-factor noise.
        assert counts[16] < 3 * counts[8]

    def test_deterministic_per_seed(self):
        from repro.scenarios.generators import build_scaled_network

        first, _ = build_scaled_network(12, seed=5)
        second, _ = build_scaled_network(12, seed=5)
        assert sorted(first.topology.routers) == sorted(
            second.topology.routers
        )
        first_links = sorted(
            (link.a.router, link.b.router)
            for link in first.topology.links.values()
        )
        second_links = sorted(
            (link.a.router, link.b.router)
            for link in second.topology.links.values()
        )
        assert first_links == second_links


class TestWorkloads:
    def test_churn_schedule_shape(self):
        net, specs = build_random_network(5, uplinks=2, seed=4)
        net.start()
        prefixes = external_prefixes(4)
        schedule = churn_workload(
            net, specs, prefixes, events=20, start=2.0, seed=4
        )
        assert len(schedule) == 20
        assert all(t >= 2.0 for t, _a, _e, _p in schedule)
        assert {a for _t, a, _e, _p in schedule} <= {"announce", "withdraw"}
        net.run(60)  # must not crash or oscillate

    def test_churn_withdraws_only_announced(self):
        net, specs = build_random_network(5, uplinks=2, seed=4)
        net.start()
        schedule = churn_workload(
            net, specs, external_prefixes(4), events=30, start=2.0, seed=4
        )
        live = {spec.external: set() for spec in specs}
        for _t, action, ext, prefix in schedule:
            if action == "announce":
                live[ext].add(prefix)
            else:
                assert prefix in live[ext]
                live[ext].discard(prefix)

    def test_misconfig_campaign(self):
        net, specs = build_random_network(5, uplinks=2, seed=4)
        changes = misconfig_campaign(specs, rounds=10, seed=4)
        assert len(changes) == 10
        for change in changes:
            assert change.kind == "set_route_map"
            assert change.router in {s.router for s in specs}


class TestPlantedEc:
    def test_class_count_limit(self):
        with pytest.raises(ValueError):
            planted_ec_snapshot(num_prefixes=10, num_classes=100, num_routers=3)

    def test_prefix_class_assignment_shape(self):
        snapshot, assignment = planted_ec_snapshot(
            num_prefixes=40, num_classes=6, num_routers=5, seed=0
        )
        assert len(assignment) == 40
        assert set(assignment) == set(range(6))  # all classes used
        assert len(snapshot.all_prefixes()) == 40

    def test_each_class_used_at_least_once(self):
        _snapshot, assignment = planted_ec_snapshot(
            num_prefixes=15, num_classes=15, num_routers=6, seed=0
        )
        assert sorted(set(assignment)) == list(range(15))
