"""Tests for the inverted HBG-inference index (repro.hbr.index)."""

import random

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.index import (
    MAX_ID,
    EventIndex,
    SortedEventList,
    plan_for_rule,
)
from repro.hbr.rules import default_rules
from repro.net.addr import Prefix

P = Prefix.parse("203.0.113.0/24")
P2 = Prefix.parse("198.51.100.0/24")


def _event(router="R1", kind=IOKind.FIB_UPDATE, t=1.0, prefix=P, peer=None):
    return IOEvent.create(
        router,
        kind,
        t,
        protocol="bgp",
        prefix=prefix,
        action=RouteAction.ANNOUNCE,
        peer=peer,
    )


def _keys(events):
    return [(e.timestamp, e.event_id) for e in events]


class TestSortedEventList:
    def test_in_order_appends(self):
        lst = SortedEventList()
        events = [_event(t=float(i)) for i in range(10)]
        for event in events:
            lst.add(event)
        assert list(lst) == events
        assert len(lst) == 10

    def test_out_of_order_inserts_stay_sorted(self):
        lst = SortedEventList()
        events = [_event(t=float(i)) for i in range(200)]
        shuffled = events[:]
        random.Random(3).shuffle(shuffled)
        for event in shuffled:
            lst.add(event)
        assert _keys(lst) == sorted(_keys(events))

    def test_equal_timestamps_order_by_event_id(self):
        lst = SortedEventList()
        events = [_event(t=5.0) for _ in range(20)]
        for event in reversed(events):
            lst.add(event)
        assert list(lst) == events  # event ids are allocation-ordered

    def test_chunk_splits_preserve_iteration_and_ranges(self):
        lst = SortedEventList()
        events = [_event(t=float(i)) for i in range(3000)]
        shuffled = events[:]
        random.Random(7).shuffle(shuffled)
        for event in shuffled:
            lst.add(event)
        assert len(lst._chunks) > 1  # the split path actually ran
        assert _keys(lst) == _keys(events)
        window = list(
            lst.irange((100.0, 0), (200.0, MAX_ID))
        )
        assert _keys(window) == _keys(events[100:201])

    def test_irange_bounds_are_inclusive(self):
        lst = SortedEventList()
        events = [_event(t=float(i)) for i in range(5)]
        for event in events:
            lst.add(event)
        lo = (events[1].timestamp, events[1].event_id)
        hi = (events[3].timestamp, events[3].event_id)
        assert list(lst.irange(lo, hi)) == events[1:4]
        assert list(lst.irange((9.0, 0), (1.0, 0))) == []  # empty range


class TestEventIndex:
    def test_window_spans_all_events(self):
        index = EventIndex()
        events = [
            _event(router=f"R{i % 3}", t=float(i)) for i in range(12)
        ]
        for event in events:
            index.add(event)
        assert len(index) == 12
        assert list(index.window((0.0, 0), (99.0, MAX_ID))) == events

    def test_after_is_strictly_after_the_key(self):
        index = EventIndex()
        events = [_event(t=1.0), _event(t=1.0), _event(t=2.0)]
        for event in events:
            index.add(event)
        key = (events[0].timestamp, events[0].event_id)
        tail = list(index.after(key, (9.0, MAX_ID)))
        assert tail == events[1:]

    def test_same_router_plan_reads_only_that_router(self):
        rules = {r.name: r for r in default_rules()}
        plan = plan_for_rule(rules["rib-before-fib"])
        assert plan.router_from == "same"
        assert plan.prefix_narrowed
        index = EventIndex()
        here = [
            _event(router="R1", kind=IOKind.RIB_UPDATE, t=float(i))
            for i in range(3)
        ]
        elsewhere = [
            _event(router="R2", kind=IOKind.RIB_UPDATE, t=float(i))
            for i in range(3)
        ]
        other_prefix = _event(
            router="R1", kind=IOKind.RIB_UPDATE, t=1.5, prefix=P2
        )
        for event in here + elsewhere + [other_prefix]:
            index.add(event)
        cons = _event(router="R1", kind=IOKind.FIB_UPDATE, t=2.5)
        got = index.candidates(plan, cons, (0.0, 0), (9.0, MAX_ID))
        assert got == here

    def test_peer_plan_without_peer_yields_nothing(self):
        rules = {r.name: r for r in default_rules()}
        plan = plan_for_rule(rules["send-before-recv"])
        assert plan.router_from == "peer"
        index = EventIndex()
        index.add(_event(router="R2", kind=IOKind.ROUTE_SEND, t=1.0))
        cons = _event(
            router="R1", kind=IOKind.ROUTE_RECEIVE, t=2.0, peer=None
        )
        assert index.candidates(plan, cons, (0.0, 0), (9.0, MAX_ID)) == []

    def test_peer_plan_reads_the_peer_router_bucket(self):
        rules = {r.name: r for r in default_rules()}
        plan = plan_for_rule(rules["send-before-recv"])
        index = EventIndex()
        send = _event(
            router="R2", kind=IOKind.ROUTE_SEND, t=1.0, peer="R1"
        )
        decoy = _event(
            router="R3", kind=IOKind.ROUTE_SEND, t=1.0, peer="R1"
        )
        index.add(send)
        index.add(decoy)
        cons = _event(
            router="R1", kind=IOKind.ROUTE_RECEIVE, t=2.0, peer="R2"
        )
        got = index.candidates(plan, cons, (0.0, 0), (9.0, MAX_ID))
        assert got == [send]

    def test_prefixless_consequent_on_prefix_plan_yields_nothing(self):
        rules = {r.name: r for r in default_rules()}
        plan = plan_for_rule(rules["rib-before-fib"])
        index = EventIndex()
        index.add(_event(router="R1", kind=IOKind.RIB_UPDATE, t=1.0))
        cons = _event(
            router="R1", kind=IOKind.FIB_UPDATE, t=2.0, prefix=None
        )
        assert index.candidates(plan, cons, (0.0, 0), (9.0, MAX_ID)) == []

    def test_multi_kind_plans_merge_in_key_order(self):
        from repro.hbr.rules import EventPattern, HbrRule, same_router

        rule = HbrRule(
            name="multi-kind",
            antecedent=EventPattern(
                kinds=(IOKind.RIB_UPDATE, IOKind.HARDWARE_STATUS)
            ),
            consequent=EventPattern(kinds=(IOKind.FIB_UPDATE,)),
            relations=(same_router,),
            window=99.0,
        )
        plan = plan_for_rule(rule)
        assert plan.router_from == "same"
        index = EventIndex()
        interleaved = [
            _event(
                router="R1",
                kind=(
                    IOKind.RIB_UPDATE
                    if i % 2
                    else IOKind.HARDWARE_STATUS
                ),
                t=float(i),
            )
            for i in range(6)
        ]
        for event in interleaved:
            index.add(event)
        index.add(_event(router="R2", kind=IOKind.RIB_UPDATE, t=2.5))
        cons = _event(router="R1", kind=IOKind.FIB_UPDATE, t=9.0)
        got = index.candidates(plan, cons, (0.0, 0), (99.0, MAX_ID))
        # Two per-kind buckets merged back into (timestamp, id) order.
        assert got == interleaved


class TestRulePlans:
    def test_every_default_rule_gets_a_plan(self):
        for rule in default_rules():
            plan = plan_for_rule(rule)
            assert plan.router_from in ("same", "peer", "any")
            assert plan.kinds == tuple(rule.antecedent.kinds)

    def test_custom_relation_plans_conservatively(self):
        rule = default_rules()[0]
        custom = type(rule)(
            name="custom",
            antecedent=rule.antecedent,
            consequent=rule.consequent,
            relations=(lambda a, b: True,),
            window=rule.window,
        )
        plan = plan_for_rule(custom)
        assert plan.router_from == "any"
        assert not plan.prefix_narrowed
