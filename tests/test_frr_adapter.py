"""Tests for the FRR-flavoured log adapter (logs <-> events <-> HBG)."""

import pytest

from repro.capture.frr import FrrLogParser, FrrParseError, render_event, render_events
from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.repair.provenance import ProvenanceTracer
from repro.scenarios.fig2 import Fig2Scenario
from repro.scenarios.paper_net import P


def _round_trip(event):
    line = render_event(event)
    parsed = FrrLogParser().parse_line(line)
    return parsed


class TestRoundTrip:
    def test_bgp_update_receive(self):
        event = IOEvent.create(
            "R1",
            IOKind.ROUTE_RECEIVE,
            1.25,
            protocol="bgp",
            prefix=P,
            action=RouteAction.ANNOUNCE,
            peer="R2",
            attrs={
                "next_hop": "10.0.0.2",
                "as_path": "65001",
                "local_pref": 30,
                "med": 0,
            },
        )
        parsed = _round_trip(event)
        assert parsed.kind is IOKind.ROUTE_RECEIVE
        assert parsed.router == "R1" and parsed.peer == "R2"
        assert parsed.prefix == P
        assert parsed.timestamp == pytest.approx(1.25)
        assert parsed.attr("local_pref") == 30
        assert parsed.attr("as_path") == "65001"

    def test_bgp_withdraw_send(self):
        event = IOEvent.create(
            "R2",
            IOKind.ROUTE_SEND,
            2.0,
            protocol="bgp",
            prefix=P,
            action=RouteAction.WITHDRAW,
            peer="R3",
        )
        parsed = _round_trip(event)
        assert parsed.kind is IOKind.ROUTE_SEND
        assert parsed.action is RouteAction.WITHDRAW
        assert parsed.peer == "R3"

    def test_rib_best_announce(self):
        event = IOEvent.create(
            "R1",
            IOKind.RIB_UPDATE,
            3.0,
            protocol="bgp",
            prefix=P,
            action=RouteAction.ANNOUNCE,
            attrs={"via": "R2", "local_pref": 30, "next_hop": "x", "as_path": ""},
        )
        parsed = _round_trip(event)
        assert parsed.kind is IOKind.RIB_UPDATE
        assert parsed.attr("via") == "R2"

    def test_rib_removed(self):
        event = IOEvent.create(
            "R1",
            IOKind.RIB_UPDATE,
            3.0,
            protocol="bgp",
            prefix=P,
            action=RouteAction.WITHDRAW,
        )
        parsed = _round_trip(event)
        assert parsed.action is RouteAction.WITHDRAW

    def test_fib_add_and_del(self):
        add = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            4.0,
            protocol="ibgp",
            prefix=P,
            action=RouteAction.ANNOUNCE,
            attrs={
                "next_hop_router": "R2",
                "out_interface": "eth0",
                "discard": False,
            },
        )
        parsed = _round_trip(add)
        assert parsed.kind is IOKind.FIB_UPDATE
        assert parsed.attr("next_hop_router") == "R2"
        assert parsed.protocol == "ibgp"
        removal = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            5.0,
            protocol="ibgp",
            prefix=P,
            action=RouteAction.WITHDRAW,
        )
        parsed_del = _round_trip(removal)
        assert parsed_del.action is RouteAction.WITHDRAW

    def test_local_delivery_fib(self):
        event = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            4.0,
            protocol="connected",
            prefix=P,
            action=RouteAction.ANNOUNCE,
            attrs={"next_hop_router": None, "out_interface": "lo0"},
        )
        parsed = _round_trip(event)
        assert parsed.attr("next_hop_router") is None

    def test_hardware(self):
        event = IOEvent.create(
            "R2",
            IOKind.HARDWARE_STATUS,
            6.0,
            attrs={"link": "eth3", "status": "down"},
        )
        parsed = _round_trip(event)
        assert parsed.kind is IOKind.HARDWARE_STATUS
        assert parsed.attr("link") == "eth3"
        assert parsed.attr("status") == "down"

    def test_config(self):
        event = IOEvent.create(
            "R2",
            IOKind.CONFIG_CHANGE,
            7.0,
            attrs={"change_id": 42, "description": "set uplink local-pref to 10"},
        )
        parsed = _round_trip(event)
        assert parsed.kind is IOKind.CONFIG_CHANGE
        assert parsed.attr("change_id") == 42
        assert "local-pref" in parsed.attr("description")


class TestParserRobustness:
    def test_blank_and_comment_lines_skipped(self):
        parser = FrrLogParser()
        events = parser.parse("\n# a comment\n\n")
        assert events == []
        assert parser.lines_skipped >= 1

    def test_garbage_raises(self):
        with pytest.raises(FrrParseError):
            FrrLogParser().parse_line("1.0 R1 bgpd: gibberish")

    def test_unsupported_events_render_as_comments(self):
        lsa = IOEvent.create(
            "R1",
            IOKind.ROUTE_SEND,
            1.0,
            protocol="ospf",
            peer="R2",
            action=RouteAction.ANNOUNCE,
            attrs={"lsa_origin": "R1", "lsa_seq": 3},
        )
        line = render_event(lsa)
        assert line.startswith("#")
        assert FrrLogParser().parse_line(line) is None


class TestEndToEndThroughLogs:
    def test_hbg_from_textual_logs_finds_fig2_root_cause(self, fast_delays):
        """Full fidelity check: simulate Fig. 2a, serialise the capture
        to FRR-style text, parse it back, rebuild the HBG from the
        parsed events, and root-cause the violation — identical verdict
        to the in-memory pipeline."""
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig2a()
        bgp_events = [
            e
            for e in net.collector.all_events()
            if e.protocol in ("bgp", "ibgp", "ebgp", "connected", "static")
            or e.kind in (IOKind.CONFIG_CHANGE, IOKind.HARDWARE_STATUS)
        ]
        text = render_events(bgp_events)
        parsed = FrrLogParser().parse(text)
        assert len(parsed) == len(bgp_events)

        graph = InferenceEngine().build_graph(parsed)
        config = [
            e
            for e in parsed
            if e.kind is IOKind.CONFIG_CHANGE and e.router == "R2"
        ][0]
        fibs = [
            e
            for e in parsed
            if e.kind is IOKind.FIB_UPDATE
            and e.router == "R1"
            and e.prefix == P
            and e.timestamp > config.timestamp
        ]
        assert fibs
        target = max(fibs, key=lambda e: e.timestamp)
        result = ProvenanceTracer(graph).trace(target.event_id)
        root_descriptions = [e.describe() for e in result.root_causes]
        assert any("config change" in d for d in root_descriptions)
        assert scenario.change.change_id in result.config_change_ids()
