"""Tests for header-space equivalence classes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import IPV4_MAX, Prefix, parse_ip
from repro.scenarios.generators import planted_ec_snapshot
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.headerspace import (
    TransferFunction,
    _interval_to_prefixes,
    class_of,
    compression_ratio,
    compute_equivalence_classes,
)

P = Prefix.parse("203.0.113.0/24")


def _entry(router, prefix, nh, discard=False):
    return SnapshotEntry(router, prefix, nh, "eth0", "ibgp", discard, 0, 1.0)


class TestIntervalToPrefixes:
    def test_exact_prefix(self):
        result = _interval_to_prefixes(P.first_address(), P.last_address())
        assert result == [P]

    def test_single_address(self):
        addr = parse_ip("10.0.0.5")
        assert _interval_to_prefixes(addr, addr) == [Prefix(addr, 32)]

    def test_unaligned_interval(self):
        # [10.0.0.1, 10.0.0.2] = /32 + /32
        start = parse_ip("10.0.0.1")
        result = _interval_to_prefixes(start, start + 1)
        assert result == [Prefix(start, 32), Prefix(start + 1, 32)]

    def test_full_space(self):
        assert _interval_to_prefixes(0, IPV4_MAX) == [Prefix.default()]

    @given(
        st.integers(min_value=0, max_value=IPV4_MAX),
        st.integers(min_value=0, max_value=1 << 16),
    )
    @settings(max_examples=50)
    def test_cover_is_exact_partition(self, start, length):
        end = min(start + length, IPV4_MAX)
        prefixes = _interval_to_prefixes(start, end)
        total = sum(p.num_addresses() for p in prefixes)
        assert total == end - start + 1
        assert prefixes[0].first_address() == start
        assert prefixes[-1].last_address() == end
        for a, b in zip(prefixes, prefixes[1:]):
            assert a.last_address() + 1 == b.first_address()


class TestTransferFunction:
    def test_apply(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, "R2"))
        tf = TransferFunction("R1", snapshot)
        assert tf.apply(P.first_address()) == ("R2", False)
        assert tf.apply(parse_ip("10.0.0.1")) == (None, False)

    def test_discard(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, None, discard=True))
        assert TransferFunction("R1", snapshot).apply(P.first_address()) == (
            None,
            True,
        )


class TestEquivalenceClasses:
    def test_single_prefix_single_class(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, "R2"))
        classes = compute_equivalence_classes(snapshot)
        assert len(classes) == 1
        assert classes[0].contains(P.first_address())
        assert classes[0].size() == P.num_addresses()

    def test_identical_prefixes_merge(self):
        snapshot = DataPlaneSnapshot()
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")  # adjacent, same behaviour
        for prefix in (a, b):
            snapshot.install(_entry("R1", prefix, "R2"))
        classes = compute_equivalence_classes(snapshot)
        assert len(classes) == 1
        # Adjacent intervals coalesce.
        assert classes[0].intervals == (
            (a.first_address(), b.last_address()),
        )

    def test_different_behaviour_split(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", Prefix.parse("10.0.0.0/24"), "R2"))
        snapshot.install(_entry("R1", Prefix.parse("10.0.1.0/24"), "R3"))
        assert len(compute_equivalence_classes(snapshot)) == 2

    def test_more_specific_override_creates_class(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", Prefix.parse("10.0.0.0/16"), "R2"))
        snapshot.install(_entry("R1", Prefix.parse("10.0.5.0/24"), "R3"))
        classes = compute_equivalence_classes(snapshot)
        assert len(classes) == 2
        inner = class_of(classes, parse_ip("10.0.5.1"))
        outer = class_of(classes, parse_ip("10.0.9.1"))
        assert inner is not outer

    def test_multi_router_signature(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, "R2"))
        snapshot.install(_entry("R2", P, "Ext2"))
        classes = compute_equivalence_classes(snapshot)
        assert len(classes) == 1
        behavior = dict(classes[0].behavior)
        assert behavior["R1"] == ("R2", False)
        assert behavior["R2"] == ("Ext2", False)

    def test_include_empty_adds_background_class(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, "R2"))
        without = compute_equivalence_classes(snapshot)
        with_empty = compute_equivalence_classes(snapshot, include_empty=True)
        assert len(with_empty) == len(without) + 1

    def test_planted_classes_recovered(self):
        """The §6 experiment: many prefixes, few planted classes."""
        for planted in (3, 7, 14):
            snapshot, _assignment = planted_ec_snapshot(
                num_prefixes=200, num_classes=planted, num_routers=6, seed=1
            )
            classes = compute_equivalence_classes(snapshot)
            assert len(classes) == planted

    def test_planted_assignment_respected(self):
        snapshot, assignment = planted_ec_snapshot(
            num_prefixes=50, num_classes=5, num_routers=4, seed=2
        )
        classes = compute_equivalence_classes(snapshot)
        base = parse_ip("20.0.0.0")
        # Two prefixes share a class iff their planted ids match.
        for i in range(0, 50, 7):
            for j in range(0, 50, 11):
                ci = class_of(classes, base + i * 256)
                cj = class_of(classes, base + j * 256)
                assert (ci is cj) == (assignment[i] == assignment[j])

    def test_compression_ratio(self):
        snapshot, _ = planted_ec_snapshot(
            num_prefixes=100, num_classes=4, num_routers=4, seed=0
        )
        classes = compute_equivalence_classes(snapshot)
        assert compression_ratio(classes, 100) == pytest.approx(25.0)

    def test_covering_prefixes_compact(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", Prefix.parse("10.0.0.0/25"), "R2"))
        snapshot.install(_entry("R1", Prefix.parse("10.0.0.128/25"), "R2"))
        classes = compute_equivalence_classes(snapshot)
        assert classes[0].covering_prefixes() == [Prefix.parse("10.0.0.0/24")]

    def test_class_of_miss(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", P, "R2"))
        classes = compute_equivalence_classes(snapshot)
        assert class_of(classes, parse_ip("10.0.0.1")) is None

    def test_router_subset(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(_entry("R1", Prefix.parse("10.0.0.0/24"), "R2"))
        snapshot.install(_entry("R2", Prefix.parse("10.0.0.0/24"), "R3"))
        snapshot.install(_entry("R1", Prefix.parse("10.0.1.0/24"), "R2"))
        snapshot.install(_entry("R2", Prefix.parse("10.0.1.0/24"), "R9"))
        all_routers = compute_equivalence_classes(snapshot)
        r1_only = compute_equivalence_classes(snapshot, routers=["R1"])
        assert len(all_routers) == 2  # R2's behaviour differs
        assert len(r1_only) == 1  # identical seen from R1 alone
