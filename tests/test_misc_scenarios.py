"""Additional cross-cutting scenarios: mixed vendors, batched log
shipping, per-router delay profiles, and larger-topology stress."""

import pytest

from repro.capture.io_events import IOKind
from repro.capture.logger import BufferingSink, RouterLogger
from repro.net.simulator import DelayModel
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)
from repro.scenarios.paper_net import P, build_paper_network


class TestMixedVendors:
    def test_paper_network_with_mixed_vendors_converges(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.topology.router("R1").vendor = "juniper"
        # Rebuild runtimes so the vendor change takes effect.
        from repro.protocols.router import RouterRuntime

        net.runtimes = {r.name: RouterRuntime(r, net) for r in net.topology}
        net.start()
        net.announce_prefix("Ext1", P)
        net.announce_prefix("Ext2", P)
        net.run(10)
        # Policy outcome unchanged: LP 30 beats 20 under both vendors.
        for router in ("R1", "R3"):
            path, outcome = net.trace_path(router, P.first_address())
            assert outcome == "delivered"
            assert path[-1] == "Ext2"

    def test_profiles_attached_per_router(self, fast_delays):
        net = build_paper_network(seed=0, delays=fast_delays)
        net.topology.router("R1").vendor = "juniper"
        from repro.protocols.router import RouterRuntime

        net.runtimes = {r.name: RouterRuntime(r, net) for r in net.topology}
        assert net.runtime("R1").profile.name == "juniper"
        assert net.runtime("R2").profile.name == "cisco"


class TestPerRouterDelays:
    def test_slow_router_installs_later(self):
        slow = DelayModel(
            fib_install=0.5,
            rib_update=0.0005,
            advertisement=0.001,
            config_to_reconfig=0.05,
            spf_compute=0.001,
        )
        fast = DelayModel(
            fib_install=0.001,
            rib_update=0.0005,
            advertisement=0.001,
            config_to_reconfig=0.05,
            spf_compute=0.001,
        )
        net = build_paper_network(
            seed=0, delays=fast, clock_skews=None
        )
        net._per_router_delays = {"R3": slow}
        from repro.protocols.router import RouterRuntime

        net.runtimes = {r.name: RouterRuntime(r, net) for r in net.topology}
        net.start()
        net.announce_prefix("Ext1", P)
        net.run(10)
        r1_fib = net.collector.query(
            router="R1", kind=IOKind.FIB_UPDATE, prefix=P
        )
        r3_fib = net.collector.query(
            router="R3", kind=IOKind.FIB_UPDATE, prefix=P
        )
        assert r1_fib and r3_fib
        assert min(e.timestamp for e in r3_fib) > min(
            e.timestamp for e in r1_fib
        ) + 0.3


class TestBatchedLogShipping:
    def test_buffered_sink_hides_events_until_flush(self):
        """Routers shipping logs in batches create exactly the
        incomplete-collector windows the consistency check guards."""
        from repro.capture.collector import Collector

        collector = Collector()
        sink = BufferingSink(collector.ingest)
        logger = RouterLogger("R9", sink)
        logger.log(IOKind.FIB_UPDATE, 1.0, prefix=P)
        logger.log(IOKind.FIB_UPDATE, 2.0, prefix=P)
        assert len(collector) == 0
        assert sink.pending() == 2
        assert len(list(sink.peek())) == 2
        assert sink.flush() == 2
        assert len(collector) == 2
        assert sink.flush() == 0  # idempotent


class TestLargerTopologies:
    def test_grid_network_with_churn_converges_and_verifies(self):
        net, specs = build_random_network(
            12, uplinks=3, seed=51, extra_edge_fraction=0.8
        )
        net.start()
        prefixes = external_prefixes(5)
        for prefix in prefixes:
            for spec in specs:
                net.announce_prefix(spec.external, prefix)
        churn_workload(net, specs, prefixes, events=10, start=5.0, seed=51)
        net.run(90)
        assert net.sim.pending() == 0 or net.sim.peek_time() is None
        # Everyone reaches every live prefix via the most-preferred
        # announcing uplink; at minimum: no loops anywhere.
        from repro.snapshot.base import DataPlaneSnapshot
        from repro.verify.policy import LoopFreedomPolicy
        from repro.verify.verifier import DataPlaneVerifier

        snapshot = DataPlaneSnapshot.from_live_network(net)
        verifier = DataPlaneVerifier(
            net.topology, [LoopFreedomPolicy(prefixes=prefixes)]
        )
        assert verifier.verify(snapshot).ok

    def test_consistent_snapshot_scales_to_12_routers(self):
        from repro.snapshot.base import VerifierView
        from repro.snapshot.consistent import ConsistentSnapshotter

        net, specs = build_random_network(12, uplinks=2, seed=52)
        net.start()
        for prefix in external_prefixes(3):
            net.announce_prefix(specs[0].external, prefix)
        net.run(60)
        snapshotter = ConsistentSnapshotter(
            VerifierView(net.collector),
            internal_routers=net.topology.internal_routers(),
        )
        snapshot, report = snapshotter.snapshot(net.sim.now)
        assert report.consistent
        assert snapshot.routers()


class TestSkewPlusLag:
    def test_consistency_check_robust_to_combined_skew_and_lag(self, fast_delays):
        """Clock skew shifts logged timestamps while delivery lag
        hides events; the checker must still converge to consistency
        once everything has arrived."""
        from repro.hbr.inference import InferenceConfig, InferenceEngine
        from repro.snapshot.base import VerifierView
        from repro.snapshot.consistent import ConsistentSnapshotter

        net = build_paper_network(
            seed=0,
            delays=fast_delays,
            clock_skews={"R1": 0.02, "R2": -0.02, "R3": 0.01},
        )
        net.start()
        net.announce_prefix("Ext1", P)
        net.announce_prefix("Ext2", P)
        net.run(10)
        view = VerifierView(net.collector, lags={"R2": 0.2})
        engine = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.05)
        )
        snapshotter = ConsistentSnapshotter(
            view, internal_routers=("R1", "R2", "R3"), engine=engine
        )
        snapshot, report, when = snapshotter.wait_until_consistent(
            net.sim.now, net.sim.now + 2.0, prefix=P
        )
        assert report.consistent
        assert snapshot is not None
        path, outcome = snapshot.trace("R3", P.first_address())
        assert outcome == "delivered"
