"""Tests for sharded HBG construction (repro.hbr.sharded)."""

import pytest

from repro import obs
from repro.hbr import sharded
from repro.hbr.inference import InferenceEngine
from repro.hbr.sharded import build_sharded, shard_routers
from repro.scenarios.fig2 import Fig2Scenario


@pytest.fixture
def fig2_events():
    net = Fig2Scenario(seed=7).run_fig2a()
    return net.collector.all_events()


class TestShardRouters:
    def test_round_robin_over_sorted_names(self):
        shards = shard_routers(["R3", "R1", "R2", "R4"], workers=2)
        assert shards == [["R1", "R3"], ["R2", "R4"]]

    def test_assignment_ignores_input_order(self):
        routers = ["R5", "R2", "R9", "R1", "R7"]
        forward = shard_routers(routers, workers=3)
        backward = shard_routers(list(reversed(routers)), workers=3)
        assert forward == backward

    def test_more_workers_than_routers_drops_empty_shards(self):
        shards = shard_routers(["R1", "R2"], workers=8)
        assert shards == [["R1"], ["R2"]]

    def test_workers_floor_is_one(self):
        assert shard_routers(["R1", "R2"], workers=0) == [["R1", "R2"]]

    def test_every_router_lands_in_exactly_one_shard(self):
        routers = [f"R{i}" for i in range(17)]
        shards = shard_routers(routers, workers=4)
        flat = [r for shard in shards for r in shard]
        assert sorted(flat) == sorted(routers)


class TestShardedBuild:
    def test_byte_identical_to_serial(self, fig2_events):
        engine = InferenceEngine()
        serial = engine.build_graph(fig2_events)
        for workers in (2, 3):
            parallel = engine.build_graph(fig2_events, parallel=workers)
            assert parallel.to_records() == serial.to_records()

    def test_workers_exceeding_router_count(self, fig2_events):
        engine = InferenceEngine()
        serial = engine.build_graph(fig2_events)
        parallel = engine.build_graph(fig2_events, parallel=64)
        assert parallel.to_records() == serial.to_records()

    def test_parallel_one_takes_the_serial_path(self, fig2_events):
        engine = InferenceEngine()
        serial = engine.build_graph(fig2_events)
        also_serial = engine.build_graph(fig2_events, parallel=1)
        assert also_serial.to_records() == serial.to_records()

    def test_in_process_fallback_is_identical(
        self, fig2_events, monkeypatch
    ):
        """Platforms without fork run the shards sequentially in
        process; the merge must not care which way the records came."""
        engine = InferenceEngine()
        forked = engine.build_graph(fig2_events, parallel=2)
        monkeypatch.setattr(sharded, "_fork_context", lambda: None)
        inline = engine.build_graph(fig2_events, parallel=2)
        assert inline.to_records() == forked.to_records()

    def test_obs_replay_matches_serial_counters(self, fig2_events):
        engine = InferenceEngine()
        registry, _tracer = obs.enable()
        try:
            graph = build_sharded(engine, list(fig2_events), workers=2)
            edges = registry.counter("inference.hbg_edges_inferred")
            assert edges.value == graph.edge_count()
            assert (
                registry.counter("inference.sharded_builds_total").value
                == 1
            )
            assert registry.gauge("inference.shard_count").value >= 1
        finally:
            obs.disable()

    def test_rule_timings_survive_the_fork(self, fig2_events):
        """Per-rule inference timings must reach the parent registry.

        Workers may not touch the forked registry copy (CONC001), so
        shards return timing aggregates that the parent replays into
        `inference.rule_invocations_total` / `..rule_seconds_total`.
        The invocation counts must equal the serial build's
        `inference.rule_seconds` histogram sample counts — same
        events, same rules, same number of rule invocations.
        """
        events = list(fig2_events)
        registry, _tracer = obs.enable()
        try:
            InferenceEngine().build_graph(events)
            serial_counts = {
                h.labels: h.count
                for h in registry.histograms()
                if h.name == "inference.rule_seconds"
            }
        finally:
            obs.disable()
        assert serial_counts, "serial build recorded no rule timings"

        registry, _tracer = obs.enable()
        try:
            build_sharded(InferenceEngine(), events, workers=2)
            sharded_counts = {
                c.labels: c.value
                for c in registry.counters()
                if c.name == "inference.rule_invocations_total"
            }
            sharded_seconds = {
                c.labels: c.value
                for c in registry.counters()
                if c.name == "inference.rule_seconds_total"
            }
        finally:
            obs.disable()
        assert sharded_counts == serial_counts
        assert set(sharded_seconds) == set(serial_counts)
        assert all(v >= 0 for v in sharded_seconds.values())

    def test_infer_shard_timings_disabled_without_registry(
        self, fig2_events
    ):
        engine = InferenceEngine()
        ordered = list(fig2_events)
        routers = sorted({e.router for e in ordered})
        _records, timings = sharded.infer_shard(engine, ordered, routers)
        assert timings == {}
