"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.net.addr import IPV4_MAX, Prefix
from repro.protocols.bgp_decision import VendorProfile, best_path, rank_paths
from repro.protocols.dvp import INFINITY, DistanceVectorProcess
from repro.protocols.routes import BgpRoute, Origin
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.headerspace import compute_equivalence_classes

P = Prefix.parse("203.0.113.0/24")

# -- strategies -----------------------------------------------------------

route_strategy = st.builds(
    BgpRoute,
    prefix=st.just(P),
    next_hop=st.integers(min_value=1, max_value=1000),
    as_path=st.lists(
        st.integers(min_value=64512, max_value=64600), max_size=4
    ).map(tuple),
    local_pref=st.integers(min_value=0, max_value=300),
    med=st.integers(min_value=0, max_value=100),
    origin=st.sampled_from(list(Origin)),
    weight=st.integers(min_value=0, max_value=100),
    peer_router_id=st.integers(min_value=1, max_value=100),
    peer_address=st.integers(min_value=1, max_value=1000),
    ebgp_learned=st.booleans(),
    received_at=st.floats(min_value=0, max_value=100, allow_nan=False),
    igp_metric=st.integers(min_value=0, max_value=50),
)


class TestDecisionProperties:
    @given(st.lists(route_strategy, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_best_is_not_beaten_by_any_candidate(self, routes):
        """No candidate strictly beats the chosen best path."""
        profile = VendorProfile.cisco()
        best = best_path(routes, profile)
        assert best is not None
        for candidate in routes:
            # candidate better than best would contradict the scan.
            if profile.compare(candidate, best) < 0:
                # Only possible via intransitivity (vendor quirks make
                # the relation non-total-order in principle); the
                # linear scan still guarantees best beat the candidates
                # it was compared against in order.  Check determinism:
                assert best_path(routes, profile) == best

    @given(st.lists(route_strategy, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_deterministic_profile_is_order_independent(self, routes):
        profile = VendorProfile.cisco().deterministic()
        forward = best_path(routes, profile)
        backward = best_path(list(reversed(routes)), profile)
        shuffled = list(routes)
        random.Random(1).shuffle(shuffled)
        third = best_path(shuffled, profile)
        # With arrival-order steps removed, ties can still exist on
        # fully identical rank vectors; equal-rank winners are
        # acceptable as long as the profile judges them equivalent.
        assert profile.compare(forward, backward) == 0
        assert profile.compare(forward, third) == 0

    @given(st.lists(route_strategy, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_rank_paths_head_is_best(self, routes):
        profile = VendorProfile.juniper()
        ranked = rank_paths(routes, profile)
        assert len(ranked) == len(routes)
        best = best_path(routes, profile)
        assert profile.compare(ranked[0], best) == 0

    @given(st.lists(route_strategy, min_size=2, max_size=6))
    @settings(max_examples=100)
    def test_compare_antisymmetric_on_decided_pairs(self, routes):
        profile = VendorProfile.cisco()
        for a in routes:
            for b in routes:
                forward = profile.compare(a, b)
                backward = profile.compare(b, a)
                if forward != 0:
                    assert backward == -forward


class TestDistanceVectorProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["R1", "R2", "R3"]),
                st.integers(min_value=0, max_value=INFINITY),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_metric_never_exceeds_infinity(self, updates):
        proc = DistanceVectorProcess("R0")
        for neighbor, metric in updates:
            proc.receive(neighbor, P, metric)
        route = proc.get(P)
        if route is not None:
            assert 0 <= route.metric <= INFINITY

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["R1", "R2", "R3"]),
                st.integers(min_value=0, max_value=INFINITY - 2),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_table_holds_minimum_over_current_offers(self, updates):
        """After a sequence of updates, the table entry is never worse
        than the latest offer from its own successor."""
        proc = DistanceVectorProcess("R0")
        latest = {}
        for neighbor, metric in updates:
            proc.receive(neighbor, P, metric)
            latest[neighbor] = metric + 1
        route = proc.get(P)
        assert route is not None
        assert route.metric == latest[route.via_router]
        # And no *current* offer is strictly better than the table.
        # (Stale better offers may have been displaced by successor
        # updates; DV convergence fixes that on the next exchange.)
        assert route.metric <= max(latest.values())

    @given(st.sampled_from(["R1", "R2", "R3"]))
    def test_split_horizon_always_poisons_successor(self, neighbor):
        proc = DistanceVectorProcess("R0")
        proc.receive(neighbor, P, 3)
        assert proc.advertised_metric(P, neighbor) == INFINITY


class TestEquivalenceClassProperties:
    @st.composite
    def _snapshot(draw):
        snapshot = DataPlaneSnapshot()
        entries = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["R0", "R1", "R2"]),
                    st.integers(min_value=0, max_value=255),
                    st.integers(min_value=20, max_value=28),
                    st.sampled_from(["R0", "R1", "R2", None]),
                ),
                min_size=1,
                max_size=15,
            )
        )
        for router, octet, length, nh in entries:
            prefix = Prefix(10 << 24 | octet << 16, length)
            snapshot.install(
                SnapshotEntry(
                    router, prefix, nh, "eth0", "ibgp", nh is None, 0, 1.0
                )
            )
        return snapshot

    @given(_snapshot())
    @settings(max_examples=60)
    def test_classes_are_disjoint(self, snapshot):
        classes = compute_equivalence_classes(snapshot)
        seen = []
        for cls in classes:
            for start, end in cls.intervals:
                assert 0 <= start <= end <= IPV4_MAX
                for other_start, other_end in seen:
                    assert end < other_start or start > other_end
                seen.append((start, end))

    @given(_snapshot())
    @settings(max_examples=60)
    def test_classes_cover_all_fib_prefixes(self, snapshot):
        classes = compute_equivalence_classes(snapshot)
        for prefix in snapshot.all_prefixes():
            address = prefix.first_address()
            assert any(cls.contains(address) for cls in classes)

    @given(_snapshot())
    @settings(max_examples=60)
    def test_same_class_same_behavior(self, snapshot):
        classes = compute_equivalence_classes(snapshot)
        for cls in classes:
            # Probe two addresses inside the class: identical actions.
            probes = [cls.intervals[0][0], cls.intervals[-1][1]]
            for router, action in cls.behavior:
                for probe in probes:
                    entry = snapshot.lookup(router, probe)
                    if entry is None:
                        assert action == (None, False)
                    elif entry.discard:
                        assert action == (None, True)
                    else:
                        assert action == (entry.next_hop_router, False)
