# repro: lint-module=repro.hbr.flowforkok
"""CONC001 good: the worker communicates through its return value."""

import multiprocessing


def worker(item):
    return item * 2


def fan_out(items):
    context = multiprocessing.get_context("fork")
    with context.Pool(2) as pool:
        doubled = pool.map(worker, items)
    return sum(doubled)
