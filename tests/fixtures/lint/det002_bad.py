# repro: lint-module=repro.scenarios.fixture
"""Bad: process-global RNG use (DET002)."""

import random
from random import choice


def pick(items):
    random.shuffle(items)
    return choice(items)
