# repro: lint-module=repro.hbr.fixture
"""Bad: O(N) inserts and linear list membership on the hot path (PERF001)."""

from bisect import insort


def keep_sorted(history: list, value: float) -> None:
    history.insert(0, value)


def keep_sorted_bisect(history: list, value: float) -> None:
    insort(history, value)


def is_transit(router: str) -> bool:
    return router in ["r1", "r2", "r3"]
