# repro: lint-module=repro.net.flowshared
"""CONC003 subject: an ownerless module-level dict."""

SEEN = {}


def remember(key, value):
    SEEN[key] = value
