# repro: lint-module=repro.snapshot.cyc_a
"""Half of a same-layer import cycle (LAY002); see cyc_b.py."""

from repro.verify.cyc_b import beta


def alpha():
    return beta()
