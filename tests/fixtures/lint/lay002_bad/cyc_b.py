# repro: lint-module=repro.verify.cyc_b
"""Other half of the snapshot <-> verify cycle (LAY002)."""

from repro.snapshot.cyc_a import alpha


def beta():
    return alpha()
