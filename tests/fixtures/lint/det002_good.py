# repro: lint-module=repro.scenarios.fixture
"""Good: a seeded, injected RNG instance (DET002)."""

import random


def pick(items, seed: int):
    rng = random.Random(seed)
    shuffled = list(items)
    rng.shuffle(shuffled)
    return shuffled[0]
