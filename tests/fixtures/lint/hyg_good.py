# repro: lint-module=repro.analysis.fixture
"""Good counterparts for every HYG rule."""

from typing import Optional


def accumulate(item, bucket: Optional[list] = None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def guarded(fn):
    try:
        return fn()
    except Exception:
        return None


def install(entry):
    if entry is None:
        raise ValueError("entry required")
    return entry
