# repro: lint-module=repro.hbr.flowfork
"""CONC001 bad: the fork worker appends to a module global.

The write lands in the forked copy's list and evaporates at join —
the parent's ``RESULTS`` never changes.
"""

import multiprocessing

RESULTS = []


def worker(item):
    RESULTS.append(item)
    return item


def fan_out(items):
    context = multiprocessing.get_context("fork")
    with context.Pool(2) as pool:
        return pool.map(worker, items)
