# repro: lint-module=repro.hbr.fixture
"""Good: append + sort-once, set membership, keyed insert (no PERF001)."""

_TRANSIT = frozenset({"r1", "r2", "r3"})


def keep_sorted(history: list, value: float) -> None:
    history.append(value)
    history.sort()


def is_transit(router: str) -> bool:
    return router in _TRANSIT


def keyed_insert(trie, prefix, entry) -> None:
    # Single-positional-argument keyed API — not a positional
    # list.insert, so the rule stays quiet.
    trie.insert(entry)
