# repro: lint-module=repro.analysis.fixture
"""Bad: mutable default arguments (HYG001)."""


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def index(key, table={}, *, tags=set()):
    table[key] = tags
    return table
