# repro: lint-module=repro.net.fixture
"""Bad: a low layer importing a high one (LAY001)."""

from repro.cli import main


def run():
    return main(["--version"])
