# repro: lint-module=repro.hbr.fixture
"""Good: set iteration stabilised with sorted() (DET003)."""


def order_sensitive(event_ids):
    edges = []
    for event_id in sorted(set(event_ids)):
        edges.append(event_id)
    return [e for e in sorted({1, 2, 3})] + edges
