# repro: lint-module=repro.capture.collector
"""Bad: a stage entry point with no obs instrumentation (OBS001)."""


class Collector:
    def __init__(self):
        self.events = []

    def ingest(self, event):
        self.events.append(event)
