# repro: lint-module=repro.net.fixture
"""Good: wall time only via the obs-owned stopwatch (DET001)."""

from repro import obs


def timed_work() -> float:
    registry = obs.get_registry()
    watch = registry.stopwatch()
    return watch.elapsed()
