# repro: lint-module=repro.obs.flowwatch
"""A wall-clock helper under repro.obs — the sanctioned quarantine."""

import time


def elapsed_of(started: float) -> float:
    return time.time() - started
