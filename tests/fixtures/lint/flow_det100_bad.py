# repro: lint-module=repro.hbr.flowbad
"""DET100 bad: an env read two calls below a replay-critical function.

``import os`` is invisible to the syntactic DET rules — only the
whole-program taint pass can see that ``window_key`` ultimately
depends on the environment.
"""

import os


def _salt() -> str:
    return os.getenv("REPRO_SALT", "")


def window_key(router: str) -> str:
    return router + _salt()
