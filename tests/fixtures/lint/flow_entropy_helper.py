# repro: lint-module=repro.net.flowentropy
"""Cross-module DET100 sink: a uuid4 draw in the lowest layer."""

import uuid


def fresh_id() -> str:
    return str(uuid.uuid4())
