# repro: lint-module=repro.analysis.flowserveok
"""CONC002 good: the handler-thread write is lock-serialized."""

import threading
from http.server import BaseHTTPRequestHandler

HITS = []
_HITS_LOCK = threading.Lock()


class MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        with _HITS_LOCK:
            HITS.append(self.path)
