# repro: lint-module=repro.hbr.flowgood
"""DET100 good: timing through the obs sanitizer, rng via a parameter.

``elapsed_of`` touches the wall clock internally, but it lives under
``repro.obs`` so its taint is absorbed there; ``rng`` is an opaque
explicit-RNG parameter, which is the blessed randomness idiom.
"""

from repro.obs.flowwatch import elapsed_of


def timed_build(started: float) -> float:
    return elapsed_of(started)


def pick(rng, items):
    return items[rng.randrange(len(items))]
