# repro: lint-module=repro.hbr.flowstage
"""Second pipeline stage writing into the same shared dict."""

from repro.net.flowshared import remember


def link_event(event_id):
    remember(event_id, "linked")
