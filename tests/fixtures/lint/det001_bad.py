# repro: lint-module=repro.net.fixture
"""Bad: wall-clock import inside a deterministic layer (DET001)."""

import time


def stamp() -> float:
    return time.time()
