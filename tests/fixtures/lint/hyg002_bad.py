# repro: lint-module=repro.analysis.fixture
"""Bad: bare except (HYG002)."""


def swallow(fn):
    try:
        return fn()
    except:
        return None
