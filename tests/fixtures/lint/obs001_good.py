# repro: lint-module=repro.capture.collector
"""Good: the stage entry point records a metric (OBS001)."""

from repro import obs


class Collector:
    def __init__(self):
        self.events = []

    def ingest(self, event):
        registry = obs.get_registry()
        self.events.append(event)
        registry.counter("capture.events_total").inc()
