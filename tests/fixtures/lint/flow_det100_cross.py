# repro: lint-module=repro.snapshot.flowcross
"""DET100 bad: the tainted helper lives in another module entirely."""

from repro.net.flowentropy import fresh_id


def snapshot_id() -> str:
    return fresh_id()
