# repro: lint-module=repro.net.fixture
"""A DET001 violation silenced by an inline pragma."""

import time  # repro: lint-ignore[DET001] -- fixture demonstrating pragmas


def stamp() -> float:
    return time.time()
