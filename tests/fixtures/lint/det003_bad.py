# repro: lint-module=repro.hbr.fixture
"""Bad: unsorted set iteration in ordering-sensitive code (DET003)."""


def order_sensitive(event_ids):
    edges = []
    for event_id in set(event_ids):
        edges.append(event_id)
    return [e for e in {1, 2, 3}] + edges
