# repro: lint-module=repro.capture.collector
"""Bad: metrics instrumentation alone must not satisfy a TRACE_SITES
entry — the function never touches the flight recorder (OBS001)."""

from repro import obs


class Collector:
    def __init__(self):
        self.events = []

    def ingest(self, event):
        registry = obs.get_registry()
        self.events.append(event)
        registry.counter("capture.events_total").inc()
