# repro: lint-module=repro.analysis.fixture
"""Bad: load-bearing assert in shipped source (HYG003)."""


def install(entry):
    assert entry is not None, "entry required"
    return entry
