# repro: lint-module=repro.cli
"""Good: a high layer importing low ones (LAY001)."""

from repro import obs
from repro.net.addr import Prefix


def run():
    obs.get_registry()
    return Prefix
