# repro: lint-module=repro.analysis.flowserve
"""CONC002 bad: a handler thread writes a module global with no lock."""

from http.server import BaseHTTPRequestHandler

HITS = []


class MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        HITS.append(self.path)
