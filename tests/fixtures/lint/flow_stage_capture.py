# repro: lint-module=repro.capture.flowstage
"""First pipeline stage writing into the shared dict."""

from repro.net.flowshared import remember


def record_event(event_id):
    remember(event_id, "captured")
