"""Tests for the §5 consistent snapshot algorithm — the heart of the
paper's verification story."""

import pytest

from repro.hbr.inference import InferenceEngine
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.fig5 import Fig5Scenario
from repro.scenarios.paper_net import P, paper_policy
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.snapshot.naive import NaiveSnapshotter
from repro.verify.policy import LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

INTERNAL = ("R1", "R2", "R3")


def _snapshotter(net, lags=None):
    view = VerifierView(net.collector, lags=lags or {})
    return ConsistentSnapshotter(view, internal_routers=INTERNAL)


class TestFig1c:
    """The paper's motivating snapshot inconsistency."""

    def _run(self, fast_delays, lags):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        return scenario, net, VerifierView(net.collector, lags=lags)

    def test_naive_snapshot_sees_phantom_loop(self, fast_delays):
        scenario, net, view = self._run(fast_delays, {"R2": 0.5})
        verifier = DataPlaneVerifier(
            net.topology, [LoopFreedomPolicy(prefixes=[P])]
        )
        naive = NaiveSnapshotter(view)
        phantom_found = False
        t = scenario.t_r2_route
        while t < scenario.t_converged + 0.2:
            result = verifier.verify(naive.snapshot(t))
            if not result.ok:
                phantom_found = True
                assert any(
                    v.policy == "loop-freedom" for v in result.violations
                )
                break
            t += 0.002
        assert phantom_found, "expected the Fig. 1c phantom loop"

    def test_consistent_snapshotter_refuses_inconsistent_cut(self, fast_delays):
        scenario, net, view = self._run(fast_delays, {"R2": 0.5})
        snapshotter = ConsistentSnapshotter(view, internal_routers=INTERNAL)
        verifier = DataPlaneVerifier(
            net.topology, [LoopFreedomPolicy(prefixes=[P])]
        )
        t = scenario.t_r2_route
        false_alarms = 0
        while t < scenario.t_converged + 0.2:
            snapshot, report = snapshotter.snapshot(t, prefix=P)
            if report.consistent:
                result = verifier.verify(snapshot)
                if not result.ok:
                    false_alarms += 1
            t += 0.002
        assert false_alarms == 0

    def test_missing_router_identified(self, fast_delays):
        scenario, net, view = self._run(fast_delays, {"R2": 0.5})
        snapshotter = ConsistentSnapshotter(view, internal_routers=INTERNAL)
        # Probe the window where R1/R3 have reported but R2 lags.
        named_r2 = False
        only_r2_somewhere = False
        t = scenario.t_r2_route
        while t < scenario.t_converged + 0.2:
            _snapshot, report = snapshotter.snapshot(t, prefix=P)
            if not report.consistent:
                if "R2" in report.missing_routers:
                    named_r2 = True
                if report.missing_routers == {"R2"}:
                    # Once genuinely-in-flight messages have landed,
                    # only the laggard R2 remains named.
                    only_r2_somewhere = True
                    assert any("R2" in reason for reason in report.reasons)
            t += 0.002
        assert named_r2
        assert only_r2_somewhere

    def test_wait_until_consistent_converges(self, fast_delays):
        scenario, net, view = self._run(fast_delays, {"R2": 0.5})
        snapshotter = ConsistentSnapshotter(view, internal_routers=INTERNAL)
        start = scenario.t_converged - 0.45  # inside R2's lag window
        snapshot, report, when = snapshotter.wait_until_consistent(
            start, start + 2.0, step=0.05, prefix=P
        )
        assert report.consistent and snapshot is not None
        assert when >= start

    def test_wait_deadline_exceeded_returns_none(self, fast_delays):
        scenario, net, view = self._run(fast_delays, {"R2": 30.0})
        snapshotter = ConsistentSnapshotter(view, internal_routers=INTERNAL)
        start = scenario.t_converged
        snapshot, report, _when = snapshotter.wait_until_consistent(
            start, start + 0.3, step=0.1, prefix=P
        )
        assert snapshot is None
        assert not report.consistent
        assert "R2" in report.missing_routers


class TestFig5Punchline:
    def test_r3_only_snapshot_detected_as_inconsistent(self):
        """§7: 'if it only sees the new FIB from R3, the verifier will
        conclude that the path is R1-R2-P ... Using the HBG, it can
        catch this inconsistency.'"""
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        # R3's logs arrive promptly; R1's and R2's lag behind.
        view = VerifierView(net.collector, lags={"R1": 5.0, "R2": 5.0})
        snapshotter = ConsistentSnapshotter(view, internal_routers=INTERNAL)
        # Pick an instant just after R3 installed its new FIB.
        from repro.capture.io_events import IOKind

        r3_fib = [
            e
            for e in net.collector.query(
                router="R3", kind=IOKind.FIB_UPDATE, prefix=P
            )
            if e.timestamp > scenario.t_change
        ]
        t = max(e.timestamp for e in r3_fib) + 0.01
        _snapshot, report = snapshotter.snapshot(t, prefix=P)
        assert not report.consistent
        assert "R1" in report.missing_routers

    def test_full_logs_are_consistent(self):
        scenario = Fig5Scenario(seed=0)
        net = scenario.run_localpref_change()
        snapshotter = _snapshotter(net)
        snapshot, report = snapshotter.snapshot(net.sim.now, prefix=P)
        assert report.consistent
        # Converged state: everyone exits via R1.
        path, outcome = snapshot.trace("R3", P.first_address())
        assert outcome == "delivered"
        assert "Ext1" in path


class TestQuiescentConsistency:
    def test_quiescent_snapshot_always_consistent(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshotter = _snapshotter(net)
        snapshot, report = snapshotter.snapshot(net.sim.now)
        assert report.consistent
        assert report.missing_routers == set()

    def test_check_scoped_to_prefix(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshotter = _snapshotter(net)
        other = P.supernet()
        _snapshot, report = snapshotter.snapshot(net.sim.now, prefix=other)
        assert report.consistent
        assert report.steps == 0  # no FIB events for that prefix

    def test_steps_counted(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshotter = _snapshotter(net)
        _snapshot, report = snapshotter.snapshot(net.sim.now, prefix=P)
        assert report.steps > 0


class TestClosureMemoization:
    """The §5 recursion re-enters the same causal subwalks from every
    FIB event that funnels through a shared ancestor; one check() now
    memoizes them and reports the saving via obs counters."""

    def test_cache_hits_surface_as_metrics(self, fast_delays):
        from repro import obs

        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshotter = _snapshotter(net)
        registry, _tracer = obs.enable()
        try:
            _snapshot, report = snapshotter.snapshot(net.sim.now)
            assert report.consistent
            hits = registry.counter("snapshot.closure_cache_hits").value
            misses = registry.counter(
                "snapshot.closure_cache_misses"
            ).value
            assert hits > 0  # shared ancestry funnels through the memo
            assert misses > 0  # first walk of each subtree still runs
        finally:
            obs.disable()

    def test_memo_reset_between_checks(self, fast_delays):
        """Memo state must not leak across check() calls: a repeat
        check on the same snapshotter yields the same verdict and the
        same hit/miss profile, not a fully-warmed cache."""
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshotter = _snapshotter(net)
        _s1, first = snapshotter.snapshot(net.sim.now)
        profile_first = (snapshotter._memo_hits, snapshotter._memo_misses)
        _s2, second = snapshotter.snapshot(net.sim.now)
        profile_second = (snapshotter._memo_hits, snapshotter._memo_misses)
        assert first.consistent == second.consistent
        assert first.steps == second.steps
        assert profile_first == profile_second
