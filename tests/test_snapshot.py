"""Tests for snapshot reconstruction, verifier views, naive snapshots."""

import pytest

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry, VerifierView
from repro.snapshot.naive import NaiveSnapshotter
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.paper_net import P


def _fib_event(router="R1", t=1.0, nh="R2", action=RouteAction.ANNOUNCE, prefix=P):
    return IOEvent.create(
        router,
        IOKind.FIB_UPDATE,
        t,
        protocol="ibgp",
        prefix=prefix,
        action=action,
        attrs={"next_hop_router": nh, "out_interface": "eth0", "discard": False},
    )


class TestSnapshotEntry:
    def test_from_event(self):
        entry = SnapshotEntry.from_event(_fib_event())
        assert entry.router == "R1"
        assert entry.next_hop_router == "R2"
        assert not entry.discard

    def test_rejects_non_fib_event(self):
        bad = IOEvent.create("R1", IOKind.RIB_UPDATE, 1.0, prefix=P)
        with pytest.raises(ValueError):
            SnapshotEntry.from_event(bad)

    def test_rejects_missing_prefix(self):
        bad = IOEvent.create("R1", IOKind.FIB_UPDATE, 1.0)
        with pytest.raises(ValueError):
            SnapshotEntry.from_event(bad)


class TestDataPlaneSnapshot:
    def test_replay_keeps_latest(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [_fib_event(t=1.0, nh="R2"), _fib_event(t=2.0, nh="R3")]
        )
        assert snapshot.entry("R1", P).next_hop_router == "R3"

    def test_replay_honors_withdraw(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [
                _fib_event(t=1.0),
                _fib_event(t=2.0, action=RouteAction.WITHDRAW),
            ]
        )
        assert snapshot.entry("R1", P) is None

    def test_replay_order_independent_of_input_order(self):
        events = [_fib_event(t=2.0, nh="R3"), _fib_event(t=1.0, nh="R2")]
        snapshot = DataPlaneSnapshot.from_fib_events(events)
        assert snapshot.entry("R1", P).next_hop_router == "R3"

    def test_lookup_lpm(self):
        wide = _fib_event(prefix=Prefix.parse("203.0.0.0/16"), nh="R9")
        narrow = _fib_event(nh="R2")
        snapshot = DataPlaneSnapshot.from_fib_events([wide, narrow])
        assert snapshot.lookup("R1", P.first_address()).next_hop_router == "R2"

    def test_trace_delivered_via_local(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(
            SnapshotEntry("R1", P, None, "eth0", "connected", False, 0, 1.0)
        )
        path, outcome = snapshot.trace("R1", P.first_address())
        assert outcome == "delivered" and path == ["R1"]

    def test_trace_loop(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [_fib_event(router="R1", nh="R2"), _fib_event(router="R2", nh="R1")]
        )
        path, outcome = snapshot.trace("R1", P.first_address())
        assert outcome == "loop"
        assert path == ["R1", "R2", "R1"]

    def test_trace_blackhole(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [_fib_event(router="R1", nh="R2"), _fib_event(router="R2", nh=None)]
        )
        # R2 has an entry pointing nowhere? next_hop_router None means
        # local delivery, so instead: R2 has NO entry.
        snapshot2 = DataPlaneSnapshot.from_fib_events(
            [_fib_event(router="R1", nh="R2")]
        )
        snapshot2.install(
            SnapshotEntry("R2", Prefix.parse("10.0.0.0/8"), None, None,
                          "connected", False, 0, 1.0)
        )
        path, outcome = snapshot2.trace("R1", P.first_address())
        assert outcome == "blackhole"
        assert path == ["R1", "R2"]

    def test_trace_into_tableless_router_is_delivered(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [_fib_event(router="R1", nh="Ext1")]
        )
        path, outcome = snapshot.trace("R1", P.first_address())
        assert outcome == "delivered" and path == ["R1", "Ext1"]

    def test_trace_discard(self):
        snapshot = DataPlaneSnapshot()
        snapshot.install(
            SnapshotEntry("R1", P, None, None, "static", True, 0, 1.0)
        )
        _path, outcome = snapshot.trace("R1", P.first_address())
        assert outcome == "discard"

    def test_from_live_network_matches_reality(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        snapshot = DataPlaneSnapshot.from_live_network(net)
        for router in ("R1", "R2", "R3"):
            live = net.runtime(router).fib.get(P)
            recon = snapshot.entry(router, P)
            assert (live is None) == (recon is None)
            if live is not None:
                assert recon.next_hop_router == live.next_hop_router

    def test_reconstruction_matches_oracle_after_convergence(self, fast_delays):
        """With zero lag and a quiescent network, replaying the log
        reproduces the live FIBs exactly."""
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        view = VerifierView(net.collector)
        reconstructed = NaiveSnapshotter(view).snapshot(net.sim.now)
        oracle = DataPlaneSnapshot.from_live_network(net)
        for router in oracle.routers():
            for entry in oracle.entries_of(router):
                recon = reconstructed.entry(router, entry.prefix)
                assert recon is not None
                assert recon.next_hop_router == entry.next_hop_router

    def test_all_prefixes(self):
        snapshot = DataPlaneSnapshot.from_fib_events(
            [_fib_event(), _fib_event(router="R2", prefix=Prefix.parse("10.0.0.0/8"))]
        )
        assert snapshot.all_prefixes() == {P, Prefix.parse("10.0.0.0/8")}


class TestVerifierView:
    def test_lag_delays_visibility(self):
        from repro.capture.collector import Collector

        collector = Collector()
        event = _fib_event(router="R2", t=1.0)
        collector.ingest(event)
        view = VerifierView(collector, lags={"R2": 0.5})
        assert view.visible_events(1.2) == []
        assert view.visible_events(1.5) == [event]

    def test_default_lag(self):
        from repro.capture.collector import Collector

        collector = Collector()
        collector.ingest(_fib_event(t=1.0))
        view = VerifierView(collector, default_lag=1.0)
        assert view.visible_events(1.5) == []
        assert len(view.visible_events(2.0)) == 1

    def test_visible_ids(self):
        from repro.capture.collector import Collector

        collector = Collector()
        event = _fib_event(t=1.0)
        collector.ingest(event)
        view = VerifierView(collector)
        assert view.visible_ids(2.0) == {event.event_id}
