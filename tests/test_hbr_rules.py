"""Tests for HBR rules and patterns."""

import pytest

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.rules import (
    EventPattern,
    HbrRule,
    default_rules,
    different_router,
    eigrp_style_rules,
    peer_symmetric,
    same_lsa,
    same_prefix,
    same_router,
)
from repro.net.addr import Prefix

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


def _event(router="R1", kind=IOKind.RIB_UPDATE, protocol="bgp", prefix=P,
           action=RouteAction.ANNOUNCE, peer=None, t=1.0, attrs=None):
    return IOEvent.create(
        router, kind, t, protocol=protocol, prefix=prefix, action=action,
        peer=peer, attrs=attrs,
    )


class TestEventPattern:
    def test_kind_filter(self):
        pattern = EventPattern(kinds=(IOKind.RIB_UPDATE,))
        assert pattern.matches(_event())
        assert not pattern.matches(_event(kind=IOKind.FIB_UPDATE))

    def test_protocol_filter(self):
        pattern = EventPattern(protocols=("ospf",))
        assert not pattern.matches(_event(protocol="bgp"))
        assert pattern.matches(_event(protocol="ospf"))

    def test_action_filter(self):
        pattern = EventPattern(actions=(RouteAction.WITHDRAW,))
        assert not pattern.matches(_event())
        assert pattern.matches(_event(action=RouteAction.WITHDRAW))

    def test_requires_prefix(self):
        with_prefix = EventPattern(requires_prefix=True)
        without = EventPattern(requires_prefix=False)
        assert with_prefix.matches(_event())
        assert not with_prefix.matches(_event(prefix=None))
        assert without.matches(_event(prefix=None))
        assert not without.matches(_event())

    def test_empty_pattern_matches_everything(self):
        assert EventPattern().matches(_event())


class TestRelations:
    def test_same_router(self):
        assert same_router(_event(), _event())
        assert not same_router(_event(), _event(router="R2"))

    def test_different_router(self):
        assert different_router(_event(), _event(router="R2"))

    def test_same_prefix_requires_both(self):
        assert same_prefix(_event(), _event())
        assert not same_prefix(_event(prefix=None), _event())
        assert not same_prefix(_event(), _event(prefix=Q))

    def test_peer_symmetric(self):
        send = _event(router="R1", kind=IOKind.ROUTE_SEND, peer="R2")
        recv = _event(router="R2", kind=IOKind.ROUTE_RECEIVE, peer="R1")
        assert peer_symmetric(send, recv)
        wrong = _event(router="R3", kind=IOKind.ROUTE_RECEIVE, peer="R1")
        assert not peer_symmetric(send, wrong)

    def test_same_lsa(self):
        a = _event(attrs={"lsa_origin": "R1", "lsa_seq": 3})
        b = _event(router="R2", attrs={"lsa_origin": "R1", "lsa_seq": 3})
        c = _event(router="R2", attrs={"lsa_origin": "R1", "lsa_seq": 4})
        assert same_lsa(a, b)
        assert not same_lsa(a, c)
        assert not same_lsa(_event(), b)


class TestRuleMatching:
    def test_recv_before_rib_pair(self):
        rules = {r.name: r for r in default_rules()}
        rule = rules["recv-before-rib"]
        recv = _event(kind=IOKind.ROUTE_RECEIVE, peer="R2", t=1.0)
        rib = _event(kind=IOKind.RIB_UPDATE, t=1.1)
        assert rule.pair_matches(recv, rib)

    def test_recv_before_rib_rejects_cross_router(self):
        rules = {r.name: r for r in default_rules()}
        rule = rules["recv-before-rib"]
        recv = _event(kind=IOKind.ROUTE_RECEIVE, peer="R2", router="R9")
        rib = _event(kind=IOKind.RIB_UPDATE)
        assert not rule.pair_matches(recv, rib)

    def test_send_before_recv_requires_matching_action(self):
        rules = {r.name: r for r in default_rules()}
        rule = rules["send-before-recv"]
        send = _event(
            kind=IOKind.ROUTE_SEND, router="R1", peer="R2",
            action=RouteAction.WITHDRAW,
        )
        recv_match = _event(
            kind=IOKind.ROUTE_RECEIVE, router="R2", peer="R1",
            action=RouteAction.WITHDRAW,
        )
        recv_mismatch = _event(
            kind=IOKind.ROUTE_RECEIVE, router="R2", peer="R1",
            action=RouteAction.ANNOUNCE,
        )
        assert rule.pair_matches(send, recv_match)
        assert not rule.pair_matches(send, recv_mismatch)

    def test_config_rule_window_covers_25s_lag(self):
        rules = {r.name: r for r in default_rules()}
        assert rules["config-before-rib"].window >= 25.0

    def test_bgp_rib_before_send_vs_eigrp(self):
        """The paper's §4.1 contrast between BGP and EIGRP orderings."""
        bgp_rules = {r.name: r for r in default_rules()}
        assert "bgp-rib-before-send" in bgp_rules
        eigrp = {r.name: r for r in eigrp_style_rules()}
        rule = eigrp["eigrp-fib-before-send"]
        fib = _event(kind=IOKind.FIB_UPDATE, protocol="eigrp")
        send = _event(kind=IOKind.ROUTE_SEND, protocol="eigrp", peer="R2")
        assert rule.pair_matches(fib, send)

    def test_default_rules_cover_all_output_kinds(self):
        consequent_kinds = set()
        for rule in default_rules():
            consequent_kinds.update(rule.consequent.kinds)
        assert IOKind.RIB_UPDATE in consequent_kinds
        assert IOKind.FIB_UPDATE in consequent_kinds
        assert IOKind.ROUTE_SEND in consequent_kinds
        assert IOKind.ROUTE_RECEIVE in consequent_kinds
