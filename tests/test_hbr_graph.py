"""Tests for the happens-before graph."""

import pytest
from hypothesis import given, strategies as st

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.graph import EdgeEvidence, HappensBeforeGraph, HbgError
from repro.net.addr import Prefix

P = Prefix.parse("203.0.113.0/24")


def _event(router="R1", kind=IOKind.FIB_UPDATE, t=1.0):
    return IOEvent.create(
        router, kind, t, protocol="bgp", prefix=P, action=RouteAction.ANNOUNCE
    )


def _evidence(confidence=1.0, technique="rule"):
    return EdgeEvidence(technique=technique, confidence=confidence)


def _chain(n):
    """A graph with events e0 -> e1 -> ... -> e(n-1)."""
    graph = HappensBeforeGraph()
    events = [_event(t=float(i)) for i in range(n)]
    for event in events:
        graph.add_event(event)
    for a, b in zip(events, events[1:]):
        assert graph.add_edge(a.event_id, b.event_id, _evidence())
    return graph, events


class TestConstruction:
    def test_add_event_idempotent(self):
        graph = HappensBeforeGraph()
        event = _event()
        graph.add_event(event)
        graph.add_event(event)
        assert len(graph) == 1

    def test_edge_requires_vertices(self):
        graph = HappensBeforeGraph()
        event = _event()
        graph.add_event(event)
        with pytest.raises(HbgError):
            graph.add_edge(event.event_id, 99999, _evidence())

    def test_self_edge_rejected(self):
        graph = HappensBeforeGraph()
        event = _event()
        graph.add_event(event)
        assert not graph.add_edge(event.event_id, event.event_id, _evidence())

    def test_cycle_rejected(self):
        graph, events = _chain(3)
        assert not graph.add_edge(
            events[2].event_id, events[0].event_id, _evidence()
        )
        assert graph.edge_count() == 2

    def test_duplicate_edge_keeps_higher_confidence(self):
        graph, events = _chain(2)
        graph.add_edge(
            events[0].event_id, events[1].event_id, _evidence(confidence=0.2)
        )
        edges = list(graph.edges())
        assert len(edges) == 1 and edges[0].evidence.confidence == 1.0
        graph.add_edge(
            events[0].event_id,
            events[1].event_id,
            EdgeEvidence(technique="pattern", confidence=1.0),
        )
        assert next(graph.edges()).evidence.confidence == 1.0

    def test_confidence_validated(self):
        with pytest.raises(HbgError):
            EdgeEvidence(technique="rule", confidence=1.5)

    def test_unknown_event_lookup(self):
        with pytest.raises(HbgError):
            HappensBeforeGraph().event(7)


class TestTraversal:
    def test_parents_children(self):
        graph, events = _chain(3)
        middle = events[1].event_id
        assert [e.event_id for e, _ in graph.parents(middle)] == [
            events[0].event_id
        ]
        assert [e.event_id for e, _ in graph.children(middle)] == [
            events[2].event_id
        ]

    def test_ancestors_descendants(self):
        graph, events = _chain(4)
        last = events[3].event_id
        assert graph.ancestors(last) == {e.event_id for e in events[:3]}
        first = events[0].event_id
        assert graph.descendants(first) == {e.event_id for e in events[1:]}

    def test_confidence_threshold_cuts_traversal(self):
        graph = HappensBeforeGraph()
        a, b = _event(t=1.0), _event(t=2.0)
        graph.add_event(a)
        graph.add_event(b)
        graph.add_edge(a.event_id, b.event_id, _evidence(confidence=0.3))
        assert graph.ancestors(b.event_id, min_confidence=0.5) == set()
        assert graph.ancestors(b.event_id, min_confidence=0.1) == {a.event_id}

    def test_root_causes_chain(self):
        graph, events = _chain(4)
        roots = graph.root_causes(events[3].event_id)
        assert [r.event_id for r in roots] == [events[0].event_id]

    def test_root_causes_of_orphan_is_itself(self):
        graph = HappensBeforeGraph()
        event = _event()
        graph.add_event(event)
        assert graph.root_causes(event.event_id) == [event]

    def test_root_causes_diamond(self):
        graph = HappensBeforeGraph()
        a, b, c, d = (_event(t=float(i)) for i in range(4))
        for event in (a, b, c, d):
            graph.add_event(event)
        graph.add_edge(a.event_id, b.event_id, _evidence())
        graph.add_edge(a.event_id, c.event_id, _evidence())
        graph.add_edge(b.event_id, d.event_id, _evidence())
        graph.add_edge(c.event_id, d.event_id, _evidence())
        assert [r.event_id for r in graph.root_causes(d.event_id)] == [a.event_id]

    def test_causal_chain(self):
        graph, events = _chain(4)
        chain = graph.causal_chain(events[0].event_id, events[3].event_id)
        assert [e.event_id for e in chain] == [e.event_id for e in events]

    def test_causal_chain_no_path(self):
        graph = HappensBeforeGraph()
        a, b = _event(), _event()
        graph.add_event(a)
        graph.add_event(b)
        assert graph.causal_chain(a.event_id, b.event_id) is None

    def test_causal_chain_same_node(self):
        graph, events = _chain(1)
        chain = graph.causal_chain(events[0].event_id, events[0].event_id)
        assert chain == [events[0]]

    def test_topological_order(self):
        graph, events = _chain(5)
        order = graph.topological_order()
        positions = {e.event_id: i for i, e in enumerate(order)}
        for edge in graph.edges():
            assert positions[edge.cause] < positions[edge.effect]


class TestSubgraphsAndExport:
    def test_subgraph_for_router(self):
        graph = HappensBeforeGraph()
        r1a = _event(router="R1", t=1.0)
        r1b = _event(router="R1", t=2.0)
        r2 = _event(router="R2", t=1.5)
        for event in (r1a, r2, r1b):
            graph.add_event(event)
        graph.add_edge(r1a.event_id, r2.event_id, _evidence())
        graph.add_edge(r1a.event_id, r1b.event_id, _evidence())
        sub = graph.subgraph_for_router("R1")
        assert len(sub) == 2
        assert sub.edge_count() == 1  # only the intra-R1 edge

    def test_merge(self):
        a, events_a = _chain(2)
        b = HappensBeforeGraph()
        extra = _event(t=9.0)
        b.add_event(extra)
        b.add_event(events_a[1])
        b.add_edge(events_a[1].event_id, extra.event_id, _evidence())
        a.merge(b)
        assert len(a) == 3
        assert a.edge_count() == 2

    def test_to_dot_contains_all_events(self):
        graph, events = _chain(3)
        dot = graph.to_dot()
        for event in events:
            assert f"e{event.event_id}" in dot
        assert "->" in dot

    def test_to_networkx(self):
        graph, events = _chain(3)
        nxg = graph.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 2

    def test_events_sorted_by_id(self):
        graph, events = _chain(3)
        assert [e.event_id for e in graph.events()] == sorted(
            e.event_id for e in events
        )


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_graph_never_contains_cycle(self, raw_edges):
        graph = HappensBeforeGraph()
        events = [_event(t=float(i)) for i in range(20)]
        for event in events:
            graph.add_event(event)
        for a, b in raw_edges:
            if a != b:
                graph.add_edge(
                    events[a].event_id, events[b].event_id, _evidence()
                )
        # topological_order raises if a cycle slipped in.
        order = graph.topological_order()
        assert len(order) == 20

    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
    def test_ancestors_closed_under_parents(self, raw_edges):
        graph = HappensBeforeGraph()
        events = [_event(t=float(i)) for i in range(15)]
        for event in events:
            graph.add_event(event)
        for a, b in raw_edges:
            if a != b:
                graph.add_edge(
                    events[a].event_id, events[b].event_id, _evidence()
                )
        target = events[-1].event_id
        ancestors = graph.ancestors(target)
        for ancestor in ancestors:
            for parent, _ in graph.parents(ancestor):
                assert parent.event_id in ancestors
