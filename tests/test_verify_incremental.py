"""Adversarial tests for the incremental atom-based verifier.

Every scenario here is chosen to break a naive "re-check only the
delta's prefix" implementation:

* overlapping /8 vs /24 prefixes, where longest-prefix-match makes a
  delta on one prefix change trace outcomes for addresses probed on
  behalf of the other;
* withdraw-then-readvertise churn on one (router, prefix), where the
  cut front must track the latest delta and the forwarding table must
  not resurrect stale entries;
* the Fig. 1c straggler feed through the incremental path: arriving
  in per-router-lag order, the verifier must defer (inconsistent,
  naming R2) rather than alarm on the phantom loop;
* the 0→1 table transition, where a router's *first* FIB entry flips
  the trace heuristic for every address — the one delta that is
  deliberately not atom-local;
* the cache-coherence hazard: persistent §5 memos served across a
  rollback replay (event-id reuse) are stale unless ``invalidate()``
  runs — and :class:`RepairEngine` runs it for registered
  snapshotters.

Each step is compared against the batch pipeline recomputed from
scratch — the same contract the ``verify-incremental-equivalence``
fuzz oracle checks on random workloads.
"""

import pytest

from repro.capture.io_events import (
    IOEvent,
    IOKind,
    RouteAction,
    reset_event_ids,
)
from repro.hbr.graph import EdgeEvidence, HappensBeforeGraph
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.net.config import ConfigChange, local_pref_map
from repro.repair.provenance import ProvenanceResult
from repro.repair.rollback import RepairEngine
from repro.scenarios.fig1 import Fig1Scenario
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)
from repro.scenarios.paper_net import P
from repro.snapshot.base import DataPlaneSnapshot, VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.verify.incremental import IncrementalVerifier, incremental_engine
from repro.verify.policy import BlackholeFreedomPolicy, LoopFreedomPolicy
from repro.verify.verifier import DataPlaneVerifier

P8 = Prefix.parse("10.0.0.0/8")
P24 = Prefix.parse("10.1.0.0/24")
Q16 = Prefix.parse("192.168.0.0/16")


def _fib(router, prefix, t, next_hop=None, action=RouteAction.ANNOUNCE):
    attrs = {}
    if next_hop is not None:
        attrs["next_hop_router"] = next_hop
    return IOEvent.create(
        router,
        IOKind.FIB_UPDATE,
        t,
        protocol="bgp",
        prefix=prefix,
        action=action,
        attrs=attrs,
    )


def _verifier(topology, policies, internal=("R1", "R2", "R3"), view=None):
    engine = incremental_engine()
    streaming = engine.streaming()
    verifier = IncrementalVerifier(
        internal,
        topology=topology,
        policies=policies,
        view=view,
        engine=engine,
    ).attach(streaming)
    return verifier, streaming


def _assert_matches_batch(verifier, fed, internal, topology, policies, prefix):
    """Recompute the batch pipeline from scratch and compare."""
    graph = InferenceEngine().build_graph(fed)
    batch_report = ConsistentSnapshotter(None, internal).check(
        graph, fed, prefix=prefix, at=verifier.clock
    )
    inc_report = verifier.last_report(prefix)
    assert inc_report.consistent == batch_report.consistent
    assert inc_report.missing_routers == batch_report.missing_routers
    snapshot = DataPlaneSnapshot.from_fib_events(fed)
    batch_violations = [
        v for policy in policies for v in policy.check(snapshot, topology)
    ]
    assert verifier.violations() == batch_violations
    return batch_violations


class TestOverlappingPrefixes:
    """A /24 inside a /8: LPM couples the two prefixes' verdicts."""

    def test_loop_on_more_specific_only(self, paper_network):
        topology = paper_network.topology
        policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())
        verifier, streaming = _verifier(topology, policies)
        fed = []

        def step(event):
            streaming.observe(event)
            fed.append(event)
            return _assert_matches_batch(
                verifier, fed, ("R1", "R2", "R3"), topology, policies,
                event.prefix,
            )

        # Clean /8 everywhere: R2, R3 forward to R1, R1 delivers.
        assert step(_fib("R1", P8, 1.0)) == []
        assert step(_fib("R2", P8, 1.1, next_hop="R1")) == []
        assert step(_fib("R3", P8, 1.2, next_hop="R1")) == []
        assert verifier.atoms.atom_count() == 3  # below, /8, above

        # A /24 loop strictly inside the /8: R1 <-> R2 for 10.1.0.0,
        # while the /8 probe address 10.0.0.0 stays clean.
        step(_fib("R1", P24, 2.0, next_hop="R2"))
        found = step(_fib("R2", P24, 2.1, next_hop="R1"))
        loops = [v for v in found if v.policy == "loop-freedom"]
        assert loops, "expected the /24 forwarding loop"
        assert all(v.prefix == Prefix(P24.first_address(), 32) for v in loops)
        # The /8's own probe address never alarms.
        assert not any(
            v.prefix == Prefix(P8.first_address(), 32) for v in found
        )
        # The /24 split the /8's atom range.
        assert len(verifier.atoms.atoms_within(P8)) == 3

        # Withdrawing R2's /24 does NOT clear the loop: R2 now matches
        # 10.1.0.0 through its /8 entry, which still points at R1 —
        # exactly the cross-prefix coupling a per-prefix-only
        # invalidation would miss (the batch comparison pins it).
        found = step(_fib("R2", P24, 3.0, action=RouteAction.WITHDRAW))
        assert any(v.policy == "loop-freedom" for v in found)

        # Only withdrawing R1's /24 too restores loop freedom.
        found = step(_fib("R1", P24, 3.1, action=RouteAction.WITHDRAW))
        assert found == []


class TestWithdrawReadvertiseChurn:
    def test_cut_front_tracks_latest_delta(self, paper_network):
        topology = paper_network.topology
        policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())
        verifier, streaming = _verifier(topology, policies)
        fed = []
        sequence = [
            _fib("R1", P8, 1.0),
            _fib("R1", P8, 1.5, action=RouteAction.WITHDRAW),
            _fib("R1", P8, 2.0, next_hop="R2"),
            _fib("R2", P8, 2.1),
            _fib("R1", P8, 2.5, action=RouteAction.WITHDRAW),
            _fib("R1", P8, 3.0),
        ]
        for event in sequence:
            streaming.observe(event)
            fed.append(event)
            _assert_matches_batch(
                verifier, fed, ("R1", "R2", "R3"), topology, policies, P8
            )
        # Churn on one (router, prefix) never grows the atom table.
        assert verifier.atoms.atom_count() == 3
        # The final announce wins: R1 delivers directly again.
        entry = verifier.snapshot.entry("R1", P8)
        assert entry is not None
        assert entry.next_hop_router is None
        assert entry.source_event_id == sequence[-1].event_id

    def test_generated_churn_with_straggler(self):
        """A generated workload, fed in arrival order with one lagging
        router, lands on the batch pipeline's exact final state."""
        net, specs = build_random_network(5, uplinks=2, seed=3)
        net.start()
        churn_workload(
            net, specs, external_prefixes(3), events=6, start=2.0, seed=3
        )
        net.run(60)
        internal = net.topology.internal_routers()
        view = VerifierView(net.collector, lags={internal[0]: 0.3})
        policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())
        verifier, streaming = _verifier(
            net.topology, policies, internal=internal, view=view
        )
        fed = sorted(
            net.collector.all_events(),
            key=lambda e: (view.arrival_time(e), e.event_id),
        )
        withdrawals = 0
        for event in fed:
            streaming.observe(event)
            if (
                event.kind is IOKind.FIB_UPDATE
                and event.action is RouteAction.WITHDRAW
            ):
                withdrawals += 1
        assert withdrawals > 0, "workload produced no withdraw churn"
        assert verifier.deltas_applied > 0
        for prefix in sorted(
            verifier.snapshot.all_prefixes() | set(external_prefixes(3))
        ):
            verifier.consistency(prefix)
            _assert_matches_batch(
                verifier, fed, internal, net.topology, policies, prefix
            )


class TestFig1cIncremental:
    def test_straggler_defers_instead_of_phantom_loop(self, fast_delays):
        scenario = Fig1Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig1b()
        view = VerifierView(net.collector, lags={"R2": 0.5})
        internal = net.topology.internal_routers()
        policies = (LoopFreedomPolicy(prefixes=[P]),)
        verifier, streaming = _verifier(
            net.topology, policies, internal=internal, view=view
        )
        arrival_order = sorted(
            net.collector.all_events(),
            key=lambda e: (view.arrival_time(e), e.event_id),
        )
        deferred_on_r2 = False
        phantom = False
        for event in arrival_order:
            streaming.observe(event)
            if event.kind is not IOKind.FIB_UPDATE or event.prefix is None:
                continue
            report = verifier.consistency(P)
            if not report.consistent and "R2" in report.missing_routers:
                deferred_on_r2 = True
            if report.consistent and any(
                v.policy == "loop-freedom" for v in verifier.violations()
            ):
                phantom = True
        # The Fig. 1c window exists (R2's log lags, the cut is refused
        # naming R2) ...
        assert deferred_on_r2
        # ... and no consistent cut ever exhibited the phantom loop.
        assert not phantom
        # Once every log has drained, the verdict closes clean.
        final = verifier.consistency(P)
        assert final.consistent
        assert verifier.violations() == []


class TestFirstEntryGlobalRecheck:
    def test_unrelated_prefix_flips_trace_heuristic(self, paper_network):
        """R2's first-ever FIB entry turns R2 from "external, assume
        delivered" into "internal, may blackhole" for EVERY address —
        a delta whose policy impact escapes its own atoms."""
        topology = paper_network.topology
        policies = (LoopFreedomPolicy(), BlackholeFreedomPolicy())
        verifier, streaming = _verifier(topology, policies)
        fed = []

        event = _fib("R1", P8, 1.0, next_hop="R2")
        streaming.observe(event)
        fed.append(event)
        # R2 has no table yet: the hop into it counts as delivered.
        assert verifier.violations() == []
        _assert_matches_batch(
            verifier, fed, ("R1", "R2", "R3"), topology, policies, P8
        )

        # R2's first entry is for a DISJOINT prefix — its atoms do not
        # overlap the /8 — yet the blackhole for 10.0.0.0 must appear.
        event = _fib("R2", Q16, 2.0)
        streaming.observe(event)
        fed.append(event)
        found = _assert_matches_batch(
            verifier, fed, ("R1", "R2", "R3"), topology, policies, Q16
        )
        blackholes = [v for v in found if v.policy == "blackhole-freedom"]
        assert blackholes, "expected the 0->1 transition blackhole"
        assert blackholes[0].router == "R1"
        assert blackholes[0].prefix == Prefix(P8.first_address(), 32)


class TestRollbackInvalidation:
    """Event-id reuse across a replay poisons persistent memos."""

    def _first_run(self):
        reset_event_ids()
        recv = IOEvent.create(
            "R1",
            IOKind.ROUTE_RECEIVE,
            1.0,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
            peer="R2",
        )
        fib = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            1.01,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
        )
        graph = HappensBeforeGraph()
        graph.add_event(recv)
        graph.add_event(fib)
        graph.add_edge(
            recv.event_id, fib.event_id, EdgeEvidence(technique="rule")
        )
        return graph, fib

    def _replay_run(self):
        """Same event ids as :meth:`_first_run`, different history:
        this time R2's send (and its own FIB update) are present."""
        reset_event_ids()
        recv = IOEvent.create(
            "R1",
            IOKind.ROUTE_RECEIVE,
            1.0,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
            peer="R2",
        )
        fib = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            1.01,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
        )
        send = IOEvent.create(
            "R2",
            IOKind.ROUTE_SEND,
            0.99,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
            peer="R1",
        )
        fib_r2 = IOEvent.create(
            "R2",
            IOKind.FIB_UPDATE,
            0.98,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
        )
        graph = HappensBeforeGraph()
        for event in (recv, fib, send, fib_r2):
            graph.add_event(event)
        graph.add_edge(
            send.event_id, recv.event_id, EdgeEvidence(technique="rule")
        )
        graph.add_edge(
            recv.event_id, fib.event_id, EdgeEvidence(technique="rule")
        )
        return graph, fib, fib_r2

    def test_stale_without_invalidate_fresh_with(self):
        snapshotter = ConsistentSnapshotter(
            None, ("R1", "R2"), persistent_memo=True
        )
        graph1, fib1 = self._first_run()
        snapshotter.note_fib_event(fib1)
        first = snapshotter.check_incremental(
            graph1, [fib1], [], prefix=P8, at=1.05
        )
        assert not first.consistent
        assert first.missing_routers == {"R2"}

        graph2, fib2, fib_r2 = self._replay_run()
        # Ground truth: a fresh batch check calls the replay consistent.
        fresh = ConsistentSnapshotter(None, ("R1", "R2")).check_incremental(
            graph2, [fib2, fib_r2], [], prefix=P8, at=1.05
        )
        assert fresh.consistent

        # The hazard: without invalidation the persistent snapshotter
        # serves the first run's cached verdict for the reused id.
        snapshotter.note_fib_event(fib2)
        snapshotter.note_fib_event(fib_r2)
        stale = snapshotter.check_incremental(
            graph2, [fib2, fib_r2], [], prefix=P8, at=1.05
        )
        assert not stale.consistent, (
            "memo invalidation made id reuse safe? update this test and "
            "the INCREMENTAL_VERIFY.md hazard note"
        )

        # The fix: invalidate() between runs restores correctness.
        snapshotter.invalidate()
        snapshotter.note_fib_event(fib2)
        snapshotter.note_fib_event(fib_r2)
        after = snapshotter.check_incremental(
            graph2, [fib2, fib_r2], [], prefix=P8, at=1.05
        )
        assert after.consistent

    def test_repair_engine_invalidates_registered_snapshotters(self):
        change = ConfigChange(
            "R1",
            "set_route_map",
            key="r1-uplink-lp",
            value=local_pref_map("r1-uplink-lp", 5),
            description="bad change",
        )
        change.previous = local_pref_map("r1-uplink-lp", 100)
        cause = IOEvent.create(
            "R1",
            IOKind.CONFIG_CHANGE,
            1.0,
            attrs={"change_id": change.change_id},
        )
        target = IOEvent.create(
            "R1",
            IOKind.FIB_UPDATE,
            2.0,
            protocol="bgp",
            prefix=P8,
            action=RouteAction.ANNOUNCE,
        )
        provenance = ProvenanceResult(
            target=target,
            root_causes=[cause],
            chains={cause.event_id: [cause, target]},
            ancestry={cause.event_id},
            min_confidence=0.0,
        )

        class _FakeConfigs:
            def routers(self):
                return ["R1"]

            def changes(self, router):
                return [change]

        class _FakeSim:
            now = 2.5

        class _FakeNetwork:
            configs = _FakeConfigs()
            sim = _FakeSim()

            def __init__(self):
                self.applied = []

            def apply_config_change(self, applied_change):
                self.applied.append(applied_change)

        class _Spy:
            calls = 0

            def invalidate(self):
                self.calls += 1

        spy = _Spy()
        network = _FakeNetwork()
        engine = RepairEngine(
            network, DataPlaneVerifier(None, []), snapshotters=[spy]
        )
        report = engine.repair(provenance, settle=0)
        assert any(action.succeeded for action in report.actions)
        assert network.applied, "inverse change was not applied"
        assert spy.calls == 1, "registered snapshotter was not invalidated"

        # No successful revert -> caches stay warm (no invalidation).
        hardware = IOEvent.create(
            "R1", IOKind.HARDWARE_STATUS, 1.0, attrs={"link": "R1|R2"}
        )
        unrepairable = ProvenanceResult(
            target=target,
            root_causes=[hardware],
            chains={hardware.event_id: [hardware, target]},
            ancestry={hardware.event_id},
            min_confidence=0.0,
        )
        engine.repair(unrepairable, settle=0)
        assert spy.calls == 1


class TestWiring:
    def test_attach_requires_full_relink(self):
        engine = InferenceEngine()
        verifier = IncrementalVerifier(("R1",), engine=engine)
        with pytest.raises(ValueError, match="full_relink"):
            verifier.attach(engine.streaming())

    def test_invalidate_resets_derived_state(self, paper_network):
        policies = (LoopFreedomPolicy(),)
        verifier, streaming = _verifier(paper_network.topology, policies)
        streaming.observe(_fib("R1", P8, 1.0, next_hop="R2"))
        streaming.observe(_fib("R2", P8, 1.1, next_hop="R1"))
        assert verifier.violations()
        assert verifier.snapshot.routers()
        verifier.invalidate()
        assert verifier.violations() == []
        assert verifier.snapshot.routers() == []
        assert verifier.last_report(P8) is None
