"""Unit and property tests for repro.net.addr."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    AddressError,
    IPV4_MAX,
    Prefix,
    PrefixTrie,
    format_ip,
    parse_ip,
    summarize,
)


class TestParseFormat:
    def test_parse_simple(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == IPV4_MAX

    def test_format_roundtrip(self):
        assert format_ip(parse_ip("192.168.13.37")) == "192.168.13.37"

    def test_parse_rejects_three_octets(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.0")

    def test_parse_rejects_large_octet(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.0.256")

    def test_parse_rejects_garbage(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.x.1")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ip(IPV4_MAX + 1)

    @given(st.integers(min_value=0, max_value=IPV4_MAX))
    def test_roundtrip_property(self, value):
        assert parse_ip(format_ip(value)) == value


class TestPrefix:
    def test_parse_with_length(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.length == 8
        assert prefix.address == 10 << 24

    def test_bare_address_is_host_route(self):
        assert Prefix.parse("10.0.0.1").length == 32

    def test_host_bits_cleared(self):
        prefix = Prefix(parse_ip("10.1.2.3"), 8)
        assert prefix.address == 10 << 24

    def test_immutable(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            prefix.length = 9

    def test_invalid_length(self):
        with pytest.raises(AddressError):
            Prefix(0, 33)

    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_not_contains_shorter(self):
        assert not Prefix.parse("10.0.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_not_contains_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/8"))

    def test_contains_address(self):
        assert Prefix.parse("10.0.0.0/8").contains_address(parse_ip("10.200.1.1"))
        assert not Prefix.parse("10.0.0.0/8").contains_address(parse_ip("11.0.0.1"))

    def test_overlaps_symmetric(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)

    def test_supernet(self):
        assert Prefix.parse("10.0.0.0/9").supernet() == Prefix.parse("10.0.0.0/8")

    def test_default_has_no_supernet(self):
        with pytest.raises(AddressError):
            Prefix.default().supernet()

    def test_subnets(self):
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert low == Prefix.parse("10.0.0.0/9")
        assert high == Prefix.parse("10.128.0.0/9")

    def test_host_route_has_no_subnets(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/32").subnets()

    def test_first_last_addresses(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.first_address() == parse_ip("10.0.0.0")
        assert prefix.last_address() == parse_ip("10.0.0.3")

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses() == 256

    def test_default_route_spans_everything(self):
        default = Prefix.default()
        assert default.first_address() == 0
        assert default.last_address() == IPV4_MAX

    def test_ordering_stable(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/16",
        ]

    def test_hashable_and_equal(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix(10 << 24, 8)}) == 1

    def test_str(self):
        assert str(Prefix.parse("203.0.113.0/24")) == "203.0.113.0/24"

    @given(
        st.integers(min_value=0, max_value=IPV4_MAX),
        st.integers(min_value=0, max_value=32),
    )
    def test_subnets_partition_parent(self, address, length):
        prefix = Prefix(address, length)
        if length == 32:
            return
        low, high = prefix.subnets()
        assert prefix.contains(low) and prefix.contains(high)
        assert low.num_addresses() + high.num_addresses() == prefix.num_addresses()
        assert low.last_address() + 1 == high.first_address()


class TestPrefixTrie:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "a"

    def test_get_missing(self):
        assert PrefixTrie().get(Prefix.parse("10.0.0.0/8")) is None

    def test_insert_replaces(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        trie.insert(Prefix.parse("10.0.0.0/8"), "b")
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_delete(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.delete(Prefix.parse("10.0.0.0/8"))
        assert trie.get(Prefix.parse("10.0.0.0/8")) is None
        assert len(trie) == 0

    def test_delete_missing_returns_false(self):
        assert not PrefixTrie().delete(Prefix.parse("10.0.0.0/8"))

    def test_delete_keeps_more_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        trie.insert(Prefix.parse("10.1.0.0/16"), "b")
        trie.delete(Prefix.parse("10.0.0.0/8"))
        assert trie.get(Prefix.parse("10.1.0.0/16")) == "b"

    def test_longest_match_picks_most_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.1.0.0/16"), "long")
        match = trie.longest_match(parse_ip("10.1.2.3"))
        assert match is not None
        assert match[1] == "long"
        assert match[0] == Prefix(parse_ip("10.1.2.3"), 16)

    def test_longest_match_falls_back(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.1.0.0/16"), "long")
        match = trie.longest_match(parse_ip("10.2.0.1"))
        assert match is not None and match[1] == "short"

    def test_longest_match_none(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.longest_match(parse_ip("11.0.0.1")) is None

    def test_default_route_matches_everything(self):
        trie = PrefixTrie()
        trie.insert(Prefix.default(), "default")
        assert trie.longest_match(0)[1] == "default"
        assert trie.longest_match(IPV4_MAX)[1] == "default"

    def test_longest_match_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        match = trie.longest_match_prefix(Prefix.parse("10.1.0.0/16"))
        assert match is not None and match[1] == "a"

    def test_covered_by(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        trie.insert(Prefix.parse("10.1.0.0/16"), "b")
        trie.insert(Prefix.parse("11.0.0.0/8"), "c")
        covered = dict(trie.covered_by(Prefix.parse("10.0.0.0/8")))
        assert set(covered.values()) == {"a", "b"}

    def test_items_sorted(self):
        trie = PrefixTrie()
        for text in ("11.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"):
            trie.insert(Prefix.parse(text), text)
        keys = [str(p) for p, _ in trie.items()]
        assert keys == ["10.0.0.0/8", "10.0.0.0/16", "11.0.0.0/8"]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=IPV4_MAX),
                st.integers(min_value=0, max_value=32),
            ),
            max_size=40,
        )
    )
    def test_trie_matches_dict_semantics(self, raw):
        trie = PrefixTrie()
        reference = {}
        for index, (address, length) in enumerate(raw):
            prefix = Prefix(address, length)
            trie.insert(prefix, index)
            reference[prefix] = index
        assert len(trie) == len(reference)
        for prefix, value in reference.items():
            assert trie.get(prefix) == value
        assert trie.to_dict() == reference

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=IPV4_MAX),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=0, max_value=IPV4_MAX),
    )
    def test_longest_match_agrees_with_linear_scan(self, raw, probe):
        trie = PrefixTrie()
        reference = {}
        for index, (address, length) in enumerate(raw):
            prefix = Prefix(address, length)
            trie.insert(prefix, index)
            reference[prefix] = index
        expected = None
        for prefix, value in reference.items():
            if prefix.contains_address(probe):
                if expected is None or prefix.length > expected[0].length:
                    expected = (prefix, value)
        got = trie.longest_match(probe)
        if expected is None:
            assert got is None
        else:
            assert got is not None and got[1] == expected[1]


class TestSummarize:
    def test_removes_covered(self):
        result = summarize(
            [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")]
        )
        assert result == [Prefix.parse("10.0.0.0/8")]

    def test_merges_siblings(self):
        result = summarize(
            [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")]
        )
        assert result == [Prefix.parse("10.0.0.0/8")]

    def test_keeps_disjoint(self):
        prefixes = [Prefix.parse("10.0.0.0/8"), Prefix.parse("12.0.0.0/8")]
        assert summarize(prefixes) == sorted(prefixes)

    def test_recursive_merge(self):
        quarters = [
            Prefix.parse("10.0.0.0/10"),
            Prefix.parse("10.64.0.0/10"),
            Prefix.parse("10.128.0.0/10"),
            Prefix.parse("10.192.0.0/10"),
        ]
        assert summarize(quarters) == [Prefix.parse("10.0.0.0/8")]

    def test_empty(self):
        assert summarize([]) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=IPV4_MAX),
                st.integers(min_value=1, max_value=32),
            ),
            max_size=15,
        )
    )
    def test_summary_covers_same_space(self, raw):
        prefixes = [Prefix(a, l) for a, l in raw]
        summary = summarize(prefixes)
        # Every original address range is covered by some summary entry.
        for prefix in prefixes:
            assert any(s.contains(prefix) for s in summary)
        # No summary entry covers anything another does.
        for i, a in enumerate(summary):
            for j, b in enumerate(summary):
                if i != j:
                    assert not a.contains(b)
