"""Tests for the EIGRP-style distance-vector protocol and the §4.1
FIB-before-send ordering contrast with BGP."""

import pytest

from repro.capture.io_events import IOKind, RouteAction
from repro.hbr.inference import InferenceEngine, score_inference
from repro.net.addr import Prefix
from repro.net.config import ConfigChange, RouterConfig
from repro.net.simulator import DelayModel
from repro.net.topology import line_topology
from repro.protocols.dvp import INFINITY, DistanceVectorProcess, DvRoute
from repro.protocols.network import Network

DP = Prefix.parse("172.16.0.0/16")


class TestProcess:
    def test_originate(self):
        proc = DistanceVectorProcess("R0")
        route = proc.originate(DP)
        assert route is not None and route.metric == 0
        assert proc.originate(DP) is None  # idempotent

    def test_receive_better(self):
        proc = DistanceVectorProcess("R0")
        assert proc.receive("R1", DP, 2) is not None
        assert proc.get(DP).metric == 3
        assert proc.receive("R2", DP, 1) is not None
        assert proc.get(DP).via_router == "R2"

    def test_receive_worse_ignored(self):
        proc = DistanceVectorProcess("R0")
        proc.receive("R1", DP, 1)
        assert proc.receive("R2", DP, 5) is None
        assert proc.get(DP).via_router == "R1"

    def test_successor_update_always_applies(self):
        proc = DistanceVectorProcess("R0")
        proc.receive("R1", DP, 1)
        worse = proc.receive("R1", DP, 7)
        assert worse is not None and worse.metric == 8

    def test_poison_from_successor(self):
        proc = DistanceVectorProcess("R0")
        proc.receive("R1", DP, 1)
        poisoned = proc.receive("R1", DP, INFINITY)
        assert poisoned is not None and not poisoned.reachable

    def test_infinite_offer_for_unknown_ignored(self):
        proc = DistanceVectorProcess("R0")
        assert proc.receive("R1", DP, INFINITY) is None

    def test_split_horizon_poisoned_reverse(self):
        proc = DistanceVectorProcess("R0")
        proc.receive("R1", DP, 1)
        assert proc.advertised_metric(DP, "R1") == INFINITY
        assert proc.advertised_metric(DP, "R2") == 2

    def test_neighbor_lost_poisons(self):
        proc = DistanceVectorProcess("R0")
        proc.receive("R1", DP, 1)
        poisoned = proc.neighbor_lost("R1")
        assert len(poisoned) == 1 and not poisoned[0].reachable

    def test_withdraw_origin(self):
        proc = DistanceVectorProcess("R0")
        proc.originate(DP)
        withdrawn = proc.withdraw_origin(DP)
        assert withdrawn is not None and not withdrawn.reachable


def _dv_network(n=3, seed=0):
    topo = line_topology(n)
    configs = []
    for i in range(n):
        config = RouterConfig(router=f"R{i}", asn=65000, dv_enabled=True)
        if i == 0:
            config.dv_originated.append(DP)
        configs.append(config)
    delays = DelayModel(
        fib_install=0.001,
        rib_update=0.0005,
        advertisement=0.001,
        config_to_reconfig=0.05,
        spf_compute=0.001,
    )
    net = Network(topo, configs, seed=seed, delays=delays)
    net.start()
    return net


class TestInNetwork:
    def test_propagates_along_line(self):
        net = _dv_network(4)
        net.run(5)
        for i in range(1, 4):
            entry = net.runtime(f"R{i}").fib.get(DP)
            assert entry is not None
            assert entry.protocol == "eigrp"
            assert entry.next_hop_router == f"R{i - 1}"

    def test_origin_has_local_entry(self):
        net = _dv_network(3)
        net.run(5)
        entry = net.runtime("R0").fib.get(DP)
        assert entry is not None and entry.next_hop_router is None

    def test_traffic_delivered(self):
        net = _dv_network(4)
        net.run(5)
        path, outcome = net.trace_path("R3", DP.first_address())
        assert outcome == "delivered"
        assert path == ["R3", "R2", "R1", "R0"]

    def test_fib_install_precedes_send(self):
        """The §4.1 EIGRP ordering, end to end and per router."""
        net = _dv_network(4)
        net.run(5)
        for i in range(1, 3):
            router = f"R{i}"
            fibs = net.collector.query(
                router=router, kind=IOKind.FIB_UPDATE, prefix=DP
            )
            sends = net.collector.query(
                router=router, kind=IOKind.ROUTE_SEND, prefix=DP,
                protocol="eigrp",
            )
            assert fibs and sends
            assert min(f.timestamp for f in fibs) <= min(
                s.timestamp for s in sends
            )

    def test_link_failure_poisons_downstream(self):
        net = _dv_network(4)
        net.run(5)
        net.fail_link("R1", "R2")
        net.run(5)
        assert net.runtime("R3").fib.get(DP) is None
        assert net.runtime("R0").fib.get(DP) is not None

    def test_dynamic_origination_via_config(self):
        net = _dv_network(3)
        net.run(5)
        other = Prefix.parse("172.17.0.0/16")
        change = ConfigChange(
            "R0", "set_dv_originated", value=[DP, other],
            description="originate another prefix",
        )
        net.apply_config_change(change)
        net.run(5)
        assert net.runtime("R2").fib.get(other) is not None

    def test_origin_withdrawal_propagates(self):
        net = _dv_network(3)
        net.run(5)
        change = ConfigChange(
            "R0", "set_dv_originated", value=[], description="stop originating"
        )
        net.apply_config_change(change)
        net.run(5)
        assert net.runtime("R2").fib.get(DP) is None


class TestInference:
    def test_protocol_specific_orderings_recovered(self):
        """From one capture, the engine links BGP sends to RIB events
        and EIGRP sends to FIB events — the paper's §4.1 contrast."""
        net = _dv_network(4)
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        eigrp_sends = [
            e
            for e in net.collector.query(kind=IOKind.ROUTE_SEND, protocol="eigrp")
            if e.router != "R0"  # transit routers have both FIB and RIB
        ]
        assert eigrp_sends
        fib_parent_found = False
        for send in eigrp_sends:
            for parent, evidence in graph.parents(send.event_id):
                if (
                    parent.kind is IOKind.FIB_UPDATE
                    and evidence.rule == "eigrp-fib-before-send"
                ):
                    fib_parent_found = True
        assert fib_parent_found

    def test_inference_scores_well_on_dv(self):
        net = _dv_network(5)
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        observable = {e.event_id for e in net.collector}
        score = score_inference(
            graph, net.ground_truth, observable_ids=observable
        )
        assert score.recall >= 0.9
        assert score.precision >= 0.7

    def test_ground_truth_has_fib_to_send_edges(self):
        net = _dv_network(3)
        net.run(5)
        truth = net.ground_truth.edge_set()
        fib_ids = {
            e.event_id
            for e in net.collector.query(kind=IOKind.FIB_UPDATE, prefix=DP)
        }
        send_ids = {
            e.event_id
            for e in net.collector.query(
                kind=IOKind.ROUTE_SEND, protocol="eigrp"
            )
        }
        assert any(c in fib_ids and f in send_ids for c, f in truth)
