"""Tests for the health-rule engine: spec parsing round-trips, rule
evaluation over the metrics registry, verdict wiring, and the HEALTH
flight-recorder events."""

import json

import pytest

from repro import obs
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthRule,
    HealthRuleError,
    evaluate_rule,
    parse_rule,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    yield
    obs.disable()
    obs.disable_recording()
    obs.disable_ledger()


# -- rule construction and parsing -----------------------------------------


class TestHealthRule:
    def test_validates_operator_and_stat(self):
        with pytest.raises(HealthRuleError):
            HealthRule(name="x", metric="m", op="==", threshold=1.0)
        with pytest.raises(HealthRuleError):
            HealthRule(name="x", metric="m", op="<=", threshold=1.0,
                       stat="p42")
        with pytest.raises(HealthRuleError):
            HealthRule(name="x", metric="m", op="<=", threshold=1.0,
                       stat="p99", denominator="d")

    def test_spec_round_trips_every_default_rule(self):
        for rule in DEFAULT_RULES:
            assert parse_rule(rule.spec()) == rule

    def test_spec_round_trips_labels_and_stats(self):
        rule = HealthRule(
            name="edge-p95",
            metric="verify.latency_seconds",
            op="<",
            threshold=0.25,
            stat="p95",
            labels=(("router", "R1"),),
        )
        assert parse_rule(rule.spec()) == rule

    def test_spec_round_trips_exact_float_thresholds(self):
        rule = HealthRule(
            name="big", metric="m", op="<=", threshold=536870912.0
        )
        assert parse_rule(rule.spec()).threshold == 536870912.0


class TestParseRule:
    def test_parses_ratio_rules(self):
        rule = parse_rule("fail-rate: errors_total / requests_total <= 0.1")
        assert rule.denominator == "requests_total"
        assert rule.stat == "value"
        assert rule.threshold == 0.1

    def test_parses_histogram_stat_suffix(self):
        rule = parse_rule("p99: inference.build_graph_seconds.p99 <= 1.0")
        assert rule.metric == "inference.build_graph_seconds"
        assert rule.stat == "p99"

    def test_metric_ending_in_a_stat_like_segment_without_stat(self):
        # ``.count`` is a STATS name: the trailing segment is a stat,
        # the rest is the metric.
        rule = parse_rule("c: capture.events.count >= 1")
        assert rule.metric == "capture.events" and rule.stat == "count"

    def test_parses_label_constraints(self):
        rule = parse_rule('r: verify.latency{router=R1,kind="fib"} <= 2')
        assert rule.labels == (("kind", "fib"), ("router", "R1"))

    @pytest.mark.parametrize(
        "spec",
        [
            "no-colon resource.bytes_total <= 1",
            "x: metric == 1",
            "x: metric <= not-a-number",
            "x: metric{router} <= 1",
            "",
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(HealthRuleError):
            parse_rule(spec)


# -- rule evaluation -------------------------------------------------------


class TestEvaluateRule:
    def test_missing_metric_passes_with_none_value(self):
        with obs.capturing() as (registry, _tracer):
            rule = HealthRule(name="x", metric="absent", op="<=",
                              threshold=1.0)
            result = evaluate_rule(rule, registry)
        assert result.ok and result.value is None

    def test_gauge_ceiling_trips(self):
        with obs.capturing() as (registry, _tracer):
            registry.gauge("test.load").set(5.0)
            rule = HealthRule(name="x", metric="test.load", op="<=",
                              threshold=1.0)
            result = evaluate_rule(rule, registry)
        assert not result.ok and result.value == 5.0

    def test_counter_values_sum_across_label_sets(self):
        with obs.capturing() as (registry, _tracer):
            registry.counter("test.errs", router="R1").inc(2)
            registry.counter("test.errs", router="R2").inc(3)
            rule = HealthRule(name="x", metric="test.errs", op="<",
                              threshold=10.0)
            result = evaluate_rule(rule, registry)
        assert result.ok and result.value == 5.0

    def test_label_constraints_filter_instruments(self):
        with obs.capturing() as (registry, _tracer):
            registry.counter("test.errs", router="R1").inc(2)
            registry.counter("test.errs", router="R2").inc(30)
            rule = HealthRule(
                name="x", metric="test.errs", op="<", threshold=10.0,
                labels=(("router", "R1"),),
            )
            result = evaluate_rule(rule, registry)
        assert result.ok and result.value == 2.0

    def test_ratio_rule_divides_sums(self):
        with obs.capturing() as (registry, _tracer):
            registry.counter("test.bad").inc(1)
            registry.counter("test.all").inc(4)
            rule = HealthRule(
                name="x", metric="test.bad", op="<=", threshold=0.5,
                denominator="test.all",
            )
            result = evaluate_rule(rule, registry)
        assert result.ok and result.value == 0.25

    def test_ratio_with_zero_denominator_passes(self):
        with obs.capturing() as (registry, _tracer):
            registry.counter("test.bad").inc(1)
            registry.counter("test.all")  # created, never incremented
            rule = HealthRule(
                name="x", metric="test.bad", op="<=", threshold=0.5,
                denominator="test.all",
            )
            result = evaluate_rule(rule, registry)
        assert result.ok and result.value is None

    def test_histogram_percentile_rule(self):
        with obs.capturing() as (registry, _tracer):
            for value in (0.01, 0.02, 5.0):
                registry.histogram("test.latency_seconds").observe(value)
            rule = HealthRule(
                name="x", metric="test.latency_seconds", op="<=",
                threshold=1.0, stat="p99",
            )
            result = evaluate_rule(rule, registry)
        assert not result.ok and result.value == pytest.approx(5.0)

    def test_histogram_stat_takes_worst_label_set(self):
        with obs.capturing() as (registry, _tracer):
            registry.histogram("test.lat", stage="fast").observe(0.1)
            registry.histogram("test.lat", stage="slow").observe(9.0)
            rule = HealthRule(
                name="x", metric="test.lat", op="<=", threshold=1.0,
                stat="max",
            )
            result = evaluate_rule(rule, registry)
        assert not result.ok and result.value == pytest.approx(9.0)


# -- the engine ------------------------------------------------------------


class TestHealthEngine:
    def test_rejects_duplicate_rule_names(self):
        rule = DEFAULT_RULES[0]
        with pytest.raises(HealthRuleError):
            HealthEngine(rules=(rule, rule))

    def test_healthy_until_first_failing_tick(self):
        engine = HealthEngine()
        assert engine.healthy() and engine.last is None
        with obs.capturing() as (registry, _tracer):
            verdict = engine.evaluate(registry=registry)
        assert verdict.ok and engine.healthy()
        assert verdict.tick == 1 and engine.tick == 1

    def test_failing_rule_flips_the_verdict(self):
        with obs.capturing() as (registry, _tracer):
            registry.gauge("test.load").set(5.0)
            engine = HealthEngine(
                rules=(
                    HealthRule(name="load", metric="test.load", op="<=",
                               threshold=1.0),
                )
            )
            verdict = engine.evaluate(registry=registry)
        assert not verdict.ok and not engine.healthy()
        assert [r.rule.name for r in verdict.failing()] == ["load"]

    def test_verdict_serialises(self):
        with obs.capturing() as (registry, _tracer):
            verdict = HealthEngine().evaluate(registry=registry)
        document = json.loads(json.dumps(verdict.to_dict()))
        assert document["schema"] == "repro-health/v1"
        assert document["tick"] == 1
        assert {r["rule"] for r in document["rules"]} == {
            rule.name for rule in DEFAULT_RULES
        }

    def test_emits_health_metrics(self):
        with obs.capturing() as (registry, _tracer):
            registry.gauge("test.load").set(5.0)
            engine = HealthEngine(
                rules=(
                    HealthRule(name="load", metric="test.load", op="<=",
                               threshold=1.0),
                )
            )
            engine.evaluate(registry=registry)
            engine.evaluate(registry=registry)
            counters = {c.name: c.value for c in registry.counters()}
            gauges = {
                (g.name, dict(g.labels).get("rule")): g.value
                for g in registry.gauges()
            }
        assert counters["health.ticks_total"] == 2
        assert counters["health.rule_failures_total"] == 2
        assert gauges[("health.ok", None)] == 0.0
        assert gauges[("health.rule_ok", "load")] == 0.0

    def test_refreshes_ledger_before_judging_byte_ceilings(self):
        with obs.capturing() as (registry, _tracer):
            with obs.accounting() as ledger:

                class Heavy:
                    def account_bytes(self, audit=False):
                        return 1000

                heavy = Heavy()
                ledger.register("test.component", heavy)
                engine = HealthEngine(
                    rules=(
                        HealthRule(
                            name="bytes",
                            metric="resource.bytes_total",
                            op="<=",
                            threshold=100.0,
                        ),
                    )
                )
                verdict = engine.evaluate(registry=registry)
        # The tick refreshed the ledger first, so the ceiling judged
        # the *current* 1000 bytes — no stale-gauge pass.
        assert not verdict.ok
        assert verdict.results[0].value == 1000.0

    def test_records_health_trace_events(self):
        with obs.recording(capacity=100) as recorder:
            with obs.capturing() as (registry, _tracer):
                registry.gauge("test.load").set(5.0)
                engine = HealthEngine(
                    rules=(
                        HealthRule(name="load", metric="test.load",
                                   op="<=", threshold=1.0),
                    )
                )
                engine.evaluate(registry=registry)
        events = recorder.events(obs.TraceKind.HEALTH)
        assert [e.detail for e in events] == ["tick", "rule-failed:load"]
        tick = events[0]
        assert tick.at == 1.0  # the tick counter, never a wall clock
        assert tick.attr("ok") is False and tick.attr("failing") == 1
        failed = events[1]
        assert failed.attr("rule") == "load"
        assert failed.attr("value") == 5.0
        assert failed.attr("threshold") == 1.0

    def test_no_trace_events_when_recording_disabled(self):
        with obs.capturing() as (registry, _tracer):
            HealthEngine().evaluate(registry=registry)
        assert len(obs.get_recorder()) == 0
