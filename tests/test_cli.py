"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, package_version


class TestParser:
    def test_demo_choices(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "fig1"])
        assert args.scenario == "fig1"

    def test_unknown_demo_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["demo", "nope"])

    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.routers == 8 and args.uplinks == 2

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "demo", "fig2"])
        assert args.seed == 7


class TestExecution:
    def test_demo_fig1(self, capsys):
        assert main(["demo", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out and "Ext2" in out

    def test_demo_fig2(self, capsys):
        assert main(["demo", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "policy violated: True" in out

    def test_demo_vendor(self, capsys):
        assert main(["demo", "vendor"]) == 0
        out = capsys.readouterr().out
        assert "diverge: True" in out

    def test_demo_fig5(self, capsys):
        assert main(["demo", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Config" in out and "FIB" in out

    def test_demo_pipeline(self, capsys):
        assert main(["demo", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out
        assert "policy violated after the episode: False" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--routers", "5", "--events", "4"]) == 0
        out = capsys.readouterr().out
        assert "HBR inference" in out
        assert "equivalence classes" in out


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert package_version() in capsys.readouterr().out

    def test_package_version_matches_pyproject(self):
        # Either installed metadata or the source tree; both say 1.x.
        assert package_version()[0].isdigit()


class TestAuditGate:
    def test_min_f1_gate_fails(self, capsys):
        rc = main(
            ["audit", "--routers", "5", "--events", "4", "--min-f1", "0.999"]
        )
        assert rc == 1
        assert "below --min-f1" in capsys.readouterr().out

    def test_min_f1_gate_passes(self):
        rc = main(
            ["audit", "--routers", "5", "--events", "4", "--min-f1", "0.05"]
        )
        assert rc == 0


class TestStats:
    def test_stats_json_has_pipeline_sections(self, capsys):
        rc = main(
            [
                "stats",
                "--scenario",
                "pipeline",
                "--format",
                "json",
                "--require",
                "capture,inference,snapshot,verify,repair",
            ]
        )
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        sections = document["sections"]
        for name in ("capture", "inference", "snapshot", "verify", "repair"):
            assert name in sections
        verify = sections["verify"]
        assert verify["counters"]["verify.fib_writes_verified"] > 0
        assert (
            verify["histograms"]["verify.fib_write_latency_seconds"]["count"]
            > 0
        )
        assert (
            sections["inference"]["counters"]["inference.hbg_edges_inferred"]
            > 0
        )
        assert document["meta"]["scenario"] == "pipeline"

    def test_stats_require_missing_section_fails(self, capsys):
        # fig1 never arms the pipeline, so no repair metrics exist.
        rc = main(
            [
                "stats",
                "--scenario",
                "fig1",
                "--format",
                "json",
                "--require",
                "repair",
            ]
        )
        assert rc == 1
        assert "missing or empty" in capsys.readouterr().err

    def test_stats_table_format(self, capsys):
        assert main(["stats", "--scenario", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "[capture]" in out and "[sim]" in out

    def test_stats_output_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        rc = main(
            [
                "stats",
                "--scenario",
                "pipeline",
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert rc == 0
        document = json.loads(target.read_text())
        assert "sections" in document
        assert str(target) in capsys.readouterr().out

    def test_stats_disables_metrics_afterwards(self):
        from repro import obs

        main(["stats", "--scenario", "fig2"])
        assert not obs.enabled()

    def test_metrics_flag_appends_report(self, capsys):
        assert main(["--metrics", "demo", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "===== metrics =====" in out
        assert "verify.fib_writes_verified" in out
        from repro import obs

        assert not obs.enabled()


class TestLintErrorPaths:
    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "lint-baseline.json"
        bad.write_text("{broken", encoding="utf-8")
        rc = main(
            ["lint", "--baseline", str(bad), "tests/fixtures/lint"]
        )
        assert rc == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_missing_lint_path_exits_2(self, capsys):
        rc = main(["lint", "does/not/exist.py"])
        assert rc == 2
        assert "repro lint:" in capsys.readouterr().err


class TestFuzz:
    def test_small_campaign_table(self, capsys):
        rc = main(
            [
                "fuzz",
                "--cases",
                "2",
                "--seed",
                "0",
                "--artifacts-dir",
                "none",
                "--fail-on-finding",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 case(s), 0 failing" in out
        assert "campaign digest:" in out

    def test_output_is_byte_identical_across_runs(self, capsys):
        argv = [
            "fuzz", "--cases", "2", "--seed", "5",
            "--artifacts-dir", "none", "--format", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        report = json.loads(first)
        assert report["cases"] == 2 and report["failures"] == 0

    def test_unknown_oracle_exits_2(self, capsys):
        rc = main(["fuzz", "--cases", "1", "--oracle", "nope"])
        assert rc == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_replay_missing_file_exits_2(self, capsys):
        rc = main(["fuzz", "--replay", "does/not/exist.json"])
        assert rc == 2
        assert "cannot read artifact" in capsys.readouterr().err

    def test_replay_regression_fixture(self, capsys):
        import glob
        import os

        fixture = sorted(
            glob.glob("tests/fixtures/fuzz_regressions/*.json")
        )[0]
        assert os.path.exists(fixture)
        rc = main(["fuzz", "--replay", fixture])
        assert rc == 0
        assert "as recorded" in capsys.readouterr().out

    def test_fuzz_leaves_obs_disabled(self):
        from repro import obs

        assert (
            main(
                [
                    "fuzz", "--cases", "1", "--seed", "0",
                    "--artifacts-dir", "none",
                    "--oracle", "replay-determinism",
                ]
            )
            == 0
        )
        assert not obs.enabled()
