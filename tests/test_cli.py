"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_demo_choices(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "fig1"])
        assert args.scenario == "fig1"

    def test_unknown_demo_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["demo", "nope"])

    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.routers == 8 and args.uplinks == 2

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "demo", "fig2"])
        assert args.seed == 7


class TestExecution:
    def test_demo_fig1(self, capsys):
        assert main(["demo", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out and "Ext2" in out

    def test_demo_fig2(self, capsys):
        assert main(["demo", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "policy violated: True" in out

    def test_demo_vendor(self, capsys):
        assert main(["demo", "vendor"]) == 0
        out = capsys.readouterr().out
        assert "diverge: True" in out

    def test_demo_fig5(self, capsys):
        assert main(["demo", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Config" in out and "FIB" in out

    def test_demo_pipeline(self, capsys):
        assert main(["demo", "pipeline"]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out
        assert "policy violated after the episode: False" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--routers", "5", "--events", "4"]) == 0
        out = capsys.readouterr().out
        assert "HBR inference" in out
        assert "equivalence classes" in out
