"""Tests for the BGP decision process and vendor profiles."""

import pytest

from repro.net.addr import Prefix
from repro.protocols.bgp_decision import (
    VendorProfile,
    best_path,
    compare_local_pref,
    compare_med_always,
    compare_med_same_as,
    compare_oldest,
    rank_paths,
)
from repro.protocols.routes import BgpRoute, Origin

P = Prefix.parse("203.0.113.0/24")


def _route(**kwargs):
    defaults = dict(prefix=P, next_hop=1)
    defaults.update(kwargs)
    return BgpRoute(**defaults)


@pytest.fixture
def cisco():
    return VendorProfile.cisco()


@pytest.fixture
def juniper():
    return VendorProfile.juniper()


class TestIndividualSteps:
    def test_local_pref_higher_wins(self, cisco):
        low = _route(local_pref=20)
        high = _route(local_pref=30)
        assert best_path([low, high], cisco) == high

    def test_weight_beats_local_pref_on_cisco(self, cisco):
        weighted = _route(weight=100, local_pref=10)
        preferred = _route(local_pref=200)
        assert best_path([weighted, preferred], cisco) == weighted

    def test_juniper_has_no_weight_step(self, juniper):
        weighted = _route(weight=100, local_pref=10)
        preferred = _route(local_pref=200)
        assert best_path([weighted, preferred], juniper) == preferred

    def test_locally_originated_beats_learned(self, cisco):
        local = _route(locally_originated=True)
        learned = _route(from_peer="X")
        assert best_path([learned, local], cisco) == local

    def test_shorter_as_path_wins(self, cisco):
        short = _route(as_path=(65001,))
        long = _route(as_path=(65001, 65002))
        assert best_path([long, short], cisco) == short

    def test_lower_origin_wins(self, cisco):
        igp = _route(origin=Origin.IGP, as_path=(65001,))
        incomplete = _route(origin=Origin.INCOMPLETE, as_path=(65002,))
        assert best_path([incomplete, igp], cisco) == igp

    def test_med_compared_within_same_neighbor_as(self):
        a = _route(as_path=(65001,), med=10)
        b = _route(as_path=(65001,), med=5)
        assert compare_med_same_as(a, b) > 0

    def test_med_ignored_across_different_as(self):
        a = _route(as_path=(65001,), med=10)
        b = _route(as_path=(65002,), med=5)
        assert compare_med_same_as(a, b) == 0
        assert compare_med_always(a, b) > 0

    def test_ebgp_beats_ibgp(self, cisco):
        ebgp = _route(ebgp_learned=True)
        ibgp = _route(ebgp_learned=False)
        assert best_path([ibgp, ebgp], cisco) == ebgp

    def test_lower_igp_metric_wins(self, cisco):
        near = _route(ebgp_learned=False, igp_metric=5)
        far = _route(ebgp_learned=False, igp_metric=50)
        assert best_path([far, near], cisco) == near

    def test_oldest_only_applies_to_ebgp_pairs(self):
        older = _route(ebgp_learned=True, received_at=1.0)
        newer = _route(ebgp_learned=True, received_at=2.0)
        assert compare_oldest(older, newer) < 0
        mixed = _route(ebgp_learned=False, received_at=0.5)
        assert compare_oldest(mixed, newer) == 0

    def test_router_id_tiebreak(self, cisco):
        low_id = _route(peer_router_id=1)
        high_id = _route(peer_router_id=9)
        assert best_path([high_id, low_id], cisco) == low_id

    def test_peer_address_final_tiebreak(self, cisco):
        a = _route(peer_address=10)
        b = _route(peer_address=20)
        assert best_path([b, a], cisco) == a


class TestVendorDifferences:
    def test_cisco_prefers_oldest_ebgp_route(self, cisco):
        """The arrival-order quirk: same attributes, different arrival."""
        older = _route(ebgp_learned=True, received_at=1.0, peer_router_id=9)
        newer = _route(ebgp_learned=True, received_at=2.0, peer_router_id=1)
        assert best_path([older, newer], cisco) == older

    def test_juniper_ignores_arrival_order(self, juniper):
        older = _route(ebgp_learned=True, received_at=1.0, peer_router_id=9)
        newer = _route(ebgp_learned=True, received_at=2.0, peer_router_id=1)
        # Junos goes straight to router-id: the lower id wins.
        assert best_path([older, newer], juniper) == newer

    def test_vendors_can_disagree(self, cisco, juniper):
        older = _route(ebgp_learned=True, received_at=1.0, peer_router_id=9)
        newer = _route(ebgp_learned=True, received_at=2.0, peer_router_id=1)
        assert best_path([older, newer], cisco) != best_path(
            [older, newer], juniper
        )

    def test_for_vendor_lookup(self):
        assert VendorProfile.for_vendor("cisco").name == "cisco"
        assert VendorProfile.for_vendor("juniper").name == "juniper"
        with pytest.raises(ValueError):
            VendorProfile.for_vendor("vendorx")


class TestDeterminism:
    def test_deterministic_profile_drops_oldest(self, cisco):
        deterministic = cisco.deterministic()
        assert "oldest" not in deterministic.step_names

    def test_deterministic_profile_is_order_independent(self, cisco):
        deterministic = cisco.deterministic()
        a = _route(ebgp_learned=True, received_at=1.0, peer_router_id=9)
        b = _route(ebgp_learned=True, received_at=2.0, peer_router_id=1)
        assert best_path([a, b], deterministic) == best_path(
            [b, a], deterministic
        )

    def test_cisco_is_order_dependent_without_addpath(self, cisco):
        """Arrival order changes received_at, and with it the winner —
        the §8 nondeterminism Add-Path exists to remove."""
        first_arrival = _route(ebgp_learned=True, received_at=1.0, peer_router_id=9)
        second_arrival = _route(ebgp_learned=True, received_at=2.0, peer_router_id=9)
        # Identical except arrival: whichever arrived first wins.
        assert best_path([first_arrival, second_arrival], cisco) == first_arrival

    def test_without_removes_step(self, cisco):
        stripped = cisco.without("med")
        assert "med" not in stripped.step_names
        with pytest.raises(ValueError):
            cisco.without("not-a-step")

    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            VendorProfile("bad", ("no-such-step",))


class TestRankAndExplain:
    def test_rank_paths_best_first(self, cisco):
        best = _route(local_pref=300)
        middle = _route(local_pref=200)
        worst = _route(local_pref=100)
        ranked = rank_paths([worst, best, middle], cisco)
        assert ranked == [best, middle, worst]

    def test_explain_names_deciding_step(self, cisco):
        a = _route(local_pref=300)
        b = _route(local_pref=100)
        result, step = cisco.explain(a, b)
        assert result < 0 and step == "local_pref"

    def test_explain_identical_routes(self, cisco):
        a = _route()
        result, step = cisco.explain(a, a)
        assert result == 0 and step is None

    def test_best_path_empty(self, cisco):
        assert best_path([], cisco) is None

    def test_best_path_single(self, cisco):
        only = _route()
        assert best_path([only], cisco) == only
