"""Tests for the ``repro bench diff`` regression gate.

Fixture pair under ``tests/fixtures/bench/``:

* ``baseline.json`` — a trimmed F3 pipeline report.
* ``regressed.json`` — the same report with a planted ~20% slowdown
  on ``wall_seconds`` and ``fib_write_latency.mean``, a planted
  improvement on ``verify.verify_seconds``, a changed counter and an
  added key, so one diff exercises every status.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs.benchdiff import (
    BenchDiff,
    DiffEntry,
    diff_reports,
    exit_code,
    flatten,
    is_perf_key,
    is_resource_key,
    load_report,
)

FIXTURES = Path(__file__).parent / "fixtures" / "bench"
BASELINE = FIXTURES / "baseline.json"
REGRESSED = FIXTURES / "regressed.json"


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


# -- key classification ------------------------------------------------------


class TestPerfKeys:
    @pytest.mark.parametrize(
        "path",
        [
            "wall_seconds",
            "per_stage_wall_seconds.sim.sim.run_wall_seconds",
            "fib_write_latency.mean",
            "metrics.sections.verify.histograms.verify.verify_seconds.p95",
        ],
    )
    def test_time_paths_are_perf(self, path):
        assert is_perf_key(path)

    @pytest.mark.parametrize(
        "path",
        ["episode.incidents", "experiment", "sim.run_events.count"],
    )
    def test_count_paths_are_not_perf(self, path):
        assert not is_perf_key(path)


class TestResourceKeys:
    @pytest.mark.parametrize(
        "path",
        [
            "ledger_peak_bytes",
            "sizes.n16.ledger_peak_bytes",
            "metrics.resource.bytes_total",
        ],
    )
    def test_byte_paths_are_resources(self, path):
        assert is_resource_key(path)
        assert not is_perf_key(path)

    @pytest.mark.parametrize(
        "path",
        ["wall_seconds", "events_per_sec", "hbg_edges"],
    )
    def test_other_paths_are_not_resources(self, path):
        assert not is_resource_key(path)


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = flatten({"a": {"b": [1, {"c": 2}]}, "d": "x"})
        assert flat == {"a.b.0": 1, "a.b.1.c": 2, "d": "x"}

    def test_scalar_document(self):
        assert flatten(3.0, "root") == {"root": 3.0}


# -- diffing -----------------------------------------------------------------


class TestDiffReports:
    def test_identical_reports_have_no_changes(self):
        report = _load(BASELINE)
        diff = diff_reports(report, report)
        assert not diff.has_regression
        assert not diff.has_change
        assert diff.interesting() == []
        assert all(e.status == "ok" for e in diff.entries)

    def test_planted_regression_is_detected(self):
        diff = diff_reports(_load(BASELINE), _load(REGRESSED))
        assert diff.has_regression
        regressed = {e.path for e in diff.regressions}
        assert "wall_seconds" in regressed
        assert "fib_write_latency.mean" in regressed
        wall = next(e for e in diff.entries if e.path == "wall_seconds")
        assert wall.delta_pct == pytest.approx(20.0, abs=0.5)

    def test_planted_improvement_and_changed_and_added(self):
        diff = diff_reports(_load(BASELINE), _load(REGRESSED))
        by_path = {e.path: e for e in diff.entries}
        assert (
            by_path["per_stage_wall_seconds.verify.verify.verify_seconds"]
            .status
            == "improvement"
        )
        # Counters changing with the workload is "changed", never a
        # regression, even though the value moved.
        assert by_path["episode.incidents"].status == "changed"
        assert by_path["notes"].status == "added"

    def test_removed_key(self):
        old = {"wall_seconds": 1.0, "gone": 5}
        diff = diff_reports(old, {"wall_seconds": 1.0})
        [entry] = diff.interesting()
        assert entry.path == "gone" and entry.status == "removed"

    def test_threshold_tolerates_small_drift(self):
        old = {"wall_seconds": 1.0}
        new = {"wall_seconds": 1.15}
        assert not diff_reports(old, new, threshold_pct=20.0).has_regression
        assert diff_reports(old, new, threshold_pct=10.0).has_regression

    def test_min_abs_floor_suppresses_micro_jitter(self):
        # 33% relative blip, but only 1µs absolute — below the floor.
        old = {"op_seconds": 3e-6}
        new = {"op_seconds": 4e-6}
        assert not diff_reports(old, new).has_regression
        assert diff_reports(old, new, min_abs=1e-7).has_regression

    def test_bytes_keys_regress_like_seconds_keys(self):
        old = {"ledger_peak_bytes": 10 * 1024 * 1024}
        new = {"ledger_peak_bytes": 16 * 1024 * 1024}
        diff = diff_reports(old, new, threshold_pct=25.0)
        assert diff.has_regression
        [entry] = diff.regressions
        assert entry.path == "ledger_peak_bytes"

    def test_min_abs_bytes_floor_suppresses_allocator_jitter(self):
        # 50% relative growth, but only 512 KiB absolute — below the
        # default 1 MiB byte floor (and far above the seconds floor,
        # which must not apply to resource keys).
        old = {"ledger_peak_bytes": 1 << 20}
        new = {"ledger_peak_bytes": (1 << 20) + (512 << 10)}
        assert not diff_reports(old, new).has_regression
        assert diff_reports(
            old, new, min_abs_bytes=256 << 10
        ).has_regression

    def test_byte_improvements_are_reported(self):
        old = {"ledger_peak_bytes": 16 * 1024 * 1024}
        new = {"ledger_peak_bytes": 10 * 1024 * 1024}
        [entry] = diff_reports(old, new).interesting()
        assert entry.status == "improvement"

    def test_non_numeric_leaves_compare_by_equality(self):
        diff = diff_reports({"mode": "repair"}, {"mode": "verify"})
        [entry] = diff.interesting()
        assert entry.status == "changed"

    def test_interesting_sorts_worst_first(self):
        diff = diff_reports(_load(BASELINE), _load(REGRESSED))
        statuses = [e.status for e in diff.interesting()]
        assert statuses == sorted(
            statuses,
            key=["regression", "removed", "added", "changed",
                 "improvement", "ok"].index,
        )
        assert statuses[0] == "regression"

    def test_to_dict_round_trips_through_json(self):
        diff = diff_reports(_load(BASELINE), _load(REGRESSED))
        doc = json.loads(json.dumps(diff.to_dict()))
        assert doc["by_status"]["regression"] == len(diff.regressions)
        assert doc["compared_keys"] == len(diff.entries)

    def test_table_lines_render_summary_and_rows(self):
        diff = diff_reports(_load(BASELINE), _load(REGRESSED))
        lines = diff.table_lines()
        assert "regression" in lines[0]
        assert any("wall_seconds" in line for line in lines[1:])


class TestExitCode:
    def _diff(self, *statuses):
        return BenchDiff(
            entries=[DiffEntry(path=f"k{i}", status=s)
                     for i, s in enumerate(statuses)],
            threshold_pct=10.0,
            min_abs=1e-4,
        )

    def test_fail_on_regression(self):
        assert exit_code(self._diff("ok", "changed"), "regression") == 0
        assert exit_code(self._diff("regression"), "regression") == 1

    def test_fail_on_changed(self):
        assert exit_code(self._diff("changed"), "changed") == 1
        assert exit_code(self._diff("ok"), "changed") == 0

    def test_fail_on_never(self):
        assert exit_code(self._diff("regression"), "never") == 0


class TestLoadReport:
    def test_rejects_non_object_documents(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_report(str(path))

    def test_loads_committed_baseline(self):
        # The CI gate diffs against this committed file; keep it valid.
        report = load_report(
            str(
                Path(__file__).resolve().parents[1]
                / "benchmarks"
                / "reports"
                / "baseline"
                / "BENCH_pipeline.json"
            )
        )
        assert report["experiment"] == "F3_fig3_pipeline"
        assert "wall_seconds" in report


# -- CLI ---------------------------------------------------------------------


class TestBenchDiffCli:
    def test_identical_reports_exit_zero(self, capsys):
        rc = cli_main(["bench", "diff", str(BASELINE), str(BASELINE)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench diff:" in out

    def test_planted_regression_exits_nonzero(self, capsys):
        rc = cli_main(["bench", "diff", str(BASELINE), str(REGRESSED)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "wall_seconds" in out

    def test_threshold_flag_raises_the_bar(self, capsys):
        rc = cli_main(
            [
                "bench",
                "diff",
                str(BASELINE),
                str(REGRESSED),
                "--threshold",
                "25",
            ]
        )
        assert rc == 0
        capsys.readouterr()

    def test_fail_on_never_reports_but_passes(self, capsys):
        rc = cli_main(
            [
                "bench",
                "diff",
                str(BASELINE),
                str(REGRESSED),
                "--fail-on",
                "never",
            ]
        )
        assert rc == 0
        assert "regression" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, capsys):
        rc = cli_main(
            ["bench", "diff", str(BASELINE), str(REGRESSED),
             "--format", "json"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["by_status"]["regression"] >= 1

    def test_missing_report_exits_two(self, capsys):
        rc = cli_main(
            ["bench", "diff", str(BASELINE), "/nonexistent/BENCH.json"]
        )
        assert rc == 2
        assert capsys.readouterr().err
