"""Tests for route redistribution into BGP (§4.1's cross-protocol HBRs)."""

import pytest

from repro.capture.io_events import IOKind, RouteAction
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.net.config import (
    BgpNeighborConfig,
    RedistributionConfig,
    RouteMap,
    RouteMapClause,
    RouterConfig,
)
from repro.net.simulator import DelayModel
from repro.net.topology import Router, Topology, line_topology
from repro.protocols.network import Network

DP = Prefix.parse("172.16.0.0/16")
OTHER = Prefix.parse("172.17.0.0/16")


def _delays():
    return DelayModel(
        fib_install=0.001,
        rib_update=0.0005,
        advertisement=0.001,
        config_to_reconfig=0.05,
        spf_compute=0.001,
    )


def _redistribution_network(route_map=None, seed=0):
    """R0 -(DV)- R1 -(eBGP)- ExtPeer.

    R0 originates DP into the DV protocol; R1 redistributes eigrp
    routes into BGP and advertises to the external peer.
    """
    topo = line_topology(2)
    topo.add_router(Router("ExtPeer", asn=65009, loopback=0, external=True))
    topo.connect("R1", "ExtPeer", Prefix.parse("10.251.0.0/30"))

    r0 = RouterConfig(router="R0", asn=65000, dv_enabled=True)
    r0.dv_originated.extend([DP, OTHER])
    r1 = RouterConfig(router="R1", asn=65000, router_id=1, dv_enabled=True)
    r1.add_bgp_neighbor(BgpNeighborConfig(peer="ExtPeer", remote_asn=65009))
    if route_map is not None:
        r1.add_route_map(route_map)
    r1.redistributions.append(
        RedistributionConfig(
            source="eigrp",
            target="bgp",
            route_map=route_map.name if route_map else None,
        )
    )
    ext = RouterConfig(router="ExtPeer", asn=65009, router_id=9)
    ext.add_bgp_neighbor(BgpNeighborConfig(peer="R1", remote_asn=65000))

    net = Network(topo, [r0, r1, ext], seed=seed, delays=_delays())
    net.start()
    return net


class TestEigrpIntoBgp:
    def test_redistributed_route_advertised_externally(self):
        net = _redistribution_network()
        net.run(5)
        ext_best = net.runtime("ExtPeer").bgp.rib.best(DP)
        assert ext_best is not None
        assert ext_best.as_path == (65000,)

    def test_redistributed_origin_incomplete(self):
        from repro.protocols.routes import Origin

        net = _redistribution_network()
        net.run(5)
        best = net.runtime("R1").bgp.rib.best(DP)
        assert best is not None
        assert best.origin is Origin.INCOMPLETE
        assert best.locally_originated

    def test_withdrawal_propagates_through_redistribution(self):
        net = _redistribution_network()
        net.run(5)
        assert net.runtime("ExtPeer").bgp.rib.best(DP) is not None
        net.fail_link("R0", "R1")
        net.run(5)
        assert net.runtime("ExtPeer").bgp.rib.best(DP) is None

    def test_route_map_filters_redistribution(self):
        selective = RouteMap(
            "only-dp", (RouteMapClause(match_prefix=DP, match_exact=True),)
        )
        net = _redistribution_network(route_map=selective)
        net.run(5)
        ext = net.runtime("ExtPeer").bgp.rib
        assert ext.best(DP) is not None
        assert ext.best(OTHER) is None

    def test_fib_uses_igp_not_bgp_at_redistributor(self):
        """Admin distance: the DV route (90) wins over the
        redistributed BGP self-route at R1."""
        net = _redistribution_network()
        net.run(5)
        entry = net.runtime("R1").fib.get(DP)
        assert entry is not None and entry.protocol == "eigrp"


class TestCrossProtocolHbr:
    def test_ground_truth_chain_crosses_protocols(self):
        net = _redistribution_network()
        net.run(5)
        # ExtPeer is external (unobservable); check R1's BGP RIB event
        # traces back to R1's eigrp RIB event.
        bgp_rib = net.collector.query(
            router="R1", kind=IOKind.RIB_UPDATE, protocol="bgp", prefix=DP
        )
        assert bgp_rib
        causes = net.ground_truth.transitive_causes(bgp_rib[0].event_id)
        cause_events = [
            net.collector.get(i) for i in causes if net.collector.has(i)
        ]
        assert any(
            e.protocol == "eigrp" and e.kind is IOKind.RIB_UPDATE
            for e in cause_events
        )

    def test_inference_recovers_redistribution_edge(self):
        net = _redistribution_network()
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        bgp_rib = net.collector.query(
            router="R1", kind=IOKind.RIB_UPDATE, protocol="bgp", prefix=DP
        )[0]
        parents = graph.parents(bgp_rib.event_id)
        assert any(
            parent.protocol == "eigrp"
            and parent.kind is IOKind.RIB_UPDATE
            and evidence.rule == "redistribute-rib-to-rib"
            for parent, evidence in parents
        )

    def test_provenance_of_external_leak_reaches_igp(self):
        """Root-causing a BGP advertisement leads back through the
        redistribution boundary into the IGP event chain."""
        from repro.repair.provenance import ProvenanceTracer

        net = _redistribution_network()
        net.run(5)
        graph = InferenceEngine().build_graph(net.collector.all_events())
        send = net.collector.query(
            router="R1",
            kind=IOKind.ROUTE_SEND,
            protocol="bgp",
            prefix=DP,
            peer="ExtPeer",
        )[0]
        result = ProvenanceTracer(graph).trace(send.event_id)
        ancestor_protocols = {
            graph.event(i).protocol for i in result.ancestry
        }
        assert "eigrp" in ancestor_protocols
