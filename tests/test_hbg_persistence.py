"""Tests for HBG serialisation and pruning."""

import json

import pytest

from repro.hbr.inference import InferenceEngine
from repro.hbr.graph import HappensBeforeGraph
from repro.scenarios.fig2 import Fig2Scenario


@pytest.fixture
def fig2_graph(fast_delays):
    scenario = Fig2Scenario(seed=0, delays=fast_delays)
    net = scenario.run_fig2a()
    graph = InferenceEngine().build_graph(net.collector.all_events())
    return scenario, net, graph


class TestSerialisation:
    def test_round_trip_preserves_structure(self, fig2_graph):
        _scenario, _net, graph = fig2_graph
        restored = HappensBeforeGraph.from_records(graph.to_records())
        assert len(restored) == len(graph)
        assert restored.edge_set() == graph.edge_set()

    def test_round_trip_preserves_evidence(self, fig2_graph):
        _scenario, _net, graph = fig2_graph
        restored = HappensBeforeGraph.from_records(graph.to_records())
        original_rules = {
            (e.cause, e.effect): (e.evidence.rule, e.evidence.confidence)
            for e in graph.edges()
        }
        for edge in restored.edges():
            assert original_rules[(edge.cause, edge.effect)] == (
                edge.evidence.rule,
                edge.evidence.confidence,
            )

    def test_json_safe(self, fig2_graph):
        _scenario, _net, graph = fig2_graph
        text = json.dumps(graph.to_records())
        restored = HappensBeforeGraph.from_records(json.loads(text))
        assert restored.edge_set() == graph.edge_set()

    def test_provenance_works_on_restored_graph(self, fig2_graph):
        from repro.capture.io_events import IOKind
        from repro.repair.provenance import ProvenanceTracer
        from repro.scenarios.paper_net import P

        scenario, net, graph = fig2_graph
        restored = HappensBeforeGraph.from_records(graph.to_records())
        config = net.collector.query(router="R2", kind=IOKind.CONFIG_CHANGE)[0]
        fibs = [
            e
            for e in net.collector.query(
                router="R1", kind=IOKind.FIB_UPDATE, prefix=P
            )
            if e.timestamp > config.timestamp
        ]
        target = max(fibs, key=lambda e: e.timestamp)
        result = ProvenanceTracer(restored).trace(target.event_id)
        assert config.event_id in {e.event_id for e in result.root_causes}


class TestPruning:
    def test_prune_drops_old_events(self, fig2_graph):
        scenario, _net, graph = fig2_graph
        before = len(graph)
        dropped = graph.prune_before(scenario.t_change)
        assert dropped > 0
        assert len(graph) == before - dropped
        for event in graph.events():
            assert event.timestamp >= scenario.t_change

    def test_prune_keeps_recent_edges_intact(self, fig2_graph):
        scenario, _net, graph = fig2_graph
        kept_edges_before = {
            (e.cause, e.effect)
            for e in graph.edges()
            if graph.event(e.cause).timestamp >= scenario.t_change
            and graph.event(e.effect).timestamp >= scenario.t_change
        }
        graph.prune_before(scenario.t_change)
        assert graph.edge_set() == kept_edges_before

    def test_prune_everything(self, fig2_graph):
        _scenario, _net, graph = fig2_graph
        graph.prune_before(float("inf"))
        assert len(graph) == 0
        assert graph.edge_count() == 0

    def test_prune_nothing(self, fig2_graph):
        _scenario, _net, graph = fig2_graph
        before_edges = graph.edge_set()
        assert graph.prune_before(float("-inf")) == 0
        assert graph.edge_set() == before_edges

    def test_traversal_safe_after_prune(self, fig2_graph):
        scenario, _net, graph = fig2_graph
        graph.prune_before(scenario.t_change)
        for event in graph.events():
            graph.ancestors(event.event_id)
            graph.descendants(event.event_id)
        graph.topological_order()
