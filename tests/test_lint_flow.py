"""Tests for the whole-program analyzer: call graph, dataflow, rules.

Mirrors tests/test_lint.py's structure one level up: the fixture
corpus under tests/fixtures/lint/flow_* exercises the deep rule
family (DET100, CONC001-003), and the unit tests below poke the
call-graph builder and the fixpoint dataflow engine directly.
"""

import ast
import os
import time

from repro.cli import main as cli_main
from repro.lint import LintRunner
from repro.lint.callgraph import build_project
from repro.lint.dataflow import ReachabilityAnalysis, TaintAnalysis
from repro.lint.rules import concurrency, det_flow

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "lint")
SRC = os.path.join(REPO_ROOT, "src", "repro")


def make_project(**modules):
    """module name (dots as __) -> source text, parsed into a Project."""
    files = []
    for module, source in modules.items():
        dotted = module.replace("__", ".")
        files.append((f"<{dotted}>", dotted, ast.parse(source)))
    return build_project(files)


def deep_fixture(*names):
    paths = [os.path.join(FIXTURES, name) for name in names]
    return LintRunner(deep=True).run_paths(paths)


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# -- call-graph builder ----------------------------------------------------


def test_callgraph_direct_and_method_calls():
    project = make_project(
        repro__x__m=(
            "class Engine:\n"
            "    def run(self):\n"
            "        return self.step()\n"
            "    def step(self):\n"
            "        return tick()\n"
            "\n"
            "def tick():\n"
            "    return 1\n"
            "\n"
            "def drive():\n"
            "    engine = Engine()\n"
            "    return engine.run()\n"
        )
    )
    def callee_names(qname):
        return {edge.dst for edge in project.callees(qname)}

    assert "repro.x.m.Engine.run" in callee_names("repro.x.m.drive")
    assert "repro.x.m.Engine.step" in callee_names("repro.x.m.Engine.run")
    assert "repro.x.m.tick" in callee_names("repro.x.m.Engine.step")


def test_callgraph_decorator_edge():
    project = make_project(
        repro__x__m=(
            "def deco(fn):\n"
            "    return fn\n"
            "\n"
            "@deco\n"
            "def target():\n"
            "    pass\n"
        )
    )
    kinds = {
        (edge.dst, edge.kind) for edge in project.callees("repro.x.m.target")
    }
    assert ("repro.x.m.deco", "decorator") in kinds


def test_callgraph_aliased_imports():
    project = make_project(
        repro__x__base=("def helper():\n    return 1\n"),
        repro__x__use=(
            "import repro.x.base as b\n"
            "from repro.x.base import helper as h\n"
            "\n"
            "def via_module():\n"
            "    return b.helper()\n"
            "\n"
            "def via_name():\n"
            "    return h()\n"
        ),
    )
    for src in ("repro.x.use.via_module", "repro.x.use.via_name"):
        assert "repro.x.base.helper" in {
            edge.dst for edge in project.callees(src)
        }, src


def test_callgraph_function_valued_arguments():
    project = make_project(
        repro__x__m=(
            "def apply(fn):\n"
            "    return fn()\n"
            "\n"
            "def tick():\n"
            "    return 1\n"
            "\n"
            "def go():\n"
            "    return apply(tick)\n"
        )
    )
    # Calling an opaque function-valued parameter creates no edge
    # (documented precision boundary — no false positives from it)...
    assert {e.dst for e in project.callees("repro.x.m.apply")} == set()
    # ...but passing the function records a reference edge, so
    # reachability still sees `tick` behind `go`.
    go_edges = {(e.dst, e.kind) for e in project.callees("repro.x.m.go")}
    assert ("repro.x.m.apply", "call") in go_edges
    assert ("repro.x.m.tick", "ref") in go_edges


def test_callgraph_param_type_binding_through_callers():
    project = make_project(
        repro__x__m=(
            "class Engine:\n"
            "    def step(self):\n"
            "        return 1\n"
            "\n"
            "def run(engine):\n"
            "    return engine.step()\n"
            "\n"
            "def main():\n"
            "    engine = Engine()\n"
            "    return run(engine)\n"
        )
    )
    # `run` learns engine: Engine from its caller's argument.
    assert "repro.x.m.Engine.step" in {
        edge.dst for edge in project.callees("repro.x.m.run")
    }


def test_fork_and_thread_roots():
    project = make_project(
        repro__x__m=(
            "import multiprocessing\n"
            "import threading\n"
            "\n"
            "def worker(item):\n"
            "    return item\n"
            "\n"
            "def poller():\n"
            "    return None\n"
            "\n"
            "def fan_out(items):\n"
            "    with multiprocessing.get_context('fork').Pool(2) as pool:\n"
            "        return pool.map(worker, items)\n"
            "\n"
            "def spawn():\n"
            "    threading.Thread(target=poller, daemon=True).start()\n"
        )
    )
    assert [w for w, _s, _l in project.fork_roots()] == ["repro.x.m.worker"]
    assert [t for t, _w, _l in project.thread_roots()] == ["repro.x.m.poller"]


# -- dataflow engine -------------------------------------------------------


def test_taint_propagates_with_shortest_chain():
    project = make_project(
        repro__x__m=(
            "import time\n"
            "\n"
            "def sink():\n"
            "    return time.time()\n"
            "\n"
            "def middle():\n"
            "    return sink()\n"
            "\n"
            "def top():\n"
            "    return middle()\n"
            "\n"
            "def top_direct():\n"
            "    return sink()\n"
        )
    )
    taint = TaintAnalysis(
        project, det_flow.classify_sink, det_flow.is_sanitizer
    )
    assert set(taint.chains) == {
        "repro.x.m.sink",
        "repro.x.m.middle",
        "repro.x.m.top",
        "repro.x.m.top_direct",
    }
    # top's chain routes through middle; top_direct's is one hop.
    assert len(taint.chains["repro.x.m.top"]) == 3
    assert len(taint.chains["repro.x.m.top_direct"]) == 2
    assert "wall clock" in taint.sink_label("repro.x.m.top")
    evidence = taint.evidence("repro.x.m.top")
    assert any("middle" in hop for hop in evidence)
    assert any("time.time" in hop for hop in evidence)


def test_taint_cut_at_sanitizer_module():
    project = make_project(
        repro__obs__clock=(
            "import time\n"
            "\n"
            "def now():\n"
            "    return time.time()\n"
        ),
        repro__hbr__use=(
            "from repro.obs.clock import now\n"
            "\n"
            "def build():\n"
            "    return now()\n"
        ),
    )
    taint = TaintAnalysis(
        project, det_flow.classify_sink, det_flow.is_sanitizer
    )
    # The obs helper itself is tainted, but the taint stops there.
    assert "repro.obs.clock.now" in taint.chains
    assert "repro.hbr.use.build" not in taint.chains


def test_reachability_lock_state_is_all_paths_meet():
    project = make_project(
        repro__x__m=(
            "import threading\n"
            "\n"
            "LOCK = threading.Lock()\n"
            "\n"
            "def handler():\n"
            "    with LOCK:\n"
            "        locked_path()\n"
            "    free_path()\n"
            "\n"
            "def locked_path():\n"
            "    mutate()\n"
            "\n"
            "def free_path():\n"
            "    mutate()\n"
            "\n"
            "def mutate():\n"
            "    pass\n"
        )
    )
    reach = ReachabilityAnalysis(project, ["repro.x.m.handler"])
    assert reach.state["repro.x.m.locked_path"] is True
    assert reach.state["repro.x.m.free_path"] is False
    # mutate is reachable both ways; the meet is "not always locked".
    assert reach.state["repro.x.m.mutate"] is False
    assert any("handler" in hop for hop in reach.evidence("repro.x.m.mutate"))


# -- DET100 ----------------------------------------------------------------


def test_det100_fixture_pair():
    bad = deep_fixture("flow_det100_bad.py")
    assert rules_fired(bad) == ["DET100"]
    # Both the direct reader and its transitive caller are flagged.
    assert len(bad.findings) == 2
    good = deep_fixture("flow_obs_watch.py", "flow_det100_good.py")
    assert rules_fired(good) == []


def test_det100_cross_module_chain():
    result = deep_fixture("flow_entropy_helper.py", "flow_det100_cross.py")
    assert rules_fired(result) == ["DET100"]
    cross = [
        f for f in result.findings if f.module == "repro.snapshot.flowcross"
    ]
    assert len(cross) == 1
    assert "entropy" in cross[0].message
    # The evidence chain crosses the module boundary down to the sink.
    assert any("flowentropy.fresh_id" in hop for hop in cross[0].evidence)
    assert any("uuid.uuid4" in hop for hop in cross[0].evidence)


def test_det100_silent_in_fast_mode():
    result = LintRunner().run_paths(
        [os.path.join(FIXTURES, "flow_det100_bad.py")]
    )
    assert rules_fired(result) == []


# -- CONC001-003 -----------------------------------------------------------


def test_conc001_fixture_pair():
    bad = deep_fixture("flow_conc001_bad.py")
    assert rules_fired(bad) == ["CONC001"]
    [finding] = bad.findings
    assert "RESULTS" in finding.message
    assert "dies with the worker" in finding.message
    # Evidence walks from the fork fan-out down to the write.
    assert any("fan_out" in hop for hop in finding.evidence)
    assert rules_fired(deep_fixture("flow_conc001_good.py")) == []


def test_conc002_fixture_pair():
    bad = deep_fixture("flow_conc002_bad.py")
    assert rules_fired(bad) == ["CONC002"]
    [finding] = bad.findings
    assert "without holding a lock" in finding.message
    assert rules_fired(deep_fixture("flow_conc002_good.py")) == []


def test_conc003_shared_global_across_stages():
    result = deep_fixture(
        "flow_shared_state.py", "flow_stage_capture.py", "flow_stage_hbr.py"
    )
    assert rules_fired(result) == ["CONC003"]
    [finding] = result.findings
    assert "SEEN" in finding.message
    # Both stages appear in the message and the per-stage evidence.
    assert "capture" in finding.message and "hbr" in finding.message
    assert any(hop.startswith("stage 'capture'") for hop in finding.evidence)
    assert any(hop.startswith("stage 'hbr'") for hop in finding.evidence)


def test_conc003_single_stage_is_fine():
    result = deep_fixture("flow_shared_state.py", "flow_stage_capture.py")
    assert rules_fired(result) == []


def test_deep_findings_carry_evidence():
    for fixtures in (
        ("flow_det100_bad.py",),
        ("flow_conc001_bad.py",),
        ("flow_conc002_bad.py",),
    ):
        result = deep_fixture(*fixtures)
        assert result.findings
        for finding in result.findings:
            assert finding.evidence, finding


def test_deep_pragma_suppression():
    source = (
        "# repro: lint-module=repro.hbr.flowprag\n"
        "import os\n"
        "\n"
        "def salted():  # repro: lint-ignore[DET100] -- documented\n"
        "    return os.getenv('X')\n"
    )
    result = LintRunner(deep=True).run_source(source, path="<prag>")
    assert result.findings == []
    assert result.suppressed_by_pragma == 1


# -- analysis cache --------------------------------------------------------


def test_deep_cache_cold_then_warm(tmp_path):
    cache_dir = str(tmp_path / "cache")
    paths = [os.path.join(FIXTURES, "flow_det100_bad.py")]
    cold = LintRunner(deep=True, cache_dir=cache_dir).run_paths(paths)
    assert cold.cache_hit is False
    warm = LintRunner(deep=True, cache_dir=cache_dir).run_paths(paths)
    assert warm.cache_hit is True
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]


def test_deep_cache_invalidated_by_content_change(tmp_path):
    cache_dir = str(tmp_path / "cache")
    target = tmp_path / "flow_edit.py"
    source = (
        "# repro: lint-module=repro.hbr.flowedit\n"
        "import os\n"
        "def salted():\n"
        "    return os.getenv('X')\n"
    )
    target.write_text(source)
    first = LintRunner(deep=True, cache_dir=cache_dir).run_paths([str(target)])
    assert first.cache_hit is False and len(first.findings) == 1
    target.write_text(source.replace("os.getenv('X')", "'fixed'"))
    second = LintRunner(deep=True, cache_dir=cache_dir).run_paths(
        [str(target)]
    )
    assert second.cache_hit is False
    assert second.findings == []


def test_deep_cache_replays_pragma_hits(tmp_path):
    """A pragma consumed by a cached deep finding stays consumed, so
    HYG004 answers identically warm and cold."""
    cache_dir = str(tmp_path / "cache")
    target = tmp_path / "flow_prag.py"
    target.write_text(
        "# repro: lint-module=repro.hbr.flowprag2\n"
        "import os\n"
        "def salted():  # repro: lint-ignore[DET100] -- documented\n"
        "    return os.getenv('X')\n"
    )
    cold = LintRunner(deep=True, cache_dir=cache_dir).run_paths([str(target)])
    warm = LintRunner(deep=True, cache_dir=cache_dir).run_paths([str(target)])
    assert warm.cache_hit is True
    for result in (cold, warm):
        assert result.findings == []  # no HYG004 "unused pragma"
        assert result.suppressed_by_pragma == 1


# -- changed-files mode ----------------------------------------------------


def test_restrict_to_limits_single_file_rules():
    det001 = os.path.join(FIXTURES, "det001_bad.py")
    hyg002 = os.path.join(FIXTURES, "hyg002_bad.py")
    full = LintRunner().run_paths([det001, hyg002])
    assert rules_fired(full) == ["DET001", "HYG002"]
    changed = LintRunner().run_paths(
        [det001, hyg002], restrict_to={hyg002}
    )
    assert rules_fired(changed) == ["HYG002"]
    assert changed.files_scanned == 1


def test_restricted_files_still_feed_whole_program_rules():
    """--changed narrows the single-file rules, not the call graph."""
    helper = os.path.join(FIXTURES, "flow_entropy_helper.py")
    cross = os.path.join(FIXTURES, "flow_det100_cross.py")
    result = LintRunner(deep=True).run_paths(
        [helper, cross], restrict_to={cross}
    )
    # The cross-module DET100 finding needs the (unchanged) helper's
    # definitions in the call graph to resolve the chain.
    assert "DET100" in rules_fired(result)
    cross_findings = [
        f for f in result.findings if f.module == "repro.snapshot.flowcross"
    ]
    assert any("uuid.uuid4" in hop
               for f in cross_findings for hop in f.evidence)


def test_cli_changed_mode_runs(capsys):
    old_cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        rc = cli_main(["lint", "--changed", "--fail-on", "error"])
    finally:
        os.chdir(old_cwd)
    capsys.readouterr()
    assert rc == 0


def test_cli_changed_scans_exactly_the_edited_files(tmp_path, capsys):
    """End to end: edit one tracked file, --changed dispatches only it.

    Guards the path-form contract between ``_changed_files`` (absolute,
    git-toplevel anchored) and the engine's restrict_to matching — a
    mismatch silently restricts *every* file to zero findings.
    """
    import json
    import subprocess

    repo = tmp_path / "mini"
    repo.mkdir()
    clean = repo / "clean.py"
    clean.write_text("def ok():\n    return 1\n")
    edited = repo / "edited.py"
    edited.write_text("def ok():\n    return 2\n")
    env = {
        "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
        "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
        "HOME": str(tmp_path), "PATH": os.environ["PATH"],
    }
    for cmd in (
        ["git", "init", "-q"],
        ["git", "add", "clean.py", "edited.py"],
        ["git", "commit", "-q", "-m", "seed"],
    ):
        subprocess.run(cmd, cwd=repo, env=env, check=True)
    edited.write_text("def bad(x={}):\n    return x\n")  # HYG001

    old_cwd = os.getcwd()
    os.chdir(repo)
    try:
        rc = cli_main([
            "lint", str(repo), "--changed", "--baseline", "none",
            "--format", "json",
        ])
    finally:
        os.chdir(old_cwd)
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["summary"]["files_scanned"] == 1
    assert [f["rule"] for f in doc["findings"]] == ["HYG001"]
    assert doc["findings"][0]["path"].endswith("edited.py")


# -- HYG004 ----------------------------------------------------------------


def test_hyg004_flags_unused_pragma():
    result = LintRunner().run_source(
        "# repro: lint-module=repro.net.fake\n"
        "X = 1  # repro: lint-ignore[DET001]\n",
        path="<f>",
    )
    assert rules_fired(result) == ["HYG004"]
    assert "DET001" in result.findings[0].message


def test_hyg004_multi_rule_pragma_partial_use():
    # DET001 fires and is suppressed; CONC001 never had a finding
    # there, but it is a deep rule not run in fast mode, so no HYG004.
    result = LintRunner().run_source(
        "# repro: lint-module=repro.net.fake\n"
        "import time  # repro: lint-ignore[DET001,CONC001]\n",
        path="<f>",
    )
    assert result.findings == []
    assert result.suppressed_by_pragma == 1


def test_hyg004_unknown_rule_name():
    result = LintRunner().run_source(
        "# repro: lint-module=repro.net.fake\n"
        "X = 1  # repro: lint-ignore[NOPE999]\n",
        path="<f>",
    )
    assert rules_fired(result) == ["HYG004"]
    assert "unknown rule name" in result.findings[0].message


def test_hyg004_itself_suppressible():
    # Two pragma comments on one line: HYG004 suppression of the
    # unused-DET001 report, exercising finditer-based pragma scanning.
    result = LintRunner().run_source(
        "# repro: lint-module=repro.net.fake\n"
        "X = 1  # repro: lint-ignore[DET001]  # repro: lint-ignore[HYG004]\n",
        path="<f>",
    )
    assert result.findings == []


# -- CLI integration -------------------------------------------------------


def test_cli_deep_fixture_table_shows_chain(capsys):
    rc = cli_main(
        [
            "lint",
            os.path.join(FIXTURES, "flow_conc001_bad.py"),
            "--deep",
            "--no-cache",
            "--baseline",
            "none",
            "--fail-on",
            "error",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "CONC001" in out
    assert "call chain for CONC001" in out
    assert "fan_out" in out


def test_cli_deep_json_includes_evidence_and_cache_state(capsys):
    import json

    rc = cli_main(
        [
            "lint",
            os.path.join(FIXTURES, "flow_det100_bad.py"),
            "--deep",
            "--no-cache",
            "--baseline",
            "none",
            "--format",
            "json",
            "--fail-on",
            "never",
        ]
    )
    assert rc == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["deep"] is True
    assert document["summary"]["analysis_cache"] == "disabled"
    assert document["summary"]["analysis_seconds"] >= 0
    assert all(f["evidence"] for f in document["findings"])


# -- the live repo ---------------------------------------------------------


def test_self_check_repo_is_deep_clean(capsys):
    rc = cli_main(
        [
            "lint",
            SRC,
            "--deep",
            "--no-cache",
            "--baseline",
            os.path.join(REPO_ROOT, "lint-baseline.json"),
            "--fail-on",
            "error",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, f"repo has deep lint findings:\n{out}"


def test_analyzer_detects_unsynchronized_registry(monkeypatch):
    """Re-create the defect this analyzer originally found: with the
    registry's internally-synchronized contract revoked, the metrics
    endpoint's handler-thread reads race the owner thread's metric
    creation, and CONC002 must say so."""
    monkeypatch.setattr(concurrency, "SELF_SYNCHRONIZED", frozenset())
    result = LintRunner(deep=True).run_paths([SRC])
    conc002 = [f for f in result.findings if f.rule == "CONC002"]
    assert conc002, "emptying SELF_SYNCHRONIZED must resurface the race"
    assert any("MetricsRegistry" in f.message for f in conc002)


def test_deep_runtime_bounds(tmp_path):
    cache_dir = str(tmp_path / "cache")
    started = time.perf_counter()
    cold = LintRunner(deep=True, cache_dir=cache_dir).run_paths([SRC])
    cold_seconds = time.perf_counter() - started
    assert cold.cache_hit is False
    assert cold_seconds < 10.0, f"cold deep lint took {cold_seconds:.1f}s"
    started = time.perf_counter()
    warm = LintRunner(deep=True, cache_dir=cache_dir).run_paths([SRC])
    warm_seconds = time.perf_counter() - started
    assert warm.cache_hit is True
    assert warm_seconds < 2.0, f"warm deep lint took {warm_seconds:.1f}s"


def test_baseline_must_stay_empty():
    """The grandfathered-debt ratchet: the committed baseline burned
    down to zero in this change set and must never regrow.  Add a
    pragma with a justification instead of a baseline entry."""
    import json

    with open(os.path.join(REPO_ROOT, "lint-baseline.json")) as handle:
        document = json.load(handle)
    assert document["findings"] == {}
