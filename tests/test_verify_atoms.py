"""Property and metamorphic tests for the atom partition
(:mod:`repro.verify.atoms`) — the Delta-net-style address-space
refinement the incremental verifier scopes its re-checks with.

The properties that make atoms usable as a verification index:

* **disjoint + cover** — the atoms partition [0, 2^32) exactly;
* **minimal refinement** — inserting one prefix adds at most two
  boundaries (its first address and one-past-its-last);
* **order independence** — any insertion order of the same prefix set
  yields a byte-identical table (``to_bytes``), because boundaries
  are monotone: nothing is ever merged away;
* **query coherence** — ``atom_of`` and ``atoms_within`` agree with
  the boundary list.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.net.addr import IPV4_MAX, Prefix
from repro.verify.atoms import AtomTable

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_END = IPV4_MAX + 1


def _random_prefixes(seed, count):
    rng = random.Random(f"atoms/{seed}")
    prefixes = []
    for _ in range(count):
        length = rng.randint(0, 32)
        prefixes.append(Prefix(rng.randint(0, IPV4_MAX), length))
    return prefixes


class TestPartitionProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_atoms_disjoint_and_cover(self, seed):
        table = AtomTable()
        for prefix in _random_prefixes(seed, 40):
            table.ensure(prefix)
        atoms = table.atoms()
        assert atoms[0][0] == 0
        assert atoms[-1][1] == _END
        for (a_start, a_end), (b_start, _b_end) in zip(atoms, atoms[1:]):
            assert a_start < a_end
            assert a_end == b_start  # contiguous => disjoint + covering

    @pytest.mark.parametrize("seed", range(5))
    def test_ensure_adds_at_most_two_boundaries(self, seed):
        table = AtomTable()
        for prefix in _random_prefixes(seed, 40):
            before = table.atom_count()
            added = table.ensure(prefix)
            assert 0 <= added <= 2
            assert table.atom_count() == before + added
            # Re-inserting is a no-op: the refinement is minimal.
            assert table.ensure(prefix) == 0

    def test_prefix_boundaries_land_exactly(self):
        table = AtomTable()
        prefix = Prefix.parse("10.0.0.0/8")
        table.ensure(prefix)
        bounds = table.boundaries()
        assert prefix.first_address() in bounds
        assert prefix.last_address() + 1 in bounds

    def test_universe_prefix_adds_nothing(self):
        table = AtomTable()
        assert table.ensure(Prefix(0, 0)) == 0
        assert table.atom_count() == 1


class TestOrderIndependence:
    @pytest.mark.parametrize("seed", range(4))
    def test_permutation_byte_identity(self, seed):
        prefixes = _random_prefixes(seed, 30)
        reference = AtomTable()
        for prefix in prefixes:
            reference.ensure(prefix)
        rng = random.Random(f"perm/{seed}")
        for _ in range(5):
            shuffled = list(prefixes)
            rng.shuffle(shuffled)
            table = AtomTable()
            for prefix in shuffled:
                table.ensure(prefix)
            assert table.to_bytes() == reference.to_bytes()

    def test_withdraw_has_no_inverse(self):
        """Atoms are monotone: the table never coarsens, so replaying
        announce/withdraw churn in any interleaving converges to the
        same partition (what the incremental verifier relies on)."""
        table = AtomTable()
        table.ensure(Prefix.parse("10.0.0.0/8"))
        frozen = table.to_bytes()
        # There is deliberately no remove(); re-ensure is idempotent.
        table.ensure(Prefix.parse("10.0.0.0/8"))
        assert table.to_bytes() == frozen


class TestQueries:
    def test_atom_of_matches_atoms_within(self):
        table = AtomTable()
        overlapping = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("10.1.2.0/24"),
            Prefix.parse("192.168.0.0/16"),
        ]
        for prefix in overlapping:
            table.ensure(prefix)
        for prefix in overlapping:
            atoms = table.atoms_within(prefix)
            # The union of the returned atoms is exactly the prefix range.
            assert atoms[0][0] == prefix.first_address()
            assert atoms[-1][1] == prefix.last_address() + 1
            for (a_start, a_end), (b_start, _b) in zip(atoms, atoms[1:]):
                assert a_end == b_start
            for start, end in atoms:
                assert table.atom_of(start) == (start, end)
                assert table.atom_of(end - 1) == (start, end)

    def test_nested_prefixes_refine(self):
        table = AtomTable()
        table.ensure(Prefix.parse("10.0.0.0/8"))
        assert len(table.atoms_within(Prefix.parse("10.0.0.0/8"))) == 1
        table.ensure(Prefix.parse("10.1.0.0/16"))
        # The /8 now spans three atoms: before, the /16, and after.
        assert len(table.atoms_within(Prefix.parse("10.0.0.0/8"))) == 3
        assert len(table.atoms_within(Prefix.parse("10.1.0.0/16"))) == 1

    def test_atom_of_out_of_range(self):
        table = AtomTable()
        with pytest.raises(ValueError):
            table.atom_of(-1)
        with pytest.raises(ValueError):
            table.atom_of(_END)


# Cross-process determinism, the hostile-hash-seed variant the DET
# rules guard elsewhere: the canonical byte form must not depend on
# interpreter hash randomisation (sets/dicts leaking into ordering).
_SCRIPT = """
import random
from repro.net.addr import IPV4_MAX, Prefix
from repro.verify.atoms import AtomTable

rng = random.Random("atoms/xproc")
table = AtomTable()
for _ in range(200):
    table.ensure(Prefix(rng.randint(0, IPV4_MAX), rng.randint(0, 32)))
print(table.atom_count())
print(table.to_bytes().decode("ascii"))
"""


def _run(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_atom_table_byte_identical_across_processes():
    first = _run("1")
    second = _run("2")
    assert first == second
    assert int(first.splitlines()[0]) > 1
