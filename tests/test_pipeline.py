"""Tests for the integrated Fig. 3 pipeline."""

import pytest

from repro.core.pipeline import (
    IntegratedControlPlane,
    PipelineIncident,
    PipelineMode,
)
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, paper_policy
from repro.verify.policy import LoopFreedomPolicy


def _armed_fig2(fast_delays, mode, seed=0):
    scenario = Fig2Scenario(seed=seed, delays=fast_delays)
    net = scenario.run_baseline()
    pipeline = IntegratedControlPlane(
        net, [paper_policy(), LoopFreedomPolicy(prefixes=[P])], mode=mode
    ).arm()
    return scenario, net, pipeline


class TestRepairMode:
    def test_bad_update_blocked_and_repaired(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert pipeline.incidents
        assert pipeline.updates_blocked >= 1
        # The root cause was reverted...
        lp = net.configs.get("R2").route_maps["r2-uplink-lp"]
        assert lp.clauses[0].set_local_pref == 30
        # ...and the data plane never left the compliant state.
        assert not scenario.violates_policy()

    def test_data_plane_never_violates_during_episode(self, fast_delays):
        """The headline: with the guard armed, the policy holds at
        every instant, not just at convergence."""
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        net.apply_config_change(bad_lp_change())
        # Step the simulation and check the live data plane throughout.
        for _ in range(100):
            net.run(0.4)
            assert not scenario.violates_policy()

    def test_incident_carries_provenance(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        change = bad_lp_change()
        net.apply_config_change(change)
        net.run(30)
        incident = pipeline.incidents[0]
        assert incident.provenance is not None
        assert change.change_id in incident.provenance.config_change_ids()
        assert incident.repair is not None
        assert any(a.succeeded for a in incident.repair.actions)

    def test_root_cause_reverted_once(self, fast_delays):
        """Several routers' updates stem from one change; it must be
        reverted exactly once."""
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        net.apply_config_change(bad_lp_change())
        net.run(60)
        reverts = [
            change
            for change in net.configs.changes("R2")
            if change.description.startswith("revert")
        ]
        assert len(reverts) == 1

    def test_legitimate_convergence_not_blocked(self, fast_delays):
        """Fig. 1b's convergence passes through the armed guard."""
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.fig1.run_fig1a()
        pipeline = IntegratedControlPlane(
            net, [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
            mode=PipelineMode.REPAIR,
        ).arm()
        net.announce_prefix("Ext2", P)
        net.run(10)
        assert pipeline.updates_blocked == 0
        path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext2"

    def test_summary_readable(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        text = pipeline.summary()
        assert "blocked" in text and "incident" in text


class TestBlockMode:
    def test_blocks_without_repair(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.BLOCK)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert pipeline.updates_blocked >= 1
        # No revert happened: the bad LP stays.
        lp = net.configs.get("R2").route_maps["r2-uplink-lp"]
        assert lp.clauses[0].set_local_pref == 10
        # Data plane protected for now (the frozen-FIB hazard remains).
        assert not scenario.violates_policy()

    def test_block_mode_leaves_divergence(self, fast_delays):
        """BLOCK mode protects the data plane but leaves the control
        plane believing something else — the §2 criticism."""
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.BLOCK)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        r1 = net.runtime("R1")
        best = r1.bgp.rib.best(P)
        fib = r1.fib.get(P)
        resolved = r1.resolve_next_hop(best.next_hop)
        assert resolved is not None
        assert fib.next_hop_router != resolved[0]  # belief != reality


class TestMonitorMode:
    def test_monitor_allows_and_records(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.MONITOR)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert pipeline.incidents
        assert pipeline.updates_blocked == 0
        assert scenario.violates_policy()  # damage done, but recorded

    def test_monitor_incidents_not_blocked_flag(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.MONITOR)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert all(not incident.blocked for incident in pipeline.incidents)


class TestOfflineDetectAndRepair:
    def test_detect_and_repair_fig2(self, fast_delays):
        """§6 variant 1: detect on a consistent snapshot after the
        fact, trace, revert."""
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_fig2a()
        assert scenario.violates_policy()
        pipeline = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.REPAIR
        )
        violations, repair = pipeline.detect_and_repair(settle=30.0)
        assert violations
        assert repair is not None and repair.repaired
        assert not scenario.violates_policy()

    def test_detect_on_clean_network(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        pipeline = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.REPAIR
        )
        violations, repair = pipeline.detect_and_repair()
        assert violations == [] and repair is None


class TestHbgMaintenance:
    def test_hbg_grows_with_events(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        before = len(pipeline.hbg)
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert len(pipeline.hbg) > before
        assert len(pipeline.hbg) == len(net.collector)

    def test_disarm_removes_guard(self, fast_delays):
        scenario, net, pipeline = _armed_fig2(fast_delays, PipelineMode.REPAIR)
        pipeline.disarm()
        assert net.runtime("R1").fib.install_guard is None
