"""Tests for repro.lint: rules, pragmas, baseline, CLI, self-check.

The fixture corpus under tests/fixtures/lint/ has one bad and one
good snippet per rule; each declares its module identity with a
``# repro: lint-module=`` directive so the package-scoped rules
(DET/LAY/OBS) fire exactly as they would on real repo code.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.lint import (
    LintRunner,
    RULE_REGISTRY,
    Severity,
    baseline,
    default_rules,
    module_name_for,
)
from repro.lint.rules.obs_rules import InstrumentationRule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "lint")
SRC = os.path.join(REPO_ROOT, "src", "repro")


def lint_fixture(*names):
    paths = [os.path.join(FIXTURES, name) for name in names]
    return LintRunner().run_paths(paths)


def rules_fired(result):
    return sorted({f.rule for f in result.findings})


# -- rule registry / framework -------------------------------------------


def test_all_rules_registered():
    assert set(RULE_REGISTRY) == {
        "DET001",
        "DET002",
        "DET003",
        "DET100",
        "CONC001",
        "CONC002",
        "CONC003",
        "LAY001",
        "LAY002",
        "OBS001",
        "HYG001",
        "HYG002",
        "HYG003",
        "HYG004",
        "PERF001",
    }
    for rule in default_rules():
        assert rule.description
        assert rule.severity in (
            Severity.INFO,
            Severity.WARNING,
            Severity.ERROR,
        )


def test_severity_ordering_and_parse():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.parse("error") is Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_module_name_derivation():
    assert (
        module_name_for(os.path.join(SRC, "net", "simulator.py"))
        == "repro.net.simulator"
    )
    assert (
        module_name_for(os.path.join(SRC, "obs", "__init__.py"))
        == "repro.obs"
    )
    assert module_name_for("/elsewhere/scratch.py") == "scratch"


def test_module_directive_overrides_path():
    result = LintRunner().run_source(
        "# repro: lint-module=repro.net.fake\nimport time\n",
        path="<fixture>",
    )
    assert rules_fired(result) == ["DET001"]


def test_syntax_error_reported_as_parse_finding():
    result = LintRunner().run_source("def broken(:\n", path="<bad>")
    assert rules_fired(result) == ["PARSE"]
    assert result.findings[0].severity is Severity.ERROR


# -- DET rules ------------------------------------------------------------


def test_det001_fixture_pair():
    assert rules_fired(lint_fixture("det001_bad.py")) == ["DET001"]
    assert rules_fired(lint_fixture("det001_good.py")) == []


def test_det001_only_in_deterministic_packages():
    result = LintRunner().run_source(
        "# repro: lint-module=repro.cli\nimport time\n", path="<cli>"
    )
    assert rules_fired(result) == []


def test_det002_fixture_pair():
    bad = lint_fixture("det002_bad.py")
    assert rules_fired(bad) == ["DET002"]
    # Both the from-import and the module-level call are flagged.
    assert len(bad.findings) == 2
    assert rules_fired(lint_fixture("det002_good.py")) == []


def test_det003_fixture_pair():
    bad = lint_fixture("det003_bad.py")
    assert rules_fired(bad) == ["DET003"]
    assert len(bad.findings) == 2  # for-loop and comprehension
    assert all(f.severity is Severity.WARNING for f in bad.findings)
    assert rules_fired(lint_fixture("det003_good.py")) == []


# -- LAY rules ------------------------------------------------------------


def test_lay001_fixture_pair():
    assert rules_fired(lint_fixture("lay001_bad.py")) == ["LAY001"]
    assert rules_fired(lint_fixture("lay001_good.py")) == []


def test_lay002_cycle_detected():
    result = lint_fixture("lay002_bad")
    assert "LAY002" in rules_fired(result)
    [cycle] = [f for f in result.findings if f.rule == "LAY002"]
    assert "snapshot" in cycle.message and "verify" in cycle.message


def test_lay_repo_layering_is_acyclic():
    """The live repo's package graph must have no import cycles."""
    result = LintRunner().run_paths([SRC])
    assert [f for f in result.findings if f.rule == "LAY002"] == []


# -- OBS rule -------------------------------------------------------------


def test_obs001_fixture_pair():
    assert rules_fired(lint_fixture("obs001_bad.py")) == ["OBS001"]
    assert rules_fired(lint_fixture("obs001_good.py")) == []


def test_obs001_reports_stale_catalogue():
    rule = InstrumentationRule({"repro.net.fake": ("Ghost.run",)})
    result = LintRunner(rules=[rule]).run_source(
        "# repro: lint-module=repro.net.fake\nclass Other:\n    pass\n",
        path="<fixture>",
    )
    assert rules_fired(result) == ["OBS001"]
    assert "not found" in result.findings[0].message


def test_obs001_trace_fixture_pair():
    """Metrics-only instrumentation must not satisfy a TRACE_SITES entry."""
    bad = lint_fixture("obs001_trace_bad.py")
    assert rules_fired(bad) == ["OBS001"]
    assert any("flight recorder" in f.message for f in bad.findings)
    assert rules_fired(lint_fixture("obs001_good.py")) == []


def test_obs001_trace_reports_stale_catalogue():
    rule = InstrumentationRule(
        entry_points={},
        trace_sites={"repro.net.fake": (("Ghost.run", "SIM_EVENT"),)},
    )
    result = LintRunner(rules=[rule]).run_source(
        "# repro: lint-module=repro.net.fake\nclass Other:\n    pass\n",
        path="<fixture>",
    )
    assert rules_fired(result) == ["OBS001"]
    assert "trace site" in result.findings[0].message


# -- HYG rules ------------------------------------------------------------


def test_hyg_fixtures():
    assert rules_fired(lint_fixture("hyg001_bad.py")) == ["HYG001"]
    assert len(lint_fixture("hyg001_bad.py").findings) == 3
    assert rules_fired(lint_fixture("hyg002_bad.py")) == ["HYG002"]
    assert rules_fired(lint_fixture("hyg003_bad.py")) == ["HYG003"]
    assert rules_fired(lint_fixture("hyg_good.py")) == []


def test_hyg003_skips_test_code():
    result = LintRunner().run_source(
        "# repro: lint-module=tests.test_x\nassert True\n", path="<t>"
    )
    assert rules_fired(result) == []


# -- PERF rule ------------------------------------------------------------


def test_perf001_fixture_pair():
    bad = lint_fixture("perf001_bad.py")
    assert rules_fired(bad) == ["PERF001"]
    # list.insert, insort, and the list-membership test.
    assert len(bad.findings) == 3
    assert all(f.severity is Severity.WARNING for f in bad.findings)
    assert rules_fired(lint_fixture("perf001_good.py")) == []


def test_perf001_only_in_hot_packages():
    # The identical insert is fine outside net/capture/hbr/snapshot.
    result = LintRunner().run_source(
        "# repro: lint-module=repro.cli\n"
        "def f(xs, x):\n"
        "    xs.insert(0, x)\n",
        path="<cli>",
    )
    assert rules_fired(result) == []


def test_perf001_ignores_keyed_insert_arity():
    # One-positional-argument keyed APIs (tries, tables) are not
    # positional list inserts.
    result = LintRunner().run_source(
        "# repro: lint-module=repro.snapshot.fake\n"
        "def f(trie, entry):\n"
        "    trie.insert(entry)\n",
        path="<snap>",
    )
    assert rules_fired(result) == []


def test_perf001_pragma_suppresses():
    result = LintRunner().run_source(
        "# repro: lint-module=repro.hbr.fake\n"
        "def f(xs, x):\n"
        "    xs.insert(0, x)  # repro: lint-ignore[PERF001] -- bounded\n",
        path="<hbr>",
    )
    assert result.findings == []
    assert result.suppressed_by_pragma == 1


# -- pragmas --------------------------------------------------------------


def test_pragma_suppresses_single_rule():
    result = lint_fixture("pragma_ok.py")
    assert result.findings == []
    assert result.suppressed_by_pragma == 1


def test_pragma_wildcard_and_scoping():
    source = (
        "# repro: lint-module=repro.net.fake\n"
        "import time  # repro: lint-ignore[*]\n"
        "import datetime\n"
    )
    result = LintRunner().run_source(source, path="<fixture>")
    # The wildcard only covers its own line; line 3 still fires.
    assert len(result.findings) == 1
    assert result.findings[0].line == 3
    assert result.suppressed_by_pragma == 1


def test_pragma_for_other_rule_does_not_suppress():
    source = (
        "# repro: lint-module=repro.net.fake\n"
        "import time  # repro: lint-ignore[HYG001]\n"
    )
    result = LintRunner().run_source(source, path="<fixture>")
    # DET001 still fires; HYG004 additionally flags the pragma as
    # unused, since HYG001 had nothing to suppress on that line.
    assert rules_fired(result) == ["DET001", "HYG004"]


# -- baseline -------------------------------------------------------------


def test_baseline_roundtrip(tmp_path):
    result = lint_fixture("det001_bad.py")
    assert len(result.findings) == 1
    path = str(tmp_path / "baseline.json")
    assert baseline.save(path, result.findings) == 1
    allowed = baseline.load(path)
    new, suppressed, stale = baseline.apply(result.findings, allowed)
    assert new == [] and suppressed == 1 and stale == []


def test_baseline_catches_new_findings_beyond_allowance(tmp_path):
    result = lint_fixture("det001_bad.py")
    path = str(tmp_path / "baseline.json")
    baseline.save(path, result.findings)
    allowed = baseline.load(path)
    doubled = result.findings + result.findings
    new, suppressed, _ = baseline.apply(doubled, allowed)
    assert suppressed == 1 and len(new) == 1


def test_baseline_reports_stale_entries(tmp_path):
    result = lint_fixture("det001_bad.py")
    path = str(tmp_path / "baseline.json")
    baseline.save(path, result.findings)
    allowed = baseline.load(path)
    new, suppressed, stale = baseline.apply([], allowed)
    assert new == [] and suppressed == 0 and len(stale) == 1


def test_baseline_rejects_malformed_documents(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError):
        baseline.load(str(path))


# -- CLI ------------------------------------------------------------------


def test_cli_lint_bad_fixture_fails(capsys):
    rc = cli_main(
        [
            "lint",
            os.path.join(FIXTURES, "det001_bad.py"),
            "--baseline",
            "none",
            "--fail-on",
            "info",
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "DET001" in out


@pytest.mark.parametrize(
    "fixture",
    [
        "det001_bad.py",
        "det002_bad.py",
        "det003_bad.py",
        "lay001_bad.py",
        "lay002_bad",
        "obs001_bad.py",
        "obs001_trace_bad.py",
        "hyg001_bad.py",
        "hyg002_bad.py",
        "hyg003_bad.py",
    ],
)
def test_cli_every_bad_fixture_nonzero(fixture, capsys):
    rc = cli_main(
        [
            "lint",
            os.path.join(FIXTURES, fixture),
            "--baseline",
            "none",
            "--fail-on",
            "info",
        ]
    )
    assert rc == 1
    capsys.readouterr()


def test_cli_fail_on_threshold(capsys):
    # DET003 findings are warnings: fail-on error passes, warning fails.
    path = os.path.join(FIXTURES, "det003_bad.py")
    assert (
        cli_main(["lint", path, "--baseline", "none", "--fail-on", "error"])
        == 0
    )
    assert (
        cli_main(["lint", path, "--baseline", "none", "--fail-on", "warning"])
        == 1
    )
    capsys.readouterr()


def test_cli_json_format(capsys):
    rc = cli_main(
        [
            "lint",
            os.path.join(FIXTURES, "hyg002_bad.py"),
            "--baseline",
            "none",
            "--format",
            "json",
            "--fail-on",
            "never",
        ]
    )
    assert rc == 0
    document = json.loads(capsys.readouterr().out)
    assert document["tool"] == "repro lint"
    assert document["summary"]["findings"] == 1
    [finding] = document["findings"]
    assert finding["rule"] == "HYG002"


def test_cli_missing_path_is_usage_error(capsys):
    rc = cli_main(["lint", "/nonexistent/nowhere", "--baseline", "none"])
    assert rc == 2
    capsys.readouterr()


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    fixture = os.path.join(FIXTURES, "det001_bad.py")
    path = str(tmp_path / "baseline.json")
    assert cli_main(["lint", fixture, "--write-baseline", "--baseline", path]) == 0
    assert cli_main(["lint", fixture, "--baseline", path]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


# -- self-check: the live repo is clean -----------------------------------


def test_self_check_repo_is_lint_clean(capsys):
    """`repro lint` over the live tree exits 0 with the committed baseline."""
    rc = cli_main(
        [
            "lint",
            SRC,
            "--baseline",
            os.path.join(REPO_ROOT, "lint-baseline.json"),
            "--fail-on",
            "error",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, f"repo has new lint findings:\n{out}"


def test_self_check_no_stale_baseline_entries(capsys):
    cli_main(
        [
            "lint",
            SRC,
            "--baseline",
            os.path.join(REPO_ROOT, "lint-baseline.json"),
            "--fail-on",
            "never",
        ]
    )
    out = capsys.readouterr().out
    assert "stale baseline entry" not in out


def test_self_check_via_subprocess():
    """The packaged entry point works from the repo root."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--fail-on", "error"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# -- observability integration -------------------------------------------


def test_lint_records_metrics_when_enabled():
    with obs.capturing() as (registry, _tracer):
        LintRunner().run_paths([os.path.join(FIXTURES, "hyg002_bad.py")])
        counters = {
            (c.name, c.labels): c.value for c in registry.counters()
        }
    assert counters[("lint.runs_total", ())] == 1
    assert counters[("lint.findings_total", (("rule", "HYG002"),))] == 1
