"""Failure-injection tests: lost log messages and skewed clocks.

The capture channel in a real deployment is lossy (syslog over UDP)
and unsynchronised.  These tests quantify how the paper's machinery
degrades — and where it stays safe — under those conditions.
"""

import pytest

from repro.capture.io_events import IOKind
from repro.hbr.inference import InferenceEngine, score_inference
from repro.scenarios.paper_net import P, build_paper_network
from repro.snapshot.base import VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter


def _run_network(fast_delays, drop_rate=0.0, skews=None, seed=0):
    net = build_paper_network(
        seed=seed,
        delays=fast_delays,
        log_drop_rate=drop_rate,
        clock_skews=skews,
    )
    net.start()
    net.announce_prefix("Ext1", P)
    net.announce_prefix("Ext2", P)
    net.run(10)
    return net


class TestLogDrops:
    def test_drops_reduce_captured_events(self, fast_delays):
        clean = _run_network(fast_delays)
        lossy = _run_network(fast_delays, drop_rate=0.3)
        assert len(lossy.collector) < len(clean.collector)

    def test_dropped_events_counted(self, fast_delays):
        lossy = _run_network(fast_delays, drop_rate=0.3)
        dropped = sum(
            runtime.logger.events_dropped
            for runtime in lossy.runtimes.values()
        )
        assert dropped > 0

    def test_inference_recall_degrades_gracefully(self, fast_delays):
        """Missing log lines lose edges but never fabricate them:
        precision holds while recall drops."""
        lossy = _run_network(fast_delays, drop_rate=0.3, seed=3)
        engine = InferenceEngine()
        graph = engine.build_graph(lossy.collector.all_events())
        observable = {e.event_id for e in lossy.collector}
        score = score_inference(
            graph, lossy.ground_truth, observable_ids=observable
        )
        # Edges between *captured* events remain precise.
        assert score.precision >= 0.7

    def test_consistent_snapshot_defers_on_missing_fib_logs(self, fast_delays):
        """If a router's FIB-update log line was lost, the §5 closure
        check reports the cut inconsistent rather than verifying a
        reconstruction silently missing that entry."""
        found_deferral = False
        for seed in range(12):
            lossy = _run_network(fast_delays, drop_rate=0.35, seed=seed)
            # Only interesting when an internal FIB event was dropped.
            captured_fibs = {
                (e.router, e.prefix, e.action)
                for e in lossy.collector.events_of_kind(IOKind.FIB_UPDATE)
            }
            live = {
                (r, P)
                for r in ("R1", "R2", "R3")
                if lossy.runtime(r).fib.get(P) is not None
            }
            missing = [
                router
                for router, _ in live
                if not any(
                    r == router and p == P
                    for r, p, _a in captured_fibs
                )
            ]
            if not missing:
                continue
            view = VerifierView(lossy.collector)
            snapshotter = ConsistentSnapshotter(
                view, internal_routers=("R1", "R2", "R3")
            )
            _snapshot, report = snapshotter.snapshot(
                lossy.sim.now, prefix=P
            )
            if not report.consistent:
                found_deferral = True
                break
        assert found_deferral, (
            "expected at least one run where lost FIB logs made the "
            "snapshot inconsistent"
        )


class TestClockSkew:
    def test_large_skew_defeats_strict_tolerance(self, fast_delays):
        from repro.hbr.inference import InferenceConfig

        skewed = _run_network(
            fast_delays, skews={"R1": 0.2, "R2": -0.2}, seed=1
        )
        strict = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.0)
        )
        generous = InferenceEngine(
            config=InferenceConfig(clock_skew_tolerance=0.5)
        )
        observable = {e.event_id for e in skewed.collector}
        strict_score = score_inference(
            strict.build_graph(skewed.collector.all_events()),
            skewed.ground_truth,
            observable_ids=observable,
        )
        generous_score = score_inference(
            generous.build_graph(skewed.collector.all_events()),
            skewed.ground_truth,
            observable_ids=observable,
        )
        assert generous_score.recall > strict_score.recall

    def test_same_router_order_immune_to_skew(self, fast_delays):
        """Skew shifts a router's whole log uniformly; intra-router
        chains (recv -> rib -> fib -> send) survive any skew."""
        skewed = _run_network(
            fast_delays, skews={"R3": 5.0}, seed=2
        )
        engine = InferenceEngine()
        graph = engine.build_graph(skewed.collector.all_events())
        r3_events = [e for e in skewed.collector.events_of("R3")]
        fib = [
            e for e in r3_events
            if e.kind is IOKind.FIB_UPDATE and e.prefix == P
        ]
        assert fib
        ancestors = graph.ancestors(max(fib, key=lambda e: e.timestamp).event_id)
        ancestor_kinds = {
            graph.event(i).kind
            for i in ancestors
            if graph.event(i).router == "R3"
        }
        assert IOKind.RIB_UPDATE in ancestor_kinds
        assert IOKind.ROUTE_RECEIVE in ancestor_kinds
