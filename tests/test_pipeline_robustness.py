"""Pipeline robustness under degraded capture conditions."""

import pytest

from repro.core.pipeline import IntegratedControlPlane, PipelineMode
from repro.scenarios.fig2 import Fig2Scenario, bad_lp_change
from repro.scenarios.paper_net import P, build_paper_network, paper_policy
from repro.verify.policy import LoopFreedomPolicy


def _lossy_fig2(fast_delays, drop_rate, seed=0):
    net = build_paper_network(
        seed=seed, delays=fast_delays, log_drop_rate=drop_rate
    )
    net.start()
    net.announce_prefix("Ext1", P)
    net.announce_prefix("Ext2", P)
    net.run(5)
    return net


class TestLossyCapture:
    def test_guard_still_protects_data_plane(self, fast_delays):
        """The FIB guard fires on the write itself (not on log
        delivery), so lost log lines never let a bad update through."""
        for seed in (0, 1, 2):
            net = _lossy_fig2(fast_delays, drop_rate=0.3, seed=seed)
            pipeline = IntegratedControlPlane(
                net,
                [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
                mode=PipelineMode.BLOCK,
            ).arm()
            net.apply_config_change(bad_lp_change())
            net.run(30)
            # The data plane stayed on the preferred exit.
            path, outcome = net.trace_path("R3", P.first_address())
            assert outcome == "delivered"
            assert path[-1] == "Ext2"

    def test_repair_may_degrade_but_never_misfires(self, fast_delays):
        """With lost log lines, provenance can be incomplete — the
        pipeline may fail to find the root cause (degraded to BLOCK
        behaviour) but must never revert an *unrelated* change."""
        net = _lossy_fig2(fast_delays, drop_rate=0.4, seed=3)
        # An unrelated, harmless change to R1 before the episode.
        from repro.net.config import ConfigChange, local_pref_map

        harmless = ConfigChange(
            "R1",
            "set_route_map",
            key="r1-uplink-lp",
            value=local_pref_map("r1-uplink-lp", 21),
            description="tune R1 uplink LP",
        )
        net.apply_config_change(harmless)
        net.run(5)
        pipeline = IntegratedControlPlane(
            net,
            [paper_policy(), LoopFreedomPolicy(prefixes=[P])],
            mode=PipelineMode.REPAIR,
        ).arm()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        # The harmless change must still be in force (never reverted)
        # ... unless provenance (correctly) blamed only the bad one.
        r1_lp = net.configs.get("R1").route_maps["r1-uplink-lp"].clauses[0]
        assert r1_lp.set_local_pref == 21
        # And the data plane is protected regardless.
        path, outcome = net.trace_path("R3", P.first_address())
        assert outcome == "delivered" and path[-1] == "Ext2"


class TestIdempotency:
    def test_rearming_is_safe(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        pipeline = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.REPAIR
        )
        pipeline.arm()
        pipeline.disarm()
        pipeline.arm()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        assert not scenario.violates_policy()

    def test_two_pipelines_not_needed_but_last_guard_wins(self, fast_delays):
        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        first = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.MONITOR
        ).arm()
        second = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.REPAIR
        ).arm()
        net.apply_config_change(bad_lp_change())
        net.run(30)
        # The second (armed last) guard protected the network.
        assert not scenario.violates_policy()
        assert second.updates_checked > 0

    def test_benign_changes_cause_no_incidents(self, fast_delays):
        from repro.net.config import ConfigChange, local_pref_map

        scenario = Fig2Scenario(seed=0, delays=fast_delays)
        net = scenario.run_baseline()
        pipeline = IntegratedControlPlane(
            net, [paper_policy()], mode=PipelineMode.REPAIR
        ).arm()
        for lp in (35, 40, 45):
            net.apply_config_change(
                ConfigChange(
                    "R2",
                    "set_route_map",
                    key="r2-uplink-lp",
                    value=local_pref_map("r2-uplink-lp", lp),
                    description=f"LP {lp}",
                )
            )
            net.run(10)
        assert pipeline.incidents == []
        assert not scenario.violates_policy()
