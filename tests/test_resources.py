"""Tests for the resource ledger: deterministic byte accounting,
weak registration, the estimate-vs-audit accuracy bar, and the
zero-overhead contract around every registration site."""

import ast
import gc
import os

import pytest

from repro import obs
from repro.hbr.graph import HappensBeforeGraph
from repro.hbr.inference import InferenceEngine, StreamingInference
from repro.lint.rules.obs_rules import LEDGER_SITES
from repro.obs import resources
from repro.obs.resources import (
    NullLedger,
    ResourceLedger,
    combined_sizeof,
    deep_sizeof,
    estimate_sizeof,
)
from repro.scenarios.generators import (
    build_random_network,
    churn_workload,
    external_prefixes,
)


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Never leak an enabled registry/ledger into other tests."""
    yield
    obs.disable()
    obs.disable_ledger()
    obs.disable_recording()


# -- the sizeof walk -------------------------------------------------------


class TestSizeof:
    def test_atomics_measured_shallow(self):
        import sys

        assert deep_sizeof(42) == sys.getsizeof(42)
        assert deep_sizeof("hello") == sys.getsizeof("hello")

    def test_containers_include_elements(self):
        empty = deep_sizeof([])
        assert deep_sizeof(["x" * 100]) > empty + 100

    def test_shared_objects_counted_once(self):
        shared = "y" * 1000
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_combined_sizeof_dedups_across_roots(self):
        shared = ["z"] * 500
        separate = deep_sizeof([shared]) + deep_sizeof((shared,))
        assert combined_sizeof([[shared], (shared,)], sample=None) < separate

    def test_estimate_equals_audit_below_sample_budget(self):
        data = {i: str(i) for i in range(32)}
        assert estimate_sizeof(data, sample=64) == deep_sizeof(data)

    def test_sampled_estimate_tracks_homogeneous_data(self):
        data = [i for i in range(10_000)]
        exact = deep_sizeof(data)
        estimate = estimate_sizeof(data, sample=64)
        assert abs(estimate - exact) / exact < 0.20

    def test_sets_measured_exactly_never_sampled(self):
        data = {("k", i) for i in range(1000)}
        assert estimate_sizeof(data, sample=8) == deep_sizeof(data)

    def test_slots_instances_traversed(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = "p" * 500

        assert deep_sizeof(Slotted()) > 500

    def test_estimate_is_deterministic(self):
        data = {i: [i] * 3 for i in range(500)}
        assert estimate_sizeof(data) == estimate_sizeof(data)


# -- ledger registration ---------------------------------------------------


class _Accountable:
    def __init__(self, size=100):
        self.payload = ["x"] * size

    def account_bytes(self, audit=False):
        sample = None if audit else 64
        return combined_sizeof((self.payload,), sample=sample)


class TestResourceLedger:
    def test_rejects_owners_without_account_bytes(self):
        ledger = ResourceLedger()
        with pytest.raises(TypeError):
            ledger.register("x", object())

    def test_validates_sample(self):
        with pytest.raises(ValueError):
            ResourceLedger(sample=0)

    def test_refresh_aggregates_per_component(self):
        ledger = ResourceLedger()
        owners = [_Accountable(), _Accountable()]
        for owner in owners:
            ledger.register("test.component", owner)
        totals = ledger.refresh(registry=obs.get_registry())
        assert totals["test.component"] == sum(
            o.account_bytes() for o in owners
        )
        assert ledger.total_bytes() == totals["test.component"]

    def test_weak_registration_never_extends_lifetime(self):
        ledger = ResourceLedger()
        owner = _Accountable()
        ledger.register("test.component", owner)
        assert len(ledger) == 1
        del owner
        gc.collect()
        assert len(ledger) == 0
        assert ledger.refresh(registry=obs.get_registry()) == {}

    def test_peaks_are_monotonic_high_watermarks(self):
        ledger = ResourceLedger()
        owner = _Accountable(size=1000)
        ledger.register("test.component", owner)
        registry = obs.get_registry()
        ledger.refresh(registry=registry)
        peak = ledger.peak_bytes("test.component")
        owner.payload = ["x"] * 10  # shrink
        ledger.refresh(registry=registry)
        assert ledger.bytes_by_component()["test.component"] < peak
        assert ledger.peak_bytes("test.component") == peak
        assert ledger.peak_total_bytes() == peak

    def test_refresh_publishes_gauges_when_metrics_enabled(self):
        with obs.capturing() as (registry, _tracer):
            ledger = ResourceLedger()
            owner = _Accountable()
            ledger.register("test.component", owner)
            ledger.refresh(registry=registry)
            gauges = {
                (g.name, dict(g.labels).get("component")): g.value
                for g in registry.gauges()
            }
        expected = float(owner.account_bytes())
        assert gauges[("resource.bytes", "test.component")] == expected
        assert gauges[("resource.bytes_peak", "test.component")] == expected
        assert gauges[("resource.bytes_total", None)] == expected
        assert gauges[("resource.bytes_peak_total", None)] == expected

    def test_document_matches_schema(self):
        ledger = ResourceLedger()
        owner = _Accountable()
        ledger.register("test.component", owner)
        ledger.refresh(registry=obs.get_registry())
        document = ledger.document()
        assert document["schema"] == "repro-resources/v1"
        assert document["registrations"] == 1
        assert document["refreshes_total"] == 1
        assert (
            document["components"]["test.component"]["bytes"]
            == document["total_bytes"]
        )

    def test_unregister_and_clear(self):
        ledger = ResourceLedger()
        owner = _Accountable()
        handle = ledger.register("test.component", owner)
        ledger.unregister(handle)
        assert len(ledger) == 0
        ledger.register("test.component", owner)
        ledger.refresh(registry=obs.get_registry())
        ledger.clear()
        assert ledger.document()["total_bytes"] == 0
        assert ledger.refreshes_total == 0

    def test_account_bytes_is_deterministic(self):
        net, specs = build_random_network(6, uplinks=2, seed=3)
        net.start()
        churn_workload(
            net, specs, external_prefixes(2), events=4, start=2.0, seed=3
        )
        net.run(40)
        events = net.collector.all_events()
        with obs.accounting():
            graph = InferenceEngine().build_graph(events)
        assert graph.account_bytes() == graph.account_bytes()
        assert graph.account_bytes(audit=True) == graph.account_bytes(
            audit=True
        )


class TestObsWiring:
    def test_off_by_default(self):
        assert obs.get_ledger().enabled is False

    def test_enable_disable_ledger(self):
        ledger = obs.enable_ledger(sample=32)
        assert obs.get_ledger() is ledger and ledger.sample == 32
        obs.disable_ledger()
        assert obs.get_ledger().enabled is False

    def test_accounting_context_restores_previous(self):
        outer = obs.enable_ledger()
        with obs.accounting() as inner:
            assert obs.get_ledger() is inner and inner is not outer
        assert obs.get_ledger() is outer
        obs.disable_ledger()

    def test_structures_register_while_accounting(self):
        with obs.accounting() as ledger:
            graph = HappensBeforeGraph()
            totals = ledger.refresh(registry=obs.get_registry())
        assert "hbr.graph" in totals
        assert totals["hbr.graph"] == graph.account_bytes()


# -- the acceptance bar: estimates within 20% of audit ---------------------


class TestEstimateAccuracy:
    def test_streaming_build_estimate_within_20pct_of_audit(self):
        """The C-SCALE n=16 shape: ledger estimates must track the
        exact (unsampled) getsizeof walk within 20% per component."""
        net, specs = build_random_network(16, uplinks=2, seed=0)
        net.start()
        churn_workload(
            net, specs, external_prefixes(4), events=10, start=2.0, seed=0
        )
        net.run(60)
        events = net.collector.all_events()
        with obs.accounting() as ledger:
            streaming = StreamingInference(InferenceEngine())
            for event in events:
                streaming.observe(event)
            estimates = ledger.refresh(registry=obs.get_registry())
            audits = ledger.audit()
        assert set(estimates) == set(audits)
        assert {"hbr.graph", "hbr.index"}.issubset(estimates)
        for component, exact in audits.items():
            assert exact > 0
            drift = abs(estimates[component] - exact) / exact
            assert drift <= 0.20, (
                f"{component}: estimate {estimates[component]} vs audit "
                f"{exact} drifts {drift:.1%} (> 20%)"
            )


# -- drift + overhead guards -----------------------------------------------


def _site_function(module: str, qualname: str) -> ast.AST:
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    path = os.path.join(root, *module.split(".")) + ".py"
    tree = ast.parse(open(path).read())
    node = tree
    for part in qualname.split("."):
        node = next(
            child
            for child in ast.walk(node)
            if isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            and child.name == part
        )
    return node


class TestLedgerSiteContracts:
    def test_catalogue_and_known_components_cannot_drift(self):
        """LEDGER_SITES and KNOWN_COMPONENTS must stay a bijection."""
        catalogued = [
            component
            for sites in LEDGER_SITES.values()
            for _qualname, component in sites
        ]
        assert sorted(catalogued) == sorted(resources.KNOWN_COMPONENTS), (
            "LEDGER_SITES (repro/lint/rules/obs_rules.py) and "
            "KNOWN_COMPONENTS (repro/obs/resources.py) have drifted apart"
        )

    def test_every_site_guards_on_ledger_enabled(self):
        """The disabled fast path is one attribute check per site."""
        for module, sites in LEDGER_SITES.items():
            for qualname, _component in sites:
                func = _site_function(module, qualname)
                guards = [
                    node
                    for node in ast.walk(func)
                    if isinstance(node, ast.Attribute)
                    and node.attr == "enabled"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "ledger"
                ]
                assert guards, (
                    f"{module}:{qualname} must guard registration behind "
                    "a single `ledger.enabled` check"
                )

    def test_disabled_ledger_never_reaches_register(self):
        """Behavioral half of the overhead guard: with accounting off,
        no registration site may even *call* register()."""

        class TrippingLedger(NullLedger):
            def register(self, *args, **kwargs):
                raise AssertionError(
                    "register() called while ledger.enabled is False"
                )

        import repro.obs as obs_module

        from repro.obs.trace.recorder import FlightRecorder
        from repro.snapshot.base import VerifierView
        from repro.snapshot.consistent import ConsistentSnapshotter
        from repro.testkit.runner import FuzzRunner

        previous = obs_module._ledger
        obs_module._ledger = TrippingLedger()
        try:
            # Exercise every catalogued site: graph + index (via a
            # build), snapshotter, flight-recorder ring, fuzz corpus.
            net, specs = build_random_network(4, uplinks=2, seed=1)
            net.start()
            churn_workload(
                net, specs, external_prefixes(2), events=2, start=2.0, seed=1
            )
            net.run(30)
            engine = InferenceEngine()
            engine.build_graph(net.collector.all_events())
            ConsistentSnapshotter(
                VerifierView(net.collector),
                internal_routers=net.topology.internal_routers(),
                engine=engine,
            )
            FlightRecorder(capacity=8)
            report = FuzzRunner(
                artifacts_dir=None, shrink_failures=False
            ).run(seed=0, cases=1)
            assert report.cases == 1
        finally:
            obs_module._ledger = previous

    def test_null_ledger_is_inert(self):
        null = NullLedger()
        assert null.enabled is False
        assert null.refresh() == {} and null.audit() == {}
        assert null.document()["components"] == {}
        assert len(null) == 0
