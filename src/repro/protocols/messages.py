"""Protocol messages exchanged between simulated routers.

Messages carry the ``send_event_id`` of the ROUTE_SEND capture event
that emitted them.  The receiving router uses it only to wire ground
truth (send happened-before receive); the observable receive event it
logs does *not* include the sender's event id — inference has to
re-discover the pairing from prefix/peer/timestamp, as it would in a
real network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.addr import Prefix
from repro.protocols.routes import BgpRoute


@dataclass(frozen=True)
class BgpUpdate:
    """A BGP UPDATE announcing one path for one prefix."""

    sender: str
    receiver: str
    route: BgpRoute
    send_event_id: int = 0

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix


@dataclass(frozen=True)
class BgpWithdraw:
    """A BGP UPDATE withdrawing one prefix (optionally one path id)."""

    sender: str
    receiver: str
    prefix: Prefix
    path_id: int = 0
    send_event_id: int = 0


@dataclass(frozen=True)
class LinkStateAdvertisement:
    """An OSPF router-LSA: who I am adjacent to and what I originate.

    ``adjacencies`` is a tuple of (neighbor_router, cost) pairs and
    ``stub_prefixes`` a tuple of (prefix, cost) pairs.  ``seq`` is the
    LSA sequence number; higher supersedes lower.
    """

    origin: str
    seq: int
    adjacencies: Tuple[Tuple[str, int], ...]
    stub_prefixes: Tuple[Tuple[Prefix, int], ...]

    def is_newer_than(self, other: Optional["LinkStateAdvertisement"]) -> bool:
        if other is None:
            return True
        if self.origin != other.origin:
            raise ValueError("comparing LSAs from different origins")
        return self.seq > other.seq


@dataclass(frozen=True)
class LsaFlood:
    """An LSA in flight from ``sender`` to ``receiver``."""

    sender: str
    receiver: str
    lsa: LinkStateAdvertisement
    send_event_id: int = 0

    @property
    def prefix(self) -> Optional[Prefix]:
        """LSAs are not per-prefix; None keeps the event schema uniform."""
        return None
