"""The network runtime: topology + configs + simulator + routers.

:class:`Network` is the top-level object scenarios drive.  It owns
the simulator, the capture collector, the ground-truth channel, and
one :class:`~repro.protocols.router.RouterRuntime` per router, and it
provides the operator-facing verbs the paper's scenarios need:
announce a prefix from an external router, change a configuration,
fail a link, and inspect the resulting data plane.

External routers (``Router.external=True``) participate in the
protocols but their I/Os are *not* captured — they are outside the
administrative domain, which is what terminates the §5 snapshot walk
("...or the router from which the update was received is external to
the network").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.capture.collector import Collector
from repro.capture.ground_truth import GroundTruth
from repro.capture.io_events import IOEvent
from repro.capture.logger import RouterLogger
from repro.net.addr import Prefix
from repro.net.config import ConfigChange, ConfigStore, RouterConfig
from repro.net.simulator import DelayModel, Simulator
from repro.net.topology import Router, Topology
from repro.protocols.fib import FibEntry, InstallGuard
from repro.protocols.messages import BgpUpdate, BgpWithdraw, LsaFlood
from repro.protocols.router import RouterRuntime


class NetworkError(RuntimeError):
    """Raised for invalid operations on the network runtime."""


def _null_sink(event: IOEvent) -> None:
    """Sink for external routers: their I/Os are not observable."""


class Network:
    """A running network of simulated routers."""

    def __init__(
        self,
        topology: Topology,
        configs: Iterable[RouterConfig],
        seed: int = 0,
        delays: Optional[DelayModel] = None,
        per_router_delays: Optional[Dict[str, DelayModel]] = None,
        clock_skews: Optional[Dict[str, float]] = None,
        log_drop_rate: float = 0.0,
        deterministic_bgp: bool = False,
    ):
        self.topology = topology
        self.configs = ConfigStore(configs)
        self.sim = Simulator(seed=seed)
        self.collector = Collector()
        self.ground_truth = GroundTruth()
        self.delays = delays or DelayModel()
        self._per_router_delays = per_router_delays or {}
        self._clock_skews = clock_skews or {}
        self._log_drop_rate = log_drop_rate
        self.deterministic_bgp = deterministic_bgp
        self.runtimes: Dict[str, RouterRuntime] = {}
        self.dropped_messages = 0
        self._started = False
        missing = [
            r.name for r in topology if r.name not in set(self.configs.routers())
        ]
        if missing:
            raise NetworkError(f"routers without configs: {missing}")
        for router in topology:
            self.runtimes[router.name] = RouterRuntime(router, self)

    # -- wiring helpers used by RouterRuntime ------------------------------

    def delays_for(self, router: str) -> DelayModel:
        return self._per_router_delays.get(router, self.delays)

    def logger_for(self, router: Router) -> RouterLogger:
        sink = _null_sink if router.external else self.collector.ingest
        return RouterLogger(
            router.name,
            sink,
            clock_skew=self._clock_skews.get(router.name, 0.0),
            drop_rate=0.0 if router.external else self._log_drop_rate,
            rng=self.sim.rng if self._log_drop_rate > 0 else None,
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Network":
        """Bring every router up (connected routes, origins, OSPF)."""
        if self._started:
            raise NetworkError("network already started")
        self._started = True
        for name in sorted(self.runtimes):
            self.runtimes[name].start()
        return self

    def run(self, duration: float) -> None:
        """Advance simulation time by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def converge(self, max_time: float = 600.0) -> float:
        """Run until no events remain; returns the convergence time."""
        start = self.sim.now
        self.sim.run(until=start + max_time)
        if self.sim.pending():
            raise NetworkError(
                f"network did not converge within {max_time}s "
                f"({self.sim.pending()} events pending)"
            )
        return self.sim.now - start

    def runtime(self, router: str) -> RouterRuntime:
        try:
            return self.runtimes[router]
        except KeyError:
            raise NetworkError(f"unknown router {router!r}") from None

    # -- message fabric ----------------------------------------------------------

    def _path_delay(self, sender: str, receiver: str) -> Optional[float]:
        """One-way delay from ``sender`` to ``receiver`` over up links.

        Direct links use the link delay; multihop (iBGP over the IGP)
        uses the sum of link delays along a shortest (fewest-hop)
        up path.  None when no up path exists.
        """
        link = self.topology.link_between(sender, receiver)
        if link is not None and link.up:
            return link.delay
        # BFS over up links.
        visited: Dict[str, float] = {sender: 0.0}
        queue = deque([sender])
        while queue:
            node = queue.popleft()
            for hop in self.topology.links_of(node):
                if not hop.up:
                    continue
                far = hop.other_end(node).router
                if far in visited:
                    continue
                visited[far] = visited[node] + hop.delay
                if far == receiver:
                    return visited[far]
                queue.append(far)
        return None

    def path_exists(self, a: str, b: str) -> bool:
        return self._path_delay(a, b) is not None

    def deliver_bgp(self, msg) -> None:
        """Schedule delivery of a BGP message (update or withdraw)."""
        delay = self._path_delay(msg.sender, msg.receiver)
        if delay is None:
            self.dropped_messages += 1
            return
        receiver = self.runtime(msg.receiver)
        if isinstance(msg, BgpUpdate):
            action: Callable[[], None] = lambda: receiver.handle_bgp_update(msg)
            label = f"deliver:update:{msg.sender}->{msg.receiver}:{msg.prefix}"
        elif isinstance(msg, BgpWithdraw):
            action = lambda: receiver.handle_bgp_withdraw(msg)
            label = f"deliver:withdraw:{msg.sender}->{msg.receiver}:{msg.prefix}"
        else:
            raise NetworkError(f"unknown BGP message type {type(msg).__name__}")
        self.sim.schedule(delay, action, label=label)

    def deliver_dv(self, msg) -> None:
        """Deliver an EIGRP-style distance-vector update (single hop)."""
        link = self.topology.link_between(msg.sender, msg.receiver)
        if link is None or not link.up:
            self.dropped_messages += 1
            return
        receiver = self.runtime(msg.receiver)
        self.sim.schedule(
            link.delay,
            lambda: receiver.handle_dv_update(msg),
            label=f"deliver:dv:{msg.sender}->{msg.receiver}:{msg.prefix}",
        )

    def deliver_lsa(self, msg: LsaFlood) -> None:
        delay = self._path_delay(msg.sender, msg.receiver)
        if delay is None:
            self.dropped_messages += 1
            return
        receiver = self.runtime(msg.receiver)
        self.sim.schedule(
            delay,
            lambda: receiver.handle_lsa(msg),
            label=f"deliver:lsa:{msg.sender}->{msg.receiver}",
        )

    # -- operator verbs -----------------------------------------------------------

    def announce_prefix(
        self, router: str, prefix: Prefix, at: Optional[float] = None
    ) -> None:
        """Have ``router`` begin originating ``prefix`` into BGP.

        Models "R2 receives an advertisement for P on its uplink"
        (Fig. 1b) when invoked on an external router peering with R2.
        """
        runtime = self.runtime(router)

        def do_announce() -> None:
            config = self.configs.get(router)
            new_list = list(config.originated_prefixes)
            if prefix not in new_list:
                new_list.append(prefix)
            change = ConfigChange(
                router,
                "set_originated",
                value=new_list,
                description=f"originate {prefix}",
            )
            self.configs.apply(change)
            runtime.apply_config_change(change)

        self._at(at, do_announce, f"announce:{router}:{prefix}")

    def withdraw_prefix(
        self, router: str, prefix: Prefix, at: Optional[float] = None
    ) -> None:
        """Have ``router`` stop originating ``prefix``."""
        runtime = self.runtime(router)

        def do_withdraw() -> None:
            config = self.configs.get(router)
            new_list = [p for p in config.originated_prefixes if p != prefix]
            change = ConfigChange(
                router,
                "set_originated",
                value=new_list,
                description=f"withdraw {prefix}",
            )
            self.configs.apply(change)
            runtime.apply_config_change(change)

        self._at(at, do_withdraw, f"withdraw:{router}:{prefix}")

    def apply_config_change(
        self, change: ConfigChange, at: Optional[float] = None
    ) -> None:
        """Apply a configuration change (the Fig. 2a operator action)."""
        runtime = self.runtime(change.router)

        def do_change() -> None:
            self.configs.apply(change)
            runtime.apply_config_change(change)

        self._at(at, do_change, f"config:{change.router}:{change.kind}")

    def set_link_status(
        self, router_a: str, router_b: str, up: bool, at: Optional[float] = None
    ) -> None:
        """Fail or restore the link between two routers."""
        link = self.topology.link_between(router_a, router_b)
        if link is None:
            raise NetworkError(f"no link between {router_a} and {router_b}")

        def do_set() -> None:
            if link.up == up:
                return
            link.up = up
            # Both endpoints observe the hardware status change.
            endpoints = set(link.endpoints())
            for name in link.endpoints():
                self.runtime(name).handle_link_status(link, up)
            # iBGP reachability is transitive, so a link change can
            # sever or heal sessions between routers far from the
            # link; without this, updates sent across a partition are
            # lost forever (no session bounce → no re-advertisement).
            for name in sorted(self.runtimes):
                if name not in endpoints:
                    self.runtimes[name].reconcile_sessions()

        state = "up" if up else "down"
        self._at(at, do_set, f"link:{router_a}-{router_b}:{state}")

    def fail_link(
        self, router_a: str, router_b: str, at: Optional[float] = None
    ) -> None:
        self.set_link_status(router_a, router_b, up=False, at=at)

    def restore_link(
        self, router_a: str, router_b: str, at: Optional[float] = None
    ) -> None:
        self.set_link_status(router_a, router_b, up=True, at=at)

    def _at(
        self, at: Optional[float], action: Callable[[], None], label: str
    ) -> None:
        if at is None:
            action()
            return
        self.sim.schedule_at(at, action, label=label, priority=5)

    # -- FIB guards (the paper's footnote-2 interposition point) -------------

    def set_fib_guard(self, guard: Optional[InstallGuard]) -> None:
        """Install ``guard`` on every internal router's FIB."""
        for name, runtime in self.runtimes.items():
            if not runtime.router.external:
                runtime.fib.install_guard = guard

    # -- data-plane inspection --------------------------------------------------

    def forwarding_state(self) -> Dict[str, Dict[Prefix, FibEntry]]:
        """The *actual* current data plane (oracle, not a snapshot)."""
        return {
            name: runtime.fib_snapshot()
            for name, runtime in self.runtimes.items()
        }

    def trace_path(
        self, source: str, address: int, max_hops: int = 64
    ) -> Tuple[List[str], str]:
        """Walk the real FIBs from ``source`` toward ``address``.

        Returns (path, outcome) where outcome is one of ``delivered``
        (reached a local-delivery FIB entry, or crossed into an
        external router — once traffic exits the administrative
        domain it is out of scope, the paper's exit-point semantics),
        ``blackhole`` (no FIB entry / dead link), ``discard`` (null
        route), or ``loop``.
        """
        path = [source]
        current = source
        seen: Set[str] = {source}
        for _ in range(max_hops):
            runtime = self.runtime(current)
            if runtime.router.external and current != source:
                return path, "delivered"
            entry = runtime.fib.lookup(address)
            if entry is None:
                return path, "blackhole"
            if entry.discard:
                return path, "discard"
            if entry.next_hop_router is None:
                return path, "delivered"
            link = self.topology.link_between(current, entry.next_hop_router)
            if link is None or not link.up:
                return path, "blackhole"
            current = entry.next_hop_router
            path.append(current)
            if current in seen:
                return path, "loop"
            seen.add(current)
        return path, "loop"

    def describe(self) -> str:
        lines = [str(self.topology), f"time={self.sim.now:.3f}s"]
        for name in sorted(self.runtimes):
            if not self.runtimes[name].router.external:
                lines.append(self.runtimes[name].describe_state())
        return "\n".join(lines)
