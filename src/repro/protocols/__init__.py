"""Routing protocol engines: BGP, OSPF, static, redistribution.

These modules replace the Cisco IOS images of the paper's feasibility
study with faithful Python implementations of the protocol state
machines the paper's scenarios exercise: the BGP decision process
with vendor-specific tie-breaks, iBGP full-mesh dissemination with
soft reconfiguration and Add-Path, OSPF link-state flooding with SPF,
and admin-distance route selection into the FIB.
"""

from repro.protocols.routes import BgpRoute, ConnectedRoute, OspfRoute, StaticRoute
from repro.protocols.rib import BgpRib, OspfRib
from repro.protocols.fib import Fib, FibEntry
from repro.protocols.bgp_decision import VendorProfile, best_path
from repro.protocols.router import RouterRuntime
from repro.protocols.network import Network

__all__ = [
    "BgpRib",
    "BgpRoute",
    "ConnectedRoute",
    "Fib",
    "FibEntry",
    "Network",
    "OspfRib",
    "OspfRoute",
    "RouterRuntime",
    "StaticRoute",
    "VendorProfile",
    "best_path",
]
