"""The router runtime: protocol engines + FIB + capture, scheduled.

One :class:`RouterRuntime` per router wires the pure protocol state
machines (:mod:`repro.protocols.bgp`, :mod:`repro.protocols.ospf`)
to the simulator clock, the message fabric, the FIB, and the capture
shim.  Every control-plane boundary crossing produces exactly one
:class:`~repro.capture.io_events.IOEvent`, and every internal
dependency between events is recorded on the ground-truth channel —
the oracle the inference benchmarks are scored against.

Causality invariants maintained here (these *are* the generic HBRs
of §4.1):

* ``ROUTE_RECEIVE → RIB_UPDATE``  (input before dependent RIB change)
* ``RIB_UPDATE → FIB_UPDATE``      (BGP installs RIB before FIB)
* ``RIB_UPDATE → ROUTE_SEND``      (BGP announces only RIB winners)
* ``FIB_UPDATE before ROUTE_SEND`` in time (the Fig. 1c property:
  neighbors can only learn a route after the sender's FIB has it)
* ``CONFIG_CHANGE → soft reconfiguration → RIB/FIB/sends``
* ``HARDWARE_STATUS → session loss → withdrawals``
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.capture.logger import RouterLogger
from repro.net.addr import Prefix, format_ip
from repro.net.config import ConfigChange, RouterConfig
from repro.net.simulator import DelayModel
from repro.net.topology import Link, Router, Topology
from repro.protocols.bgp import BgpProcess
from repro.protocols.bgp_decision import VendorProfile
from repro.protocols.fib import Fib, FibEntry
from repro.protocols.messages import (
    BgpUpdate,
    BgpWithdraw,
    LinkStateAdvertisement,
    LsaFlood,
)
from repro.protocols.ospf import OspfProcess
from repro.protocols.routes import BgpRoute

#: Depth limit for recursive next-hop resolution.
MAX_RESOLVE_DEPTH = 4


class RouterRuntime:
    """Everything that runs *on* one simulated router."""

    def __init__(self, router: Router, network: "Any"):
        self.name = router.name
        self.router = router
        self.network = network
        self.topology: Topology = network.topology
        self.sim = network.sim
        self.delays: DelayModel = network.delays_for(router.name)
        self.config: RouterConfig = network.configs.get(router.name)
        profile = VendorProfile.for_vendor(router.vendor)
        if network.deterministic_bgp:
            profile = profile.deterministic()
        self.profile = profile
        self.bgp = BgpProcess(self.name, self.config, profile)
        self.ospf: Optional[OspfProcess] = (
            OspfProcess(self.name) if self.config.ospf_interfaces else None
        )
        from repro.protocols.dvp import DistanceVectorProcess

        self.dv: Optional[DistanceVectorProcess] = (
            DistanceVectorProcess(self.name) if self.config.dv_enabled else None
        )
        self.fib = Fib(self.name)
        self.logger: RouterLogger = network.logger_for(router)
        self._ground = network.ground_truth
        self._spf_scheduled = False
        self._spf_causes: List[int] = []
        #: (prefix -> event_id) of the last advertisement batch's cause,
        #: kept for diagnostics.
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    # logging helpers
    # ------------------------------------------------------------------

    def _log(
        self,
        kind: IOKind,
        causes: Sequence[IOEvent],
        protocol: Optional[str] = None,
        prefix: Optional[Prefix] = None,
        action: Optional[RouteAction] = None,
        peer: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> IOEvent:
        event = self.logger.log(
            kind,
            self.sim.now,
            protocol=protocol,
            prefix=prefix,
            action=action,
            peer=peer,
            attrs=attrs,
        )
        for cause in causes:
            self._ground.record(cause.event_id, event.event_id)
        return event

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Install initial state: connected routes, statics, origins, OSPF."""
        # Sessions over links that are down at boot must start down,
        # or a later link recovery will not trigger re-advertisement.
        for peer, state in self.bgp.sessions.items():
            state.up = self._peer_reachable(peer, state.config)
        self._install_connected_routes()
        self._install_loopback()
        for prefix in self._static_prefixes():
            self.refresh_fib(prefix, causes=())
        for prefix in self.config.originated_prefixes:
            self.run_bgp_decision(prefix, causes=())
        if self.ospf is not None:
            self._reoriginate_lsa(causes=())
            self._schedule_spf(causes=())
        if self.dv is not None:
            for prefix in self.config.dv_originated:
                route = self.dv.originate(prefix)
                if route is not None:
                    self._dv_apply(route, causes=())

    def _install_connected_routes(self) -> None:
        for link in self.topology.links_of(self.name):
            if not link.up:
                continue
            iface = link.interface_of(self.name)
            self.refresh_fib(iface.prefix, causes=())

    def _install_loopback(self) -> None:
        if self.router.loopback:
            loopback = Prefix(self.router.loopback, 32)
            entry = FibEntry(
                prefix=loopback,
                next_hop=None,
                next_hop_router=None,
                out_interface="lo0",
                protocol="connected",
            )
            if self.fib.install(entry):
                self._log(
                    IOKind.FIB_UPDATE,
                    causes=(),
                    protocol="connected",
                    prefix=loopback,
                    action=RouteAction.ANNOUNCE,
                    attrs={"out_interface": "lo0"},
                )

    def _static_prefixes(self) -> List[Prefix]:
        return [s.prefix for s in self.config.static_routes]

    # ------------------------------------------------------------------
    # next-hop resolution
    # ------------------------------------------------------------------

    def _connected_subnets(self) -> List[Tuple[Prefix, str, Link]]:
        """(subnet, interface name, link) for every up link."""
        result = []
        for link in self.topology.links_of(self.name):
            if not link.up:
                continue
            iface = link.interface_of(self.name)
            result.append((iface.prefix, iface.name, link))
        return result

    def resolve_next_hop(
        self, address: int, depth: int = 0
    ) -> Optional[Tuple[str, str, int]]:
        """Resolve a BGP/static next-hop address to forwarding data.

        Returns (next_hop_router, out_interface, next_hop_address) or
        None when the address is unreachable.  Resolution prefers a
        directly connected subnet, then the OSPF RIB, then statics,
        recursing at most :data:`MAX_RESOLVE_DEPTH` times.
        """
        if depth > MAX_RESOLVE_DEPTH:
            return None
        for subnet, iface_name, link in self._connected_subnets():
            if not subnet.contains_address(address):
                continue
            far = link.other_end(self.name)
            if far.address == address:
                return (far.router, iface_name, address)
            owner = self.topology.owner_of_address(address)
            if owner is not None and owner != self.name:
                return (owner, iface_name, address)
            return None
        if self.ospf is not None:
            best: Optional[Tuple[int, Any]] = None
            for prefix, route in self.ospf.rib.routes().items():
                if prefix.contains_address(address):
                    if best is None or prefix.length > best[0]:
                        best = (prefix.length, route)
            if best is not None:
                route = best[1]
                adj = self._adjacent_via(route.next_hop_router)
                if adj is not None:
                    return adj
        for static in self.config.static_routes:
            if static.discard or static.next_hop is None:
                continue
            if static.prefix.contains_address(address):
                return self.resolve_next_hop(static.next_hop, depth + 1)
        return None

    def _adjacent_via(self, neighbor: str) -> Optional[Tuple[str, str, int]]:
        """Forwarding data for a directly adjacent ``neighbor``."""
        link = self.topology.link_between(self.name, neighbor)
        if link is None or not link.up:
            return None
        mine = link.interface_of(self.name)
        theirs = link.other_end(self.name)
        return (neighbor, mine.name, theirs.address)

    def _igp_metrics_for(self, candidates: Iterable[BgpRoute]) -> Dict[int, int]:
        """IGP cost to each candidate next hop (resolvable ones only)."""
        metrics: Dict[int, int] = {}
        for route in candidates:
            if route.next_hop in metrics or route.locally_originated:
                continue
            for subnet, _, _ in self._connected_subnets():
                if subnet.contains_address(route.next_hop):
                    metrics[route.next_hop] = 0
                    break
            else:
                if self.ospf is not None:
                    cost = self.ospf.rib.metric_to(route.next_hop)
                    if cost is not None:
                        metrics[route.next_hop] = cost
        return metrics

    def _is_resolvable(self, route: BgpRoute) -> bool:
        if route.locally_originated:
            return True
        return self.resolve_next_hop(route.next_hop) is not None

    # ------------------------------------------------------------------
    # BGP: receive path
    # ------------------------------------------------------------------

    def handle_bgp_update(self, msg: BgpUpdate) -> None:
        """A BGP announcement arrived on the wire."""
        self.messages_received += 1
        session = self.bgp.session(msg.sender)
        if session is None or not session.up:
            return
        route = msg.route
        attrs: Dict[str, Any] = {
            "next_hop": format_ip(route.next_hop),
            "as_path": ",".join(str(a) for a in route.as_path),
            "med": route.med,
            "path_id": route.path_id,
        }
        if not self.bgp.is_ebgp(msg.sender):
            attrs["local_pref"] = route.local_pref
        ev_recv = self._log(
            IOKind.ROUTE_RECEIVE,
            causes=(),
            protocol="bgp",
            prefix=route.prefix,
            action=RouteAction.ANNOUNCE,
            peer=msg.sender,
            attrs=attrs,
        )
        if msg.send_event_id:
            self._ground.record(msg.send_event_id, ev_recv.event_id)
        delay = self.sim.jitter(self.delays.rib_update)
        self.sim.schedule(
            delay,
            lambda: self._process_bgp_announce(msg, ev_recv),
            label=f"{self.name}:bgp-process:{route.prefix}",
        )

    def _process_bgp_announce(self, msg: BgpUpdate, ev_recv: IOEvent) -> None:
        route = msg.route
        peer_config = self.network.configs.get(msg.sender)
        enriched = replace(
            route,
            from_peer=msg.sender,
            ebgp_learned=self.bgp.is_ebgp(msg.sender),
            received_at=self.sim.now,
            peer_address=route.next_hop if route.next_hop else 0,
            peer_router_id=peer_config.router_id,
            peer_asn=peer_config.asn,
        )
        if self.bgp.is_ebgp(msg.sender):
            # eBGP resets local-pref to the local default before import
            # policy; import maps may then override it (this is how the
            # paper's LP-20/LP-30 policies are applied).
            enriched = replace(enriched, local_pref=100)
        self.bgp.receive(msg.sender, enriched)
        self.run_bgp_decision(route.prefix, causes=(ev_recv,))

    def handle_bgp_withdraw(self, msg: BgpWithdraw) -> None:
        """A BGP withdrawal arrived on the wire."""
        self.messages_received += 1
        session = self.bgp.session(msg.sender)
        if session is None or not session.up:
            return
        ev_recv = self._log(
            IOKind.ROUTE_RECEIVE,
            causes=(),
            protocol="bgp",
            prefix=msg.prefix,
            action=RouteAction.WITHDRAW,
            peer=msg.sender,
            attrs={"path_id": msg.path_id},
        )
        if msg.send_event_id:
            self._ground.record(msg.send_event_id, ev_recv.event_id)
        delay = self.sim.jitter(self.delays.rib_update)
        self.sim.schedule(
            delay,
            lambda: self._process_bgp_withdraw(msg, ev_recv),
            label=f"{self.name}:bgp-withdraw:{msg.prefix}",
        )

    def _process_bgp_withdraw(self, msg: BgpWithdraw, ev_recv: IOEvent) -> None:
        changed = self.bgp.withdraw(msg.sender, msg.prefix, msg.path_id)
        if changed:
            self.run_bgp_decision(msg.prefix, causes=(ev_recv,))

    # ------------------------------------------------------------------
    # BGP: decision + FIB + advertisement
    # ------------------------------------------------------------------

    def run_bgp_decision(
        self, prefix: Prefix, causes: Sequence[IOEvent]
    ) -> None:
        """Re-run the decision process for ``prefix``.

        Emits a RIB_UPDATE when the Loc-RIB best changes, then
        schedules the dependent FIB refresh and advertisements in the
        order the paper relies on: RIB, then FIB, then sends.
        """
        candidates = [
            c
            for c in self.bgp.candidates(prefix)
            if self._is_resolvable(c)
        ]
        metrics = self._igp_metrics_for(candidates)
        candidates = [
            c.with_igp_metric(metrics.get(c.next_hop, 0)) for c in candidates
        ]
        from repro.protocols.bgp_decision import best_path

        new_best = best_path(candidates, self.profile)
        old_best = self.bgp.rib.best(prefix)
        if new_best == old_best:
            # Best unchanged; Add-Path sessions may still need refreshed
            # advertisement sets when backup paths changed.
            if any(s.config.add_path for s in self.bgp.sessions.values()):
                self._schedule_advertise(prefix, causes)
            return
        if new_best is None:
            self.bgp.rib.clear_best(prefix)
            ev_rib = self._log(
                IOKind.RIB_UPDATE,
                causes=causes,
                protocol="bgp",
                prefix=prefix,
                action=RouteAction.WITHDRAW,
            )
        else:
            self.bgp.rib.set_best(new_best)
            ev_rib = self._log(
                IOKind.RIB_UPDATE,
                causes=causes,
                protocol="bgp",
                prefix=prefix,
                action=RouteAction.ANNOUNCE,
                peer=new_best.from_peer,
                attrs={
                    "local_pref": new_best.local_pref,
                    "next_hop": format_ip(new_best.next_hop),
                    "as_path": ",".join(str(a) for a in new_best.as_path),
                    "via": new_best.from_peer or "local",
                },
            )
        fib_delay = self.sim.jitter(self.delays.fib_install)
        self.sim.schedule(
            fib_delay,
            lambda: self.refresh_fib(prefix, causes=(ev_rib,)),
            label=f"{self.name}:fib:{prefix}",
        )
        send_delay = fib_delay + self.sim.jitter(self.delays.advertisement)
        self.sim.schedule(
            send_delay,
            lambda: self.advertise(prefix, causes=(ev_rib,)),
            label=f"{self.name}:advertise:{prefix}",
        )

    def _schedule_advertise(
        self, prefix: Prefix, causes: Sequence[IOEvent]
    ) -> None:
        delay = self.sim.jitter(self.delays.fib_install) + self.sim.jitter(
            self.delays.advertisement
        )
        frozen = tuple(causes)
        self.sim.schedule(
            delay,
            lambda: self.advertise(prefix, causes=frozen),
            label=f"{self.name}:advertise:{prefix}",
        )

    # ------------------------------------------------------------------
    # FIB refresh
    # ------------------------------------------------------------------

    def _fib_candidates(self, prefix: Prefix) -> List[FibEntry]:
        """Per-protocol candidate FIB entries for exactly ``prefix``."""
        candidates: List[FibEntry] = []
        for subnet, iface_name, _ in self._connected_subnets():
            if subnet == prefix:
                candidates.append(
                    FibEntry(
                        prefix=prefix,
                        next_hop=None,
                        next_hop_router=None,
                        out_interface=iface_name,
                        protocol="connected",
                    )
                )
        for static in self.config.static_routes:
            if static.prefix != prefix:
                continue
            if static.discard:
                candidates.append(
                    FibEntry(
                        prefix=prefix,
                        next_hop=None,
                        next_hop_router=None,
                        out_interface=None,
                        protocol="static",
                        discard=True,
                    )
                )
                continue
            resolved = self.resolve_next_hop(static.next_hop or 0)
            if resolved is not None:
                nh_router, iface, nh_addr = resolved
                candidates.append(
                    FibEntry(
                        prefix=prefix,
                        next_hop=nh_addr,
                        next_hop_router=nh_router,
                        out_interface=iface,
                        protocol="static",
                    )
                )
        if self.ospf is not None:
            route = self.ospf.rib.get(prefix)
            if route is not None:
                adj = self._adjacent_via(route.next_hop_router)
                if adj is not None:
                    nh_router, iface, nh_addr = adj
                    candidates.append(
                        FibEntry(
                            prefix=prefix,
                            next_hop=nh_addr,
                            next_hop_router=nh_router,
                            out_interface=iface,
                            protocol="ospf",
                            metric=route.metric,
                        )
                    )
        if self.dv is not None:
            dv_route = self.dv.get(prefix)
            if dv_route is not None and dv_route.reachable:
                if dv_route.via_router is None:
                    candidates.append(
                        FibEntry(
                            prefix=prefix,
                            next_hop=None,
                            next_hop_router=None,
                            out_interface=None,
                            protocol="eigrp",
                            metric=dv_route.metric,
                        )
                    )
                else:
                    adj = self._adjacent_via(dv_route.via_router)
                    if adj is not None:
                        nh_router, iface, nh_addr = adj
                        candidates.append(
                            FibEntry(
                                prefix=prefix,
                                next_hop=nh_addr,
                                next_hop_router=nh_router,
                                out_interface=iface,
                                protocol="eigrp",
                                metric=dv_route.metric,
                            )
                        )
        best = self.bgp.rib.best(prefix)
        if best is not None and not best.locally_originated:
            resolved = self.resolve_next_hop(best.next_hop)
            if resolved is not None:
                nh_router, iface, nh_addr = resolved
                candidates.append(
                    FibEntry(
                        prefix=prefix,
                        next_hop=nh_addr,
                        next_hop_router=nh_router,
                        out_interface=iface,
                        protocol=best.rib_protocol,
                        metric=best.med,
                    )
                )
        return candidates

    def refresh_fib(self, prefix: Prefix, causes: Sequence[IOEvent]) -> None:
        """Recompute and (maybe) rewrite the FIB entry for ``prefix``."""
        from repro.protocols.fib import select_route

        winner = select_route(
            self._fib_candidates(prefix), self.config.admin_distance
        )
        current = self.fib.get(prefix)
        if winner == current:
            return
        if winner is None:
            removed = self.fib.remove(prefix)
            if removed is not None:
                self._log(
                    IOKind.FIB_UPDATE,
                    causes=causes,
                    protocol=removed.protocol,
                    prefix=prefix,
                    action=RouteAction.WITHDRAW,
                    attrs={"next_hop_router": removed.next_hop_router},
                )
            return
        if self.fib.install(winner):
            self._log(
                IOKind.FIB_UPDATE,
                causes=causes,
                protocol=winner.protocol,
                prefix=prefix,
                action=RouteAction.ANNOUNCE,
                attrs={
                    "next_hop_router": winner.next_hop_router,
                    "out_interface": winner.out_interface,
                    "next_hop": format_ip(winner.next_hop or 0),
                    "discard": winner.discard,
                },
            )

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------

    def advertise(self, prefix: Prefix, causes: Sequence[IOEvent]) -> None:
        """Diff Adj-RIB-Out per peer and send the necessary updates."""
        for peer in self.bgp.up_peers():
            self._advertise_to_peer(peer, prefix, causes)

    def _own_address_toward(self, peer: str) -> int:
        link = self.topology.link_between(self.name, peer)
        if link is not None:
            return link.interface_of(self.name).address
        # Multihop (iBGP) session: use the loopback.
        return self.router.loopback

    def _advertise_to_peer(
        self, peer: str, prefix: Prefix, causes: Sequence[IOEvent]
    ) -> None:
        ranked = self.bgp.paths_to_advertise(peer, prefix)
        own_addr = self._own_address_toward(peer)
        exported: List[BgpRoute] = []
        for index, path in enumerate(ranked):
            out = self.bgp.export_route(peer, path, own_addr, path_id=index)
            if out is not None:
                exported.append(out)
        previous = self.bgp.rib.last_advertised(peer, prefix)
        new_tuple = tuple(exported)
        if new_tuple == previous:
            return
        previous_ids = {r.path_id for r in previous}
        new_ids = {r.path_id for r in new_tuple}
        # Withdraw dropped path ids first, then (re-)announce the rest.
        for path_id in sorted(previous_ids - new_ids):
            self._send_withdraw(peer, prefix, path_id, causes)
        previous_by_id = {r.path_id: r for r in previous}
        for route in new_tuple:
            if previous_by_id.get(route.path_id) == route:
                continue
            self._send_update(peer, route, causes)
        self.bgp.rib.record_advertised(peer, prefix, new_tuple)

    def _send_update(
        self, peer: str, route: BgpRoute, causes: Sequence[IOEvent]
    ) -> None:
        attrs: Dict[str, Any] = {
            "next_hop": format_ip(route.next_hop),
            "as_path": ",".join(str(a) for a in route.as_path),
            "med": route.med,
            "path_id": route.path_id,
        }
        if not self.bgp.is_ebgp(peer):
            attrs["local_pref"] = route.local_pref
        ev_send = self._log(
            IOKind.ROUTE_SEND,
            causes=causes,
            protocol="bgp",
            prefix=route.prefix,
            action=RouteAction.ANNOUNCE,
            peer=peer,
            attrs=attrs,
        )
        self.messages_sent += 1
        self.network.deliver_bgp(
            BgpUpdate(
                sender=self.name,
                receiver=peer,
                route=route,
                send_event_id=ev_send.event_id,
            )
        )

    def _send_withdraw(
        self,
        peer: str,
        prefix: Prefix,
        path_id: int,
        causes: Sequence[IOEvent],
    ) -> None:
        ev_send = self._log(
            IOKind.ROUTE_SEND,
            causes=causes,
            protocol="bgp",
            prefix=prefix,
            action=RouteAction.WITHDRAW,
            peer=peer,
            attrs={"path_id": path_id},
        )
        self.messages_sent += 1
        self.network.deliver_bgp(
            BgpWithdraw(
                sender=self.name,
                receiver=peer,
                prefix=prefix,
                path_id=path_id,
                send_event_id=ev_send.event_id,
            )
        )

    # ------------------------------------------------------------------
    # configuration changes
    # ------------------------------------------------------------------

    def apply_config_change(self, change: ConfigChange) -> IOEvent:
        """Apply an (already stored) config change and schedule effects.

        The CONFIG_CHANGE input event is the root-cause leaf the
        repair machinery of §6 looks for.
        """
        ev_cfg = self._log(
            IOKind.CONFIG_CHANGE,
            causes=(),
            attrs={
                "kind": change.kind,
                "key": change.key,
                "change_id": change.change_id,
                "description": change.description or change.kind,
            },
        )
        if change.kind in ("set_route_map", "set_neighbor", "remove_neighbor"):
            self.bgp.refresh_sessions()
            delay = self.sim.jitter(self.delays.config_to_reconfig)
            self.sim.schedule(
                delay,
                lambda: self._soft_reconfigure(ev_cfg),
                label=f"{self.name}:soft-reconfig",
            )
        elif change.kind == "set_static":
            affected: Set[Prefix] = set(self._static_prefixes())
            if isinstance(change.previous, list):
                affected.update(s.prefix for s in change.previous)
            for prefix in sorted(affected):
                self.refresh_fib(prefix, causes=(ev_cfg,))
        elif change.kind == "set_originated":
            affected = set(self.config.originated_prefixes)
            if isinstance(change.previous, list):
                affected.update(change.previous)
            for prefix in sorted(affected):
                self.run_bgp_decision(prefix, causes=(ev_cfg,))
        elif change.kind == "set_dv_originated" and self.dv is not None:
            current = set(self.config.dv_originated)
            previous = set(change.previous or [])
            for prefix in sorted(current - previous):
                route = self.dv.originate(prefix)
                if route is not None:
                    self._dv_apply(route, causes=(ev_cfg,))
            for prefix in sorted(previous - current):
                route = self.dv.withdraw_origin(prefix)
                if route is not None:
                    self._dv_apply(route, causes=(ev_cfg,))
        elif change.kind == "set_ospf_cost" and self.ospf is not None:
            self._reoriginate_lsa(causes=(ev_cfg,))
            self._schedule_spf(causes=(ev_cfg,))
        return ev_cfg

    def _soft_reconfigure(self, ev_cfg: IOEvent) -> None:
        """Cisco-style inbound soft reconfiguration (the Fig. 5 step)."""
        affected = self.bgp.soft_reconfigure()
        affected.update(self.config.originated_prefixes)
        for prefix in sorted(affected):
            self.run_bgp_decision(prefix, causes=(ev_cfg,))

    # ------------------------------------------------------------------
    # hardware status
    # ------------------------------------------------------------------

    def handle_link_status(self, link: Link, up: bool) -> IOEvent:
        """Our side of ``link`` changed state."""
        iface = link.interface_of(self.name)
        ev_hw = self._log(
            IOKind.HARDWARE_STATUS,
            causes=(),
            attrs={"link": iface.name, "status": "up" if up else "down"},
        )
        self.refresh_fib(iface.prefix, causes=(ev_hw,))
        # Every session may be affected, not just the direct peer's:
        # iBGP sessions ride the IGP, so losing this link can sever
        # sessions with routers reachable only through it.
        for peer in sorted(self.bgp.sessions):
            self._reconcile_session(peer, ev_hw)
        if not up:
            self._dv_handle_link_down(link.other_end(self.name).router, ev_hw)
        if self.ospf is not None and iface.name in self.config.ospf_interfaces:
            self._reoriginate_lsa(causes=(ev_hw,))
            if up:
                self._ospf_database_exchange(
                    link.other_end(self.name).router, causes=(ev_hw,)
                )
            self._schedule_spf(causes=(ev_hw,))
        return ev_hw

    def reconcile_sessions(self) -> None:
        """Re-check every BGP session against current reachability.

        Called on routers *not* adjacent to a changed link: their
        iBGP sessions ride the IGP, so a distant link failure can
        sever (or heal) them without any local hardware event.  The
        hold-timer expiry / session re-establishment the router would
        observe is logged as a hardware-status input; reconciliation
        then replays the normal session up/down handling, including
        the Loc-RIB re-advertisement a recovered peer needs.
        """
        for peer in sorted(self.bgp.sessions):
            state = self.bgp.session(peer)
            if state is None:
                continue
            reachable = self._peer_reachable(peer, state.config)
            if state.up == reachable:
                continue
            ev = self._log(
                IOKind.HARDWARE_STATUS,
                causes=(),
                peer=peer,
                attrs={
                    "session": peer,
                    "status": "up" if reachable else "down",
                },
            )
            self._reconcile_session(peer, ev)

    def _peer_reachable(self, peer: str, config) -> bool:
        """eBGP sessions are single-hop: they need the direct link up.
        iBGP sessions ride the IGP: they need any up path."""
        if config.is_external(self.config.asn):
            link = self.topology.link_between(self.name, peer)
            return link is not None and link.up
        return self.network.path_exists(self.name, peer)

    def _reconcile_session(self, peer: str, ev_hw: IOEvent) -> None:
        """Bring the session with ``peer`` up/down to match reachability."""
        state = self.bgp.session(peer)
        if state is None:
            return
        reachable = self._peer_reachable(peer, state.config)
        if state.up and not reachable:
            self.bgp.set_session_state(peer, up=False)
            affected = self.bgp.session_down_cleanup(peer)
            for prefix in affected:
                self.run_bgp_decision(prefix, causes=(ev_hw,))
        elif not state.up and reachable:
            self.bgp.set_session_state(peer, up=True)
            # Re-advertise our Loc-RIB to the recovered peer.
            for prefix in sorted(self.bgp.rib.loc_rib()):
                self._schedule_advertise(prefix, causes=(ev_hw,))

    # ------------------------------------------------------------------
    # OSPF
    # ------------------------------------------------------------------

    def _ospf_adjacencies(self) -> List[Tuple[str, int]]:
        result = []
        for link in self.topology.links_of(self.name):
            if not link.up:
                continue
            iface = link.interface_of(self.name)
            cfg = self.config.ospf_interfaces.get(iface.name)
            if cfg is None or cfg.passive:
                continue
            far = link.other_end(self.name)
            far_config = self.network.configs.get(far.router)
            if far.name not in far_config.ospf_interfaces:
                continue
            result.append((far.router, cfg.cost))
        return result

    def _ospf_stubs(self) -> List[Tuple[Prefix, int]]:
        stubs: List[Tuple[Prefix, int]] = []
        if self.router.loopback:
            stubs.append((Prefix(self.router.loopback, 32), 0))
        for link in self.topology.links_of(self.name):
            if not link.up:
                continue
            iface = link.interface_of(self.name)
            cfg = self.config.ospf_interfaces.get(iface.name)
            if cfg is None:
                continue
            stubs.append((iface.prefix, cfg.cost))
        return stubs

    def _reoriginate_lsa(self, causes: Sequence[IOEvent]) -> None:
        if self.ospf is None:
            return
        lsa = self.ospf.originate(self._ospf_adjacencies(), self._ospf_stubs())
        self._flood_lsa(lsa, causes, exclude=None)

    def _send_lsa_to(
        self,
        neighbor: str,
        lsa: LinkStateAdvertisement,
        causes: Sequence[IOEvent],
    ) -> None:
        ev_send = self._log(
            IOKind.ROUTE_SEND,
            causes=causes,
            protocol="ospf",
            prefix=None,
            action=RouteAction.ANNOUNCE,
            peer=neighbor,
            attrs={"lsa_origin": lsa.origin, "lsa_seq": lsa.seq},
        )
        self.messages_sent += 1
        self.network.deliver_lsa(
            LsaFlood(
                sender=self.name,
                receiver=neighbor,
                lsa=lsa,
                send_event_id=ev_send.event_id,
            )
        )

    def _flood_lsa(
        self,
        lsa: LinkStateAdvertisement,
        causes: Sequence[IOEvent],
        exclude: Optional[str],
    ) -> None:
        for neighbor, _cost in self._ospf_adjacencies():
            if neighbor == exclude:
                continue
            self._send_lsa_to(neighbor, lsa, causes)

    def _ospf_database_exchange(
        self, neighbor: str, causes: Sequence[IOEvent]
    ) -> None:
        """RFC 2328 §10 database synchronization, abbreviated.

        When an adjacency (re)forms, the neighbor's LSDB may be
        arbitrarily stale — LSAs re-originated while the link was
        down never crossed it.  Real OSPF exchanges database
        descriptions and requests what's missing; we model the result
        by sending our entire LSDB, relying on sequence-number
        comparison at the receiver to discard what it already has and
        re-flood what its side of the network is missing.
        """
        if self.ospf is None:
            return
        if neighbor not in {n for n, _ in self._ospf_adjacencies()}:
            return
        for origin in sorted(self.ospf.lsdb):
            if origin == self.name:
                continue  # just re-originated and flooded
            self._send_lsa_to(neighbor, self.ospf.lsdb[origin], causes)

    def handle_lsa(self, msg: LsaFlood) -> None:
        if self.ospf is None:
            return
        self.messages_received += 1
        ev_recv = self._log(
            IOKind.ROUTE_RECEIVE,
            causes=(),
            protocol="ospf",
            prefix=None,
            action=RouteAction.ANNOUNCE,
            peer=msg.sender,
            attrs={"lsa_origin": msg.lsa.origin, "lsa_seq": msg.lsa.seq},
        )
        if msg.send_event_id:
            self._ground.record(msg.send_event_id, ev_recv.event_id)
        if not self.ospf.accept(msg.lsa):
            return
        self._flood_lsa(msg.lsa, causes=(ev_recv,), exclude=msg.sender)
        self._schedule_spf(causes=(ev_recv,))

    def _schedule_spf(self, causes: Sequence[IOEvent]) -> None:
        if self.ospf is None:
            return
        self._spf_causes.extend(c.event_id for c in causes)
        if self._spf_scheduled:
            return
        self._spf_scheduled = True
        delay = self.sim.jitter(self.delays.spf_compute)
        self.sim.schedule(delay, self._run_spf, label=f"{self.name}:spf")

    def _run_spf(self) -> None:
        if self.ospf is None:
            return
        self._spf_scheduled = False
        cause_ids = list(dict.fromkeys(self._spf_causes))
        self._spf_causes.clear()

        class _CauseProxy:
            """Minimal stand-in so _log can wire stored cause ids."""

            __slots__ = ("event_id",)

            def __init__(self, event_id: int):
                self.event_id = event_id

        causes = tuple(_CauseProxy(i) for i in cause_ids)
        routes = self.ospf.run_spf()
        added, removed, changed = self.ospf.rib.replace_all(routes)
        rib_events: List[IOEvent] = []
        for route in added:
            rib_events.append(
                self._log(
                    IOKind.RIB_UPDATE,
                    causes=causes,  # type: ignore[arg-type]
                    protocol="ospf",
                    prefix=route.prefix,
                    action=RouteAction.ANNOUNCE,
                    attrs={"metric": route.metric, "via": route.next_hop_router},
                )
            )
        for route in removed:
            rib_events.append(
                self._log(
                    IOKind.RIB_UPDATE,
                    causes=causes,  # type: ignore[arg-type]
                    protocol="ospf",
                    prefix=route.prefix,
                    action=RouteAction.WITHDRAW,
                )
            )
        for _old, new in changed:
            rib_events.append(
                self._log(
                    IOKind.RIB_UPDATE,
                    causes=causes,  # type: ignore[arg-type]
                    protocol="ospf",
                    prefix=new.prefix,
                    action=RouteAction.ANNOUNCE,
                    attrs={"metric": new.metric, "via": new.next_hop_router},
                )
            )
        if not rib_events:
            return
        fib_delay = self.sim.jitter(self.delays.fib_install)
        frozen = tuple(rib_events)
        for event in frozen:
            self.sim.schedule(
                fib_delay,
                lambda e=event: self.refresh_fib(e.prefix, causes=(e,)),
                label=f"{self.name}:fib:{event.prefix}",
            )
            self._maybe_redistribute(
                "ospf",
                event.prefix,
                available=event.action is RouteAction.ANNOUNCE,
                causes=(event,),
            )
        # IGP metrics feed the BGP decision process; re-run it for all
        # known prefixes since next-hop costs may have shifted.
        if self.bgp.rib.known_prefixes():
            self.sim.schedule(
                fib_delay,
                lambda: self._rerun_bgp_after_igp(frozen),
                label=f"{self.name}:bgp-after-spf",
            )

    def _rerun_bgp_after_igp(self, causes: Sequence[IOEvent]) -> None:
        for prefix in sorted(self.bgp.rib.known_prefixes()):
            self.run_bgp_decision(prefix, causes=causes)
            # Even when the best path is unchanged, its *resolution*
            # may now point through a different IGP next hop; the FIB
            # must follow (BGP recursion over the new SPF result).
            self.refresh_fib(prefix, causes=causes)

    # ------------------------------------------------------------------
    # redistribution (§4.1: "route redistribution ... mechanisms")
    # ------------------------------------------------------------------

    def _maybe_redistribute(
        self,
        source_protocol: str,
        prefix: Prefix,
        available: bool,
        causes: Sequence[IOEvent],
    ) -> None:
        """Inject/remove ``prefix`` into targets configured to import
        from ``source_protocol``.

        Creates the cross-protocol HBR chain the paper alludes to:
        [R update P in <source> RIB] → [R update P in BGP RIB] →
        downstream advertisements.
        """
        for redist in self.config.redistributions:
            if redist.source != source_protocol:
                continue
            if redist.target != "bgp":
                continue  # only BGP as a target is modelled
            permitted = available
            route_map = self.config.route_map(redist.route_map)
            if route_map is not None:
                clause = route_map.first_match(prefix)
                if clause is None or not clause.permit:
                    permitted = False
            if permitted:
                self.bgp.redistribute_in(prefix, source_protocol)
            elif self.bgp.redistribute_out(prefix) is None:
                continue  # was not injected; nothing to update
            self.run_bgp_decision(prefix, causes=causes)

    # ------------------------------------------------------------------
    # distance-vector protocol (EIGRP-style: FIB install BEFORE send)
    # ------------------------------------------------------------------

    def _dv_neighbors(self) -> List[str]:
        """Adjacent routers also running the DV protocol (up links)."""
        result = []
        for link in self.topology.links_of(self.name):
            if not link.up:
                continue
            far = link.other_end(self.name).router
            if self.network.configs.get(far).dv_enabled:
                result.append(far)
        return sorted(result)

    def _dv_apply(self, route, causes: Sequence[IOEvent]) -> None:
        """A DV table entry changed: RIB event, then FIB, then sends.

        The send is scheduled from *inside* the FIB step — the EIGRP
        ordering of §4.1: [R install P in FIB] → [R send EIGRP
        advertisement for P].
        """
        from repro.protocols.dvp import INFINITY

        action = (
            RouteAction.ANNOUNCE if route.reachable else RouteAction.WITHDRAW
        )
        ev_rib = self._log(
            IOKind.RIB_UPDATE,
            causes=causes,
            protocol="eigrp",
            prefix=route.prefix,
            action=action,
            attrs={"metric": route.metric, "via": route.via_router or "local"},
        )
        delay = self.sim.jitter(self.delays.fib_install)
        self.sim.schedule(
            delay,
            lambda: self._dv_install(route, ev_rib),
            label=f"{self.name}:dv-fib:{route.prefix}",
        )
        self._maybe_redistribute(
            "eigrp", route.prefix, route.reachable, causes=(ev_rib,)
        )

    def _dv_install(self, route, ev_rib: IOEvent) -> None:
        self.refresh_fib(route.prefix, causes=(ev_rib,))
        fib_events = [
            e
            for e in self.network.collector.query(
                router=self.name, kind=IOKind.FIB_UPDATE, prefix=route.prefix
            )
        ]
        # The send's cause is the FIB event when one was just written
        # (the EIGRP HBR); if the FIB did not change (e.g. another
        # protocol's route still wins), fall back to the RIB event.
        cause: IOEvent = ev_rib
        if fib_events:
            latest = max(fib_events, key=lambda e: (e.timestamp, e.event_id))
            if abs(latest.timestamp - self.sim.now - self.logger.clock_skew) < 1e-9:
                cause = latest
        delay = self.sim.jitter(self.delays.advertisement)
        self.sim.schedule(
            delay,
            lambda: self._dv_send_all(route.prefix, causes=(cause,)),
            label=f"{self.name}:dv-send:{route.prefix}",
        )

    def _dv_send_all(self, prefix: Prefix, causes: Sequence[IOEvent]) -> None:
        if self.dv is None:
            return
        from repro.protocols.dvp import DvUpdate, INFINITY

        for neighbor in self._dv_neighbors():
            metric = self.dv.advertised_metric(prefix, neighbor)
            if metric is None:
                continue
            action = (
                RouteAction.ANNOUNCE if metric < INFINITY else RouteAction.WITHDRAW
            )
            ev_send = self._log(
                IOKind.ROUTE_SEND,
                causes=causes,
                protocol="eigrp",
                prefix=prefix,
                action=action,
                peer=neighbor,
                attrs={"metric": metric},
            )
            self.messages_sent += 1
            self.network.deliver_dv(
                DvUpdate(
                    sender=self.name,
                    receiver=neighbor,
                    prefix=prefix,
                    metric=metric,
                    send_event_id=ev_send.event_id,
                )
            )

    def handle_dv_update(self, msg) -> None:
        if self.dv is None:
            return
        from repro.protocols.dvp import INFINITY

        self.messages_received += 1
        action = (
            RouteAction.ANNOUNCE if msg.metric < INFINITY else RouteAction.WITHDRAW
        )
        ev_recv = self._log(
            IOKind.ROUTE_RECEIVE,
            causes=(),
            protocol="eigrp",
            prefix=msg.prefix,
            action=action,
            peer=msg.sender,
            attrs={"metric": msg.metric},
        )
        if msg.send_event_id:
            self._ground.record(msg.send_event_id, ev_recv.event_id)
        delay = self.sim.jitter(self.delays.rib_update)
        self.sim.schedule(
            delay,
            lambda: self._process_dv_update(msg, ev_recv),
            label=f"{self.name}:dv-process:{msg.prefix}",
        )

    def _process_dv_update(self, msg, ev_recv: IOEvent) -> None:
        if self.dv is None:
            return
        changed = self.dv.receive(msg.sender, msg.prefix, msg.metric)
        if changed is not None:
            self._dv_apply(changed, causes=(ev_recv,))

    def _dv_handle_link_down(self, far: str, ev_hw: IOEvent) -> None:
        if self.dv is None:
            return
        if far in self._dv_neighbors():
            return  # another up link still reaches the neighbor
        for poisoned in self.dv.neighbor_lost(far):
            self._dv_apply(poisoned, causes=(ev_hw,))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def fib_snapshot(self) -> Dict[Prefix, FibEntry]:
        return self.fib.snapshot()

    def describe_state(self) -> str:
        lines = [f"=== {self.name} (AS{self.config.asn}, {self.profile.name}) ==="]
        lines.append("  BGP Loc-RIB:")
        for prefix, route in sorted(self.bgp.rib.loc_rib().items()):
            lines.append(f"    {route.describe()}")
        if self.ospf is not None:
            lines.append("  OSPF RIB:")
            for route in sorted(self.ospf.rib, key=lambda r: r.prefix.key()):
                lines.append(f"    {route}")
        lines.append("  FIB:")
        for entry in self.fib:
            lines.append(f"    {entry}")
        return "\n".join(lines)
