"""Forwarding information base and admin-distance route selection.

The FIB maps prefixes to forwarding actions.  When several protocols
offer a route for the same prefix, the route with the lowest
administrative distance wins (connected < static < eBGP < OSPF <
iBGP, Cisco defaults).  FIB changes are the *outputs* the paper's
verifier consumes, so the FIB exposes a change journal and an install
guard hook the pipeline (§6, footnote 2) uses to hold updates until
they have been verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.net.addr import Prefix, PrefixTrie, format_ip


@dataclass(frozen=True)
class FibEntry:
    """One installed forwarding entry.

    ``next_hop_router`` of None with ``discard`` False means the
    prefix is locally delivered (a connected subnet or the router's
    own origination); ``discard`` True is an explicit drop (null
    route).
    """

    prefix: Prefix
    next_hop: Optional[int]
    next_hop_router: Optional[str]
    out_interface: Optional[str]
    protocol: str
    metric: int = 0
    discard: bool = False

    def forwards(self) -> bool:
        return self.next_hop_router is not None and not self.discard

    def __str__(self) -> str:
        if self.discard:
            return f"{self.prefix} discard [{self.protocol}]"
        if self.next_hop_router is None:
            return f"{self.prefix} local [{self.protocol}]"
        return (
            f"{self.prefix} via {self.next_hop_router}"
            f"({format_ip(self.next_hop or 0)}) dev {self.out_interface} "
            f"[{self.protocol}]"
        )


#: Guard signature: (router, old_entry, new_entry) -> allow?  ``new``
#: of None means removal.  Returning False blocks the FIB write (the
#: baseline "block updates" behaviour of §2/§6).
InstallGuard = Callable[[str, Optional[FibEntry], Optional[FibEntry]], bool]


class Fib:
    """The forwarding table of one router."""

    def __init__(self, router: str):
        self.router = router
        self._trie: PrefixTrie = PrefixTrie()
        #: (time-ordered) journal of (installed_or_removed, entry) pairs.
        self.journal: List[Tuple[str, FibEntry]] = []
        self.install_guard: Optional[InstallGuard] = None
        self.blocked_writes = 0

    def install(self, entry: FibEntry) -> bool:
        """Install/replace ``entry``; returns True if the FIB changed."""
        old = self._trie.get(entry.prefix)
        if old == entry:
            return False
        if self.install_guard is not None:
            if not self.install_guard(self.router, old, entry):
                self.blocked_writes += 1
                return False
        self._trie.insert(entry.prefix, entry)
        self.journal.append(("install", entry))
        return True

    def remove(self, prefix: Prefix) -> Optional[FibEntry]:
        """Remove the entry for ``prefix``; returns it if present."""
        old = self._trie.get(prefix)
        if old is None:
            return None
        if self.install_guard is not None:
            if not self.install_guard(self.router, old, None):
                self.blocked_writes += 1
                return None
        self._trie.delete(prefix)
        self.journal.append(("remove", old))
        return old

    def get(self, prefix: Prefix) -> Optional[FibEntry]:
        return self._trie.get(prefix)

    def lookup(self, address: int) -> Optional[FibEntry]:
        """Longest-prefix-match forwarding decision for ``address``."""
        match = self._trie.longest_match(address)
        if match is None:
            return None
        return match[1]

    def entries(self) -> List[FibEntry]:
        return [entry for _, entry in self._trie.items()]

    def snapshot(self) -> Dict[Prefix, FibEntry]:
        return {entry.prefix: entry for entry in self.entries()}

    def __len__(self) -> int:
        return len(self._trie)

    def __iter__(self) -> Iterator[FibEntry]:
        return iter(self.entries())


def select_route(
    candidates: List[FibEntry], admin_distance: Dict[str, int]
) -> Optional[FibEntry]:
    """Pick the winning FIB entry among per-protocol candidates.

    Lowest administrative distance wins; ties go to the lowest
    protocol-internal metric, then to the lexicographically smallest
    next-hop router name for determinism.
    """
    if not candidates:
        return None

    def key(entry: FibEntry) -> Tuple[int, int, str]:
        distance = admin_distance.get(entry.protocol)
        if distance is None:
            raise ValueError(f"no admin distance for protocol {entry.protocol!r}")
        return (distance, entry.metric, entry.next_hop_router or "")

    return min(candidates, key=key)
