"""Route record types used by RIBs and the FIB.

Each protocol contributes its own route type carrying the attributes
its decision process needs.  All types expose ``prefix``,
``protocol`` and ``next_hop`` so the FIB selection logic
(:mod:`repro.protocols.fib`) can treat them uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.net.addr import Prefix, format_ip


class Origin(enum.IntEnum):
    """BGP origin attribute; lower is preferred."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class BgpRoute:
    """A BGP path for one prefix, as held in an Adj-RIB-In / Loc-RIB.

    ``from_peer`` is the session the path arrived on (None for
    locally originated paths); ``ebgp_learned`` distinguishes
    eBGP-learned from iBGP-learned paths in the decision process;
    ``received_at`` implements the "oldest route" tie-break;
    ``igp_metric`` is the cost to reach ``next_hop`` via the IGP,
    resolved at decision time.
    """

    prefix: Prefix
    next_hop: int
    as_path: Tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    origin: Origin = Origin.IGP
    weight: int = 0
    from_peer: Optional[str] = None
    peer_asn: Optional[int] = None
    peer_router_id: int = 0
    peer_address: int = 0
    ebgp_learned: bool = False
    locally_originated: bool = False
    received_at: float = 0.0
    igp_metric: int = 0
    path_id: int = 0
    #: RFC 4456 route reflection: router-id of the router that injected
    #: the route into the AS's iBGP (0 = not yet reflected).
    originator_id: int = 0
    #: RFC 4456: cluster ids (router-ids of reflectors) traversed.
    cluster_list: Tuple[int, ...] = ()

    protocol = "bgp"

    @property
    def rib_protocol(self) -> str:
        """Admin-distance class: eBGP and iBGP differ."""
        return "ebgp" if self.ebgp_learned or self.locally_originated else "ibgp"

    def neighbor_as(self) -> Optional[int]:
        """First AS in the path (for MED comparability)."""
        if self.as_path:
            return self.as_path[0]
        return self.peer_asn

    def with_igp_metric(self, metric: int) -> "BgpRoute":
        return replace(self, igp_metric=metric)

    def describe(self) -> str:
        path = " ".join(str(a) for a in self.as_path) or "local"
        return (
            f"{self.prefix} nh={format_ip(self.next_hop)} lp={self.local_pref} "
            f"path=[{path}] med={self.med} from={self.from_peer or 'self'}"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class OspfRoute:
    """An OSPF route computed by SPF."""

    prefix: Prefix
    next_hop: int
    next_hop_router: str
    metric: int
    area: int = 0

    protocol = "ospf"

    def __str__(self) -> str:
        return f"{self.prefix} via {self.next_hop_router} cost={self.metric}"


@dataclass(frozen=True)
class StaticRoute:
    """A configured static route (next-hop or discard)."""

    prefix: Prefix
    next_hop: Optional[int] = None
    discard: bool = False

    protocol = "static"

    def __str__(self) -> str:
        target = "discard" if self.discard else format_ip(self.next_hop or 0)
        return f"{self.prefix} -> {target}"


@dataclass(frozen=True)
class ConnectedRoute:
    """A directly connected subnet (from an up interface)."""

    prefix: Prefix
    interface: str

    protocol = "connected"
    next_hop: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.prefix} dev {self.interface}"
