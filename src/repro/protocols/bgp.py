"""The BGP speaker: sessions, policy application, and path selection.

Pure protocol state and logic for one router.  All scheduling,
message transmission, and I/O capture live in the surrounding
:class:`~repro.protocols.router.RouterRuntime`; keeping this class
side-effect-free makes the decision process directly unit-testable.

Implemented semantics (the subset the paper's scenarios and typical
enterprise networks exercise):

* eBGP and iBGP sessions with per-neighbor import/export route-maps;
* the full decision process via :mod:`repro.protocols.bgp_decision`
  with per-router vendor profiles;
* iBGP full-mesh rules: iBGP-learned paths are not re-advertised to
  iBGP peers; local-pref propagates on iBGP only;
* eBGP export: own-ASN prepend, next-hop rewrite, loop rejection on
  import when the own ASN appears in the path;
* next-hop-self on iBGP sessions;
* soft reconfiguration: raw (pre-policy) copies of received routes
  are retained so a policy change can be re-applied without asking
  the neighbor to re-send (exactly Cisco's
  ``soft-reconfiguration inbound``, the mechanism in the paper's §7
  feasibility study);
* Add-Path: sessions configured with ``add_path`` advertise the top
  ``ADD_PATH_LIMIT`` ranked paths, each with a distinct path id.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.net.addr import Prefix
from repro.net.config import BgpNeighborConfig, RouterConfig
from repro.protocols.bgp_decision import VendorProfile, best_path, rank_paths
from repro.protocols.rib import BgpRib
from repro.protocols.routes import BgpRoute, Origin

#: How many ranked paths an Add-Path session advertises.
ADD_PATH_LIMIT = 4

#: Cisco default weight for locally originated routes.
LOCAL_WEIGHT = 32768


@dataclass
class SessionState:
    """Runtime state of one configured BGP session."""

    config: BgpNeighborConfig
    up: bool = True


class BgpProcess:
    """BGP state for one router."""

    def __init__(
        self,
        router: str,
        config: RouterConfig,
        profile: VendorProfile,
    ):
        self.router = router
        self.config = config
        self.profile = profile
        self.rib = BgpRib(add_path=True)
        self.sessions: Dict[str, SessionState] = {
            peer: SessionState(config=neighbor)
            for peer, neighbor in config.bgp_neighbors.items()
        }
        #: Raw pre-import-policy routes per peer, for soft reconfiguration.
        self._raw_in: Dict[str, Dict[Tuple[Prefix, int], BgpRoute]] = {}
        #: Routes injected from other protocols (redistribution); they
        #: compete in the decision process like locally originated ones.
        self.redistributed: Dict[Prefix, BgpRoute] = {}

    # -- sessions -------------------------------------------------------------

    def session(self, peer: str) -> Optional[SessionState]:
        return self.sessions.get(peer)

    def up_peers(self) -> List[str]:
        return sorted(p for p, s in self.sessions.items() if s.up)

    def set_session_state(self, peer: str, up: bool) -> bool:
        """Mark a session up/down; True when the state changed."""
        state = self.sessions.get(peer)
        if state is None or state.up == up:
            return False
        state.up = up
        return True

    def refresh_sessions(self) -> Tuple[List[str], List[str]]:
        """Reconcile session table with (possibly changed) config.

        Returns (added_peers, removed_peers).
        """
        added, removed = [], []
        for peer, neighbor in self.config.bgp_neighbors.items():
            state = self.sessions.get(peer)
            if state is None:
                self.sessions[peer] = SessionState(config=neighbor)
                added.append(peer)
            elif state.config != neighbor:
                state.config = neighbor
        for peer in list(self.sessions):
            if peer not in self.config.bgp_neighbors:
                del self.sessions[peer]
                removed.append(peer)
        return added, removed

    def is_ebgp(self, peer: str) -> bool:
        state = self.sessions.get(peer)
        if state is None:
            raise KeyError(f"{self.router}: no BGP session with {peer}")
        return state.config.is_external(self.config.asn)

    # -- import ------------------------------------------------------------------

    def apply_import_policy(
        self, peer: str, route: BgpRoute
    ) -> Optional[BgpRoute]:
        """Run the import route-map; None means the route is rejected."""
        route_map = self.config.import_map_for(peer)
        if route_map is None:
            return route
        clause = route_map.first_match(route.prefix)
        if clause is None or not clause.permit:
            return None
        updated = route
        if clause.set_local_pref is not None:
            updated = replace(updated, local_pref=clause.set_local_pref)
        if clause.set_med is not None:
            updated = replace(updated, med=clause.set_med)
        if clause.prepend_asns:
            updated = replace(
                updated, as_path=clause.prepend_asns + updated.as_path
            )
        return updated

    def receive(self, peer: str, route: BgpRoute) -> Optional[BgpRoute]:
        """Process a received announcement.

        Stores the raw copy (for soft reconfiguration), applies import
        policy and AS-loop rejection, updates the Adj-RIB-In, and
        returns the policed route (None when rejected — in which case
        any previous path from this peer with the same path id is
        removed, since the announcement *replaces* it).
        """
        state = self.sessions.get(peer)
        if state is None or not state.up:
            return None
        self._raw_in.setdefault(peer, {})[(route.prefix, route.path_id)] = route
        if self.is_ebgp(peer) and self.config.asn in route.as_path:
            # AS-path loop: reject and drop any stale path.
            self.rib.withdraw_in(peer, route.prefix, route.path_id)
            return None
        # RFC 4456 loop prevention for reflected routes.
        if route.originator_id and route.originator_id == self.config.router_id:
            self.rib.withdraw_in(peer, route.prefix, route.path_id)
            return None
        if self.config.router_id in route.cluster_list:
            self.rib.withdraw_in(peer, route.prefix, route.path_id)
            return None
        policed = self.apply_import_policy(peer, route)
        if policed is None:
            self.rib.withdraw_in(peer, route.prefix, route.path_id)
            return None
        self.rib.update_in(peer, policed)
        return policed

    def withdraw(self, peer: str, prefix: Prefix, path_id: int = 0) -> bool:
        """Process a received withdrawal; True if state changed."""
        raw = self._raw_in.get(peer)
        if raw is not None:
            raw.pop((prefix, path_id), None)
        return self.rib.withdraw_in(peer, prefix, path_id)

    def session_down_cleanup(self, peer: str) -> List[Prefix]:
        """Drop all state from ``peer``; returns affected prefixes."""
        self._raw_in.pop(peer, None)
        return self.rib.drop_peer(peer)

    def soft_reconfigure(self, peer: Optional[str] = None) -> Set[Prefix]:
        """Re-apply import policy from stored raw routes.

        Returns the set of prefixes whose Adj-RIB-In may have changed
        (the caller re-runs the decision process for each).  This is
        the 25-seconds-later step in the paper's Fig. 5 timeline.
        """
        peers = [peer] if peer is not None else list(self._raw_in)
        affected: Set[Prefix] = set()
        for name in peers:
            state = self.sessions.get(name)
            if state is None or not state.up:
                continue
            raw = self._raw_in.get(name, {})
            # Re-police every raw route; drop Adj-RIB-In paths whose raw
            # announcement disappeared or is now denied.
            seen: Set[Tuple[Prefix, int]] = set()
            for (prefix, path_id), route in sorted(
                raw.items(), key=lambda item: (item[0][0].key(), item[0][1])
            ):
                policed = self.apply_import_policy(name, route)
                if policed is None or (
                    self.is_ebgp(name) and self.config.asn in route.as_path
                ):
                    self.rib.withdraw_in(name, prefix, path_id)
                else:
                    self.rib.update_in(name, policed)
                    seen.add((prefix, path_id))
                affected.add(prefix)
            for prefix in self.rib.adj_in(name):
                affected.add(prefix)
        return affected

    # -- decision --------------------------------------------------------------

    def redistribute_in(
        self, prefix: Prefix, source_protocol: str
    ) -> BgpRoute:
        """Inject a route from another protocol into BGP.

        Redistributed routes carry origin INCOMPLETE (the classic
        "question mark" of redistributed prefixes) and local weight,
        mirroring IOS behaviour.
        """
        route = BgpRoute(
            prefix=prefix,
            next_hop=0,
            as_path=(),
            local_pref=100,
            origin=Origin.INCOMPLETE,
            weight=LOCAL_WEIGHT,
            from_peer=None,
            peer_router_id=self.config.router_id,
            locally_originated=True,
            ebgp_learned=False,
        )
        self.redistributed[prefix] = route
        return route

    def redistribute_out(self, prefix: Prefix) -> Optional[BgpRoute]:
        """Remove a previously redistributed route."""
        return self.redistributed.pop(prefix, None)

    def local_route(self, prefix: Prefix, received_at: float = 0.0) -> BgpRoute:
        """The locally-originated path for an ``originated_prefix``."""
        return BgpRoute(
            prefix=prefix,
            next_hop=0,
            as_path=(),
            local_pref=100,
            origin=Origin.IGP,
            weight=LOCAL_WEIGHT,
            from_peer=None,
            peer_router_id=self.config.router_id,
            locally_originated=True,
            ebgp_learned=False,
            received_at=received_at,
        )

    def candidates(
        self, prefix: Prefix, igp_metric_of: Optional[Dict[int, int]] = None
    ) -> List[BgpRoute]:
        """All paths competing for ``prefix``, IGP metrics resolved."""
        paths = self.rib.paths_for(prefix)
        if prefix in self.config.originated_prefixes:
            paths.append(self.local_route(prefix))
        injected = self.redistributed.get(prefix)
        if injected is not None:
            paths.append(injected)
        if igp_metric_of:
            paths = [
                p.with_igp_metric(igp_metric_of.get(p.next_hop, p.igp_metric))
                for p in paths
            ]
        return paths

    def decide(
        self, prefix: Prefix, igp_metric_of: Optional[Dict[int, int]] = None
    ) -> Optional[BgpRoute]:
        """Run the decision process; returns the winner (or None)."""
        return best_path(self.candidates(prefix, igp_metric_of), self.profile)

    # -- export -------------------------------------------------------------------

    def apply_export_policy(
        self, peer: str, route: BgpRoute
    ) -> Optional[BgpRoute]:
        route_map = self.config.export_map_for(peer)
        if route_map is None:
            return route
        clause = route_map.first_match(route.prefix)
        if clause is None or not clause.permit:
            return None
        updated = route
        if clause.set_local_pref is not None:
            updated = replace(updated, local_pref=clause.set_local_pref)
        if clause.set_med is not None:
            updated = replace(updated, med=clause.set_med)
        if clause.prepend_asns:
            updated = replace(updated, as_path=clause.prepend_asns + updated.as_path)
        return updated

    def export_route(
        self,
        peer: str,
        route: BgpRoute,
        own_address_toward_peer: int,
        path_id: int = 0,
    ) -> Optional[BgpRoute]:
        """Build the advertisement of ``route`` for ``peer``.

        Returns None when BGP rules or export policy suppress it:
        never advertise back to the peer the path came from, and
        never re-advertise an iBGP-learned path to another iBGP peer
        (full-mesh rule) — *unless* route reflection applies (RFC
        4456: a reflector passes client routes to everyone and
        non-client routes to clients, stamping ORIGINATOR_ID and
        prepending its own id to the CLUSTER_LIST).
        """
        state = self.sessions.get(peer)
        if state is None or not state.up:
            return None
        if route.from_peer == peer:
            return None
        ebgp_session = self.is_ebgp(peer)
        reflecting = False
        if (
            not ebgp_session
            and not route.ebgp_learned
            and not route.locally_originated
        ):
            learned_from = self.sessions.get(route.from_peer or "")
            from_client = (
                learned_from is not None
                and learned_from.config.route_reflector_client
            )
            to_client = state.config.route_reflector_client
            if not (from_client or to_client):
                return None  # plain full-mesh rule: do not re-advertise
            reflecting = True
        policed = self.apply_export_policy(peer, route)
        if policed is None:
            return None
        if ebgp_session:
            exported = replace(
                policed,
                as_path=(self.config.asn,) + policed.as_path,
                next_hop=own_address_toward_peer,
                local_pref=100,  # local-pref is not transmitted on eBGP
                weight=0,
                from_peer=None,
                locally_originated=False,
                path_id=path_id,
            )
        else:
            next_hop = policed.next_hop
            if state.config.next_hop_self or policed.locally_originated:
                next_hop = own_address_toward_peer
            originator = policed.originator_id
            cluster_list = policed.cluster_list
            if reflecting:
                # A reflector must not change next-hop; it stamps the
                # loop-prevention attributes instead.
                next_hop = policed.next_hop
                if originator == 0 and policed.peer_router_id:
                    originator = policed.peer_router_id
                cluster_list = (self.config.router_id,) + cluster_list
            exported = replace(
                policed,
                next_hop=next_hop,
                weight=0,
                from_peer=None,
                locally_originated=False,
                path_id=path_id,
                originator_id=originator,
                cluster_list=cluster_list,
            )
        return exported

    def paths_to_advertise(
        self,
        peer: str,
        prefix: Prefix,
        igp_metric_of: Optional[Dict[int, int]] = None,
    ) -> List[BgpRoute]:
        """Ranked candidate paths this session should advertise.

        One best path normally; the top ``ADD_PATH_LIMIT`` when the
        session runs Add-Path.
        """
        state = self.sessions.get(peer)
        if state is None or not state.up:
            return []
        candidates = self.candidates(prefix, igp_metric_of)
        if not candidates:
            return []
        if state.config.add_path:
            return rank_paths(candidates, self.profile)[:ADD_PATH_LIMIT]
        best = best_path(candidates, self.profile)
        return [best] if best is not None else []
