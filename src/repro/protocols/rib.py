"""Routing information bases.

A BGP speaker keeps three RIB layers (RFC 4271):

* **Adj-RIB-In** — one per neighbor, holding the paths received on
  that session after import policy.  With Add-Path, multiple paths
  per prefix per neighbor are retained.
* **Loc-RIB** — the best path per prefix chosen by the decision
  process.
* **Adj-RIB-Out** — one per neighbor, what we last advertised, so we
  send withdrawals/updates only on change (and can answer soft
  reconfiguration requests).

OSPF has a single RIB produced by SPF.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.net.addr import Prefix
from repro.protocols.routes import BgpRoute, OspfRoute


class BgpRib:
    """The three-layer BGP RIB for one router."""

    def __init__(self, add_path: bool = False):
        #: Adj-RIB-In: peer -> prefix -> list of paths (one unless add_path).
        self._adj_in: Dict[str, Dict[Prefix, List[BgpRoute]]] = defaultdict(dict)
        #: Loc-RIB: prefix -> chosen best path.
        self._loc: Dict[Prefix, BgpRoute] = {}
        #: Adj-RIB-Out: peer -> prefix -> tuple of last advertised paths
        #: (a single path normally; several under Add-Path).
        self._adj_out: Dict[str, Dict[Prefix, Tuple[BgpRoute, ...]]] = defaultdict(dict)
        self.add_path = add_path

    # -- Adj-RIB-In -------------------------------------------------------

    def update_in(self, peer: str, route: BgpRoute) -> None:
        """Record a path received from ``peer`` (replaces same path-id)."""
        paths = self._adj_in[peer].setdefault(route.prefix, [])
        if self.add_path:
            paths[:] = [p for p in paths if p.path_id != route.path_id]
            paths.append(route)
        else:
            paths[:] = [route]

    def withdraw_in(
        self, peer: str, prefix: Prefix, path_id: Optional[int] = None
    ) -> bool:
        """Remove path(s) for ``prefix`` from ``peer``; True if removed."""
        table = self._adj_in.get(peer)
        if table is None or prefix not in table:
            return False
        if path_id is None:
            del table[prefix]
            return True
        paths = table[prefix]
        before = len(paths)
        paths[:] = [p for p in paths if p.path_id != path_id]
        if not paths:
            del table[prefix]
        return len(paths) < before

    def drop_peer(self, peer: str) -> List[Prefix]:
        """Forget everything learned from ``peer`` (session down)."""
        table = self._adj_in.pop(peer, {})
        self._adj_out.pop(peer, None)
        return sorted(table)

    def paths_for(self, prefix: Prefix) -> List[BgpRoute]:
        """All candidate paths for ``prefix`` across all neighbors."""
        result = []
        for table in self._adj_in.values():
            result.extend(table.get(prefix, ()))
        return result

    def adj_in(self, peer: str) -> Dict[Prefix, List[BgpRoute]]:
        return {p: list(paths) for p, paths in self._adj_in.get(peer, {}).items()}

    def peers_with_state(self) -> List[str]:
        return sorted(self._adj_in)

    def known_prefixes(self) -> Set[Prefix]:
        known: Set[Prefix] = set(self._loc)
        for table in self._adj_in.values():
            known.update(table)
        return known

    # -- Loc-RIB ------------------------------------------------------------

    def set_best(self, route: BgpRoute) -> Optional[BgpRoute]:
        """Install the decision-process winner; returns the old best."""
        old = self._loc.get(route.prefix)
        self._loc[route.prefix] = route
        return old

    def clear_best(self, prefix: Prefix) -> Optional[BgpRoute]:
        return self._loc.pop(prefix, None)

    def best(self, prefix: Prefix) -> Optional[BgpRoute]:
        return self._loc.get(prefix)

    def loc_rib(self) -> Dict[Prefix, BgpRoute]:
        return dict(self._loc)

    # -- Adj-RIB-Out ----------------------------------------------------------

    def last_advertised(self, peer: str, prefix: Prefix) -> Tuple[BgpRoute, ...]:
        return self._adj_out.get(peer, {}).get(prefix, ())

    def record_advertised(
        self, peer: str, prefix: Prefix, routes: Tuple[BgpRoute, ...]
    ) -> None:
        if routes:
            self._adj_out[peer][prefix] = routes
        else:
            self._adj_out.get(peer, {}).pop(prefix, None)

    def record_withdrawn(self, peer: str, prefix: Prefix) -> Tuple[BgpRoute, ...]:
        return self._adj_out.get(peer, {}).pop(prefix, ())

    def advertised_prefixes(self, peer: str) -> List[Prefix]:
        return sorted(self._adj_out.get(peer, {}))


class OspfRib:
    """The OSPF routing table produced by the latest SPF run."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, OspfRoute] = {}

    def replace_all(self, routes: Iterable[OspfRoute]) -> Tuple[
        List[OspfRoute], List[OspfRoute], List[Tuple[OspfRoute, OspfRoute]]
    ]:
        """Swap in a fresh SPF result.

        Returns (added, removed, changed) so the router runtime can
        emit exactly one RIB_UPDATE I/O per actual change rather than
        re-announcing the whole table after every SPF.
        """
        new_table: Dict[Prefix, OspfRoute] = {}
        for route in routes:
            existing = new_table.get(route.prefix)
            if existing is None or route.metric < existing.metric:
                new_table[route.prefix] = route
        added = [r for p, r in new_table.items() if p not in self._routes]
        removed = [r for p, r in self._routes.items() if p not in new_table]
        changed = [
            (self._routes[p], new_table[p])
            for p in new_table
            if p in self._routes and new_table[p] != self._routes[p]
        ]
        self._routes = new_table
        return added, removed, changed

    def get(self, prefix: Prefix) -> Optional[OspfRoute]:
        return self._routes.get(prefix)

    def routes(self) -> Dict[Prefix, OspfRoute]:
        return dict(self._routes)

    def metric_to(self, address: int) -> Optional[int]:
        """Cost of the best OSPF route covering ``address``."""
        best: Optional[OspfRoute] = None
        best_length = -1
        for prefix, route in self._routes.items():
            if prefix.contains_address(address) and prefix.length > best_length:
                best = route
                best_length = prefix.length
        if best is None:
            return None
        return best.metric

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[OspfRoute]:
        return iter(self._routes.values())
