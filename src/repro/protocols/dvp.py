"""EIGRP-style distance-vector protocol ("dvp", wire name ``eigrp``).

§4.1 uses EIGRP as the canonical example of a protocol-specific HBR
that *differs* from BGP's:

    "with BGP [R install P in BGP RIB] → [R send BGP advertisement
    for P], whereas with EIGRP [R install P in FIB] → [R send EIGRP
    advertisement for P]."

This module implements a deliberately small distance-vector protocol
with exactly that ordering: a router only advertises a route after
the corresponding FIB entry is installed.  It exists so the HBR
machinery can be exercised against two protocols with *different*
output orderings in the same capture — the rule-matching technique
must apply the right rule per protocol.

Semantics: hop-count-style metrics (link cost 1), split horizon with
poisoned reverse (withdrawals propagate as infinite-metric updates),
one update message per prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.net.addr import Prefix

#: Metric representing unreachability (poison).
INFINITY = 16


@dataclass(frozen=True)
class DvRoute:
    """One distance-vector table entry."""

    prefix: Prefix
    metric: int
    via_router: Optional[str]  # None for locally originated

    protocol = "eigrp"

    @property
    def reachable(self) -> bool:
        return self.metric < INFINITY

    def __str__(self) -> str:
        via = self.via_router or "local"
        return f"{self.prefix} metric={self.metric} via {via}"


@dataclass(frozen=True)
class DvUpdate:
    """A distance-vector advertisement for one prefix."""

    sender: str
    receiver: str
    prefix: Prefix
    metric: int
    send_event_id: int = 0


class DistanceVectorProcess:
    """The distance-vector speaker on one router.

    Pure protocol state; the surrounding runtime owns scheduling,
    capture, and the FIB-before-send ordering.
    """

    def __init__(self, router: str):
        self.router = router
        self._table: Dict[Prefix, DvRoute] = {}

    # -- local origination --------------------------------------------------

    def originate(self, prefix: Prefix) -> Optional[DvRoute]:
        """Install a locally originated route; returns it if new."""
        current = self._table.get(prefix)
        route = DvRoute(prefix=prefix, metric=0, via_router=None)
        if current == route:
            return None
        self._table[prefix] = route
        return route

    def withdraw_origin(self, prefix: Prefix) -> Optional[DvRoute]:
        current = self._table.get(prefix)
        if current is None or current.via_router is not None:
            return None
        poisoned = DvRoute(prefix=prefix, metric=INFINITY, via_router=None)
        self._table[prefix] = poisoned
        return poisoned

    # -- neighbor updates -------------------------------------------------------

    def receive(
        self, neighbor: str, prefix: Prefix, metric: int, link_cost: int = 1
    ) -> Optional[DvRoute]:
        """Bellman-Ford step; returns the new table entry when changed."""
        offered = min(metric + link_cost, INFINITY)
        current = self._table.get(prefix)
        if current is None:
            if offered >= INFINITY:
                return None
            route = DvRoute(prefix=prefix, metric=offered, via_router=neighbor)
            self._table[prefix] = route
            return route
        if current.via_router == neighbor:
            # Updates from the current successor always apply (including
            # poison), per distance-vector semantics.
            if offered == current.metric:
                return None
            route = DvRoute(prefix=prefix, metric=offered, via_router=neighbor)
            self._table[prefix] = route
            return route
        if offered < current.metric:
            route = DvRoute(prefix=prefix, metric=offered, via_router=neighbor)
            self._table[prefix] = route
            return route
        return None

    def neighbor_lost(self, neighbor: str) -> List[DvRoute]:
        """Poison every route learned via ``neighbor``."""
        poisoned = []
        for prefix, route in list(self._table.items()):
            if route.via_router == neighbor and route.reachable:
                new = DvRoute(prefix=prefix, metric=INFINITY, via_router=neighbor)
                self._table[prefix] = new
                poisoned.append(new)
        return poisoned

    # -- advertisement content -----------------------------------------------------

    def advertised_metric(self, prefix: Prefix, to_neighbor: str) -> Optional[int]:
        """What to tell ``to_neighbor`` about ``prefix``.

        Split horizon with poisoned reverse: routes learned *from* the
        neighbor are advertised back as unreachable.
        """
        route = self._table.get(prefix)
        if route is None:
            return None
        if route.via_router == to_neighbor:
            return INFINITY
        return route.metric

    # -- introspection ------------------------------------------------------------------

    def get(self, prefix: Prefix) -> Optional[DvRoute]:
        return self._table.get(prefix)

    def routes(self) -> Dict[Prefix, DvRoute]:
        return dict(self._table)

    def reachable_routes(self) -> Iterator[DvRoute]:
        return (r for r in self._table.values() if r.reachable)

    def __len__(self) -> int:
        return len(self._table)
