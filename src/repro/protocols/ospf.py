"""OSPF: link-state database, flooding, and shortest-path-first.

A deliberately single-area OSPF sufficient for the paper's needs:
providing IGP reachability for iBGP next hops (the ``igp_metric``
step of the BGP decision process) and demonstrating that the generic
HBRs of §4.1 hold across protocols, not just for BGP.

The engine is event-driven: adjacency or prefix changes bump the
router's LSA sequence number, the new LSA floods hop-by-hop with
link delays, and each receiving router schedules a (debounced) SPF
run.  SPF is Dijkstra over the bidirectionally-confirmed adjacency
graph, as required by the OSPF spec — a one-way adjacency claim must
not attract traffic.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.addr import Prefix
from repro.protocols.messages import LinkStateAdvertisement
from repro.protocols.rib import OspfRib
from repro.protocols.routes import OspfRoute


class OspfProcess:
    """The OSPF speaker on one router.

    The surrounding :class:`~repro.protocols.router.RouterRuntime`
    owns scheduling and capture; this class owns pure protocol state:
    the LSDB, own-LSA generation, and SPF.
    """

    def __init__(self, router: str):
        self.router = router
        self.lsdb: Dict[str, LinkStateAdvertisement] = {}
        self.rib = OspfRib()
        self._own_seq = 0
        self._spf_pending = False

    # -- own LSA ------------------------------------------------------------

    def originate(
        self,
        adjacencies: Iterable[Tuple[str, int]],
        stub_prefixes: Iterable[Tuple[Prefix, int]],
    ) -> LinkStateAdvertisement:
        """Build the next version of this router's LSA and store it."""
        self._own_seq += 1
        lsa = LinkStateAdvertisement(
            origin=self.router,
            seq=self._own_seq,
            adjacencies=tuple(sorted(adjacencies)),
            stub_prefixes=tuple(sorted(stub_prefixes, key=lambda sp: sp[0].key())),
        )
        self.lsdb[self.router] = lsa
        return lsa

    def own_lsa(self) -> Optional[LinkStateAdvertisement]:
        return self.lsdb.get(self.router)

    # -- flooding ------------------------------------------------------------

    def accept(self, lsa: LinkStateAdvertisement) -> bool:
        """Install a received LSA; True when it was new (re-flood it)."""
        current = self.lsdb.get(lsa.origin)
        if current is not None and not lsa.is_newer_than(current):
            return False
        self.lsdb[lsa.origin] = lsa
        return True

    # -- SPF ------------------------------------------------------------------

    def _adjacency_graph(self) -> Dict[str, List[Tuple[str, int]]]:
        """Bidirectionally-confirmed adjacency graph from the LSDB."""
        claims: Dict[str, Dict[str, int]] = {}
        for lsa in self.lsdb.values():
            claims[lsa.origin] = dict(lsa.adjacencies)
        graph: Dict[str, List[Tuple[str, int]]] = {r: [] for r in claims}
        for router, neighbors in claims.items():
            for neighbor, cost in neighbors.items():
                reverse = claims.get(neighbor, {})
                if router in reverse:
                    graph[router].append((neighbor, cost))
        return graph

    def run_spf(self) -> List[OspfRoute]:
        """Dijkstra from this router; returns the new routing table.

        Routes point at the *first hop* on the shortest path; ties on
        distance are broken by router name for determinism.  The
        caller is responsible for swapping the result into
        :attr:`rib` (so it can diff and emit per-change I/O events).
        """
        graph = self._adjacency_graph()
        if self.router not in graph:
            return []
        distances: Dict[str, int] = {self.router: 0}
        first_hop: Dict[str, Optional[str]] = {self.router: None}
        heap: List[Tuple[int, str, Optional[str]]] = [(0, self.router, None)]
        visited: Set[str] = set()
        while heap:
            dist, node, via = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            first_hop[node] = via
            for neighbor, cost in sorted(graph.get(node, ())):
                if neighbor in visited:
                    continue
                candidate = dist + cost
                if candidate < distances.get(neighbor, 1 << 62):
                    distances[neighbor] = candidate
                    hop = via if via is not None else neighbor
                    heapq.heappush(heap, (candidate, neighbor, hop))

        routes: List[OspfRoute] = []
        for lsa in self.lsdb.values():
            if lsa.origin == self.router:
                continue
            if lsa.origin not in visited:
                continue
            hop = first_hop[lsa.origin]
            if hop is None:
                continue
            base = distances[lsa.origin]
            for prefix, cost in lsa.stub_prefixes:
                routes.append(
                    OspfRoute(
                        prefix=prefix,
                        next_hop=0,  # filled by the runtime, which knows addresses
                        next_hop_router=hop,
                        metric=base + cost,
                    )
                )
        return routes

    def reachable_routers(self) -> Set[str]:
        """Routers reachable in the current bidirectional graph."""
        graph = self._adjacency_graph()
        seen = {self.router}
        stack = [self.router]
        while stack:
            node = stack.pop()
            for neighbor, _ in graph.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    def metric_to_router(self, target: str) -> Optional[int]:
        """Shortest-path cost to ``target``, or None if unreachable."""
        graph = self._adjacency_graph()
        if self.router not in graph:
            return None
        distances: Dict[str, int] = {self.router: 0}
        heap: List[Tuple[int, str]] = [(0, self.router)]
        visited: Set[str] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                return dist
            for neighbor, cost in graph.get(node, ()):
                candidate = dist + cost
                if candidate < distances.get(neighbor, 1 << 62):
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return None
