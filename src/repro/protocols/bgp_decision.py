"""The BGP decision process, with vendor-specific tie-break profiles.

The paper's §2 motivates integrated verification precisely because
control-plane models "ignore vendor-specific implementation details
... e.g., differences in BGP path selection rules across vendors
[9, 21]".  We therefore implement the decision process as an ordered
list of named comparison steps and ship two real profiles:

* **cisco** — follows the IOS best-path algorithm [9]: weight,
  local-pref, locally-originated, AS-path length, origin, MED
  (same-neighbor-AS only), eBGP-over-iBGP, IGP metric, *oldest
  eBGP route*, router id, neighbor address.
* **juniper** — follows Junos path selection [21]: no weight step,
  and no oldest-route step (Junos goes straight from IGP metric to
  router id), making selection independent of arrival order.

The "oldest route" step is the canonical source of BGP
nondeterminism the paper's §8 worries about: the winner depends on
arrival order, so replaying the same inputs in a different order can
converge differently.  Profiles can be built with that step removed
(``deterministic()``), which models enabling Add-Path/bestpath
compare-routerid as §8 prescribes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.protocols.routes import BgpRoute

#: A comparison step returns <0 when ``a`` is better, >0 when ``b``
#: is better, 0 to fall through to the next step.
Comparator = Callable[[BgpRoute, BgpRoute], int]


def _cmp(a: int, b: int) -> int:
    """Three-way compare of ints (lower value = negative result)."""
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def compare_weight(a: BgpRoute, b: BgpRoute) -> int:
    """Highest weight wins (Cisco-proprietary, local significance)."""
    return _cmp(b.weight, a.weight)


def compare_local_pref(a: BgpRoute, b: BgpRoute) -> int:
    """Highest local preference wins."""
    return _cmp(b.local_pref, a.local_pref)


def compare_locally_originated(a: BgpRoute, b: BgpRoute) -> int:
    """Locally originated paths beat learned paths."""
    return _cmp(int(not a.locally_originated), int(not b.locally_originated))


def compare_as_path(a: BgpRoute, b: BgpRoute) -> int:
    """Shortest AS path wins."""
    return _cmp(len(a.as_path), len(b.as_path))


def compare_origin(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest origin wins (IGP < EGP < INCOMPLETE)."""
    return _cmp(int(a.origin), int(b.origin))


def compare_med_same_as(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest MED wins, but only between paths from the same
    neighboring AS (the default on both Cisco and Juniper)."""
    if a.neighbor_as() != b.neighbor_as():
        return 0
    return _cmp(a.med, b.med)


def compare_med_always(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest MED wins regardless of neighbor AS (the
    ``always-compare-med`` knob — a deployment-specific quirk)."""
    return _cmp(a.med, b.med)


def compare_ebgp_over_ibgp(a: BgpRoute, b: BgpRoute) -> int:
    """eBGP-learned paths beat iBGP-learned paths."""
    return _cmp(int(not a.ebgp_learned), int(not b.ebgp_learned))


def compare_igp_metric(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest IGP metric to the BGP next hop wins."""
    return _cmp(a.igp_metric, b.igp_metric)


def compare_oldest(a: BgpRoute, b: BgpRoute) -> int:
    """Oldest received eBGP path wins (Cisco stability heuristic).

    Only applies when both paths are eBGP-learned; this is the
    arrival-order-dependent step that makes BGP nondeterministic.
    """
    if not (a.ebgp_learned and b.ebgp_learned):
        return 0
    return _cmp(a.received_at, b.received_at)


def compare_cluster_list(a: BgpRoute, b: BgpRoute) -> int:
    """Shortest CLUSTER_LIST wins (RFC 4456: fewer reflection hops)."""
    return _cmp(len(a.cluster_list), len(b.cluster_list))


def compare_router_id(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest advertising-router id wins (ORIGINATOR_ID substitutes
    for reflected routes, per RFC 4456)."""
    a_id = a.originator_id or a.peer_router_id
    b_id = b.originator_id or b.peer_router_id
    return _cmp(a_id, b_id)


def compare_peer_address(a: BgpRoute, b: BgpRoute) -> int:
    """Lowest neighbor address wins (the final deterministic step)."""
    return _cmp(a.peer_address, b.peer_address)


_STEPS: dict = {
    "weight": compare_weight,
    "local_pref": compare_local_pref,
    "locally_originated": compare_locally_originated,
    "as_path": compare_as_path,
    "origin": compare_origin,
    "med": compare_med_same_as,
    "med_always": compare_med_always,
    "ebgp_over_ibgp": compare_ebgp_over_ibgp,
    "igp_metric": compare_igp_metric,
    "oldest": compare_oldest,
    "cluster_list": compare_cluster_list,
    "router_id": compare_router_id,
    "peer_address": compare_peer_address,
}

CISCO_ORDER: Tuple[str, ...] = (
    "weight",
    "local_pref",
    "locally_originated",
    "as_path",
    "origin",
    "med",
    "ebgp_over_ibgp",
    "igp_metric",
    "oldest",
    "cluster_list",
    "router_id",
    "peer_address",
)

JUNIPER_ORDER: Tuple[str, ...] = (
    "local_pref",
    "as_path",
    "origin",
    "med",
    "ebgp_over_ibgp",
    "igp_metric",
    "cluster_list",
    "router_id",
    "peer_address",
)


class VendorProfile:
    """An ordered BGP decision process."""

    def __init__(self, name: str, step_names: Sequence[str]):
        unknown = [s for s in step_names if s not in _STEPS]
        if unknown:
            raise ValueError(f"unknown decision steps: {unknown}")
        self.name = name
        self.step_names: Tuple[str, ...] = tuple(step_names)
        self._steps: List[Comparator] = [_STEPS[s] for s in step_names]

    @classmethod
    def cisco(cls) -> "VendorProfile":
        return cls("cisco", CISCO_ORDER)

    @classmethod
    def juniper(cls) -> "VendorProfile":
        return cls("juniper", JUNIPER_ORDER)

    @classmethod
    def for_vendor(cls, vendor: str) -> "VendorProfile":
        if vendor == "cisco":
            return cls.cisco()
        if vendor == "juniper":
            return cls.juniper()
        raise ValueError(f"unknown vendor {vendor!r}")

    def deterministic(self) -> "VendorProfile":
        """This profile with arrival-order-dependent steps removed.

        Models §8's prescription: "BGP determinism can be guaranteed
        with the help of extra mechanisms such as BGP Add-Path".
        """
        remaining = [s for s in self.step_names if s != "oldest"]
        return VendorProfile(f"{self.name}-deterministic", remaining)

    def without(self, step_name: str) -> "VendorProfile":
        """Profile with one step removed (ablation support)."""
        remaining = [s for s in self.step_names if s != step_name]
        if len(remaining) == len(self.step_names):
            raise ValueError(f"step {step_name!r} not in profile {self.name}")
        return VendorProfile(f"{self.name}-no-{step_name}", remaining)

    def compare(self, a: BgpRoute, b: BgpRoute) -> int:
        """Full three-way comparison; 0 only for truly identical ranks."""
        for step in self._steps:
            result = step(a, b)
            if result != 0:
                return result
        return 0

    def explain(self, a: BgpRoute, b: BgpRoute) -> Tuple[int, Optional[str]]:
        """Like :meth:`compare` but also names the deciding step."""
        for name, step in zip(self.step_names, self._steps):
            result = step(a, b)
            if result != 0:
                return result, name
        return 0, None

    def __repr__(self) -> str:
        return f"VendorProfile({self.name!r})"


def best_path(
    candidates: Sequence[BgpRoute], profile: VendorProfile
) -> Optional[BgpRoute]:
    """Run the decision process over ``candidates``.

    A linear scan keeping the current winner, exactly how routers
    evaluate paths; stable with respect to input order except where
    the profile itself is order-dependent (the ``oldest`` step).
    """
    winner: Optional[BgpRoute] = None
    for candidate in candidates:
        if winner is None:
            winner = candidate
            continue
        if profile.compare(candidate, winner) < 0:
            winner = candidate
    return winner


def rank_paths(
    candidates: Sequence[BgpRoute], profile: VendorProfile
) -> List[BgpRoute]:
    """All candidates sorted best-first under ``profile``.

    Uses an insertion sort with the profile's comparator because the
    relation need not be a strict weak ordering when vendor quirks
    are in play; the result is still deterministic for a given input
    order.
    """
    ranked: List[BgpRoute] = []
    for candidate in candidates:
        placed = False
        for index, existing in enumerate(ranked):
            if profile.compare(candidate, existing) < 0:
                ranked.insert(index, candidate)
                placed = True
                break
        if not placed:
            ranked.append(candidate)
    return ranked
