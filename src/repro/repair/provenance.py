"""Root-cause analysis over the HBG (§6).

    "By traversing the HBG starting from a problematic FIB update, we
    can determine the sequence of I/Os that led to the policy
    violation.  Any leaf nodes we encounter represent the root
    cause(s) of the event."

:class:`ProvenanceTracer` walks ancestors of a violating FIB update
and classifies the leaves: configuration changes and hardware events
are *actionable* root causes (they can be reverted); receives from
external peers are *environmental* (the paper's §8 limitation — a
withdrawal caused by a dead uplink cannot be usefully blocked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.graph import HappensBeforeGraph


@dataclass
class ProvenanceResult:
    """Everything the tracer learned about one problematic event."""

    target: IOEvent
    root_causes: List[IOEvent]
    #: One shortest causal chain per root cause (cause ... target).
    chains: Dict[int, List[IOEvent]]
    #: Every ancestor event id visited.
    ancestry: Set[int]
    min_confidence: float

    @property
    def actionable_causes(self) -> List[IOEvent]:
        """Root causes we can revert: config and hardware inputs."""
        return [
            e
            for e in self.root_causes
            if e.kind in (IOKind.CONFIG_CHANGE, IOKind.HARDWARE_STATUS)
        ]

    @property
    def environmental_causes(self) -> List[IOEvent]:
        """Root causes outside our control (external advertisements)."""
        return [
            e
            for e in self.root_causes
            if e.kind not in (IOKind.CONFIG_CHANGE, IOKind.HARDWARE_STATUS)
        ]

    def config_change_ids(self) -> List[int]:
        """``ConfigChange.change_id`` values among the root causes."""
        ids = []
        for event in self.actionable_causes:
            if event.kind is IOKind.CONFIG_CHANGE:
                change_id = event.attr("change_id")
                if change_id is not None:
                    ids.append(int(change_id))
        return ids

    def describe(self) -> str:
        lines = [f"provenance of: {self.target.describe()}"]
        for cause in self.root_causes:
            marker = (
                "actionable"
                if cause in self.actionable_causes
                else "environmental"
            )
            lines.append(f"  root cause ({marker}): {cause.describe()}")
            chain = self.chains.get(cause.event_id)
            if chain:
                for hop in chain:
                    lines.append(f"    -> {hop.describe()}")
        return "\n".join(lines)


class ProvenanceTracer:
    """Backwards HBG traversal from problematic events to leaves."""

    def __init__(
        self, graph: HappensBeforeGraph, min_confidence: float = 0.0
    ):
        self.graph = graph
        self.min_confidence = min_confidence

    def trace(self, event_id: int) -> ProvenanceResult:
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        target = self.graph.event(event_id)
        ancestry = self.graph.ancestors(event_id, self.min_confidence)
        roots = self.graph.root_causes(event_id, self.min_confidence)
        chains: Dict[int, List[IOEvent]] = {}
        for root in roots:
            chain = self.graph.causal_chain(
                root.event_id, event_id, self.min_confidence
            )
            if chain is not None:
                chains[root.event_id] = chain
        if registry.enabled:
            registry.counter("repair.provenance_traces_total").inc()
            registry.histogram("repair.provenance_seconds").observe(
                watch.elapsed()
            )
            registry.histogram("repair.provenance_ancestry_size").observe(
                len(ancestry)
            )
            # Walk depth = hops on the longest root→target causal chain.
            depth = max((len(c) for c in chains.values()), default=0)
            registry.histogram("repair.provenance_walk_depth").observe(depth)
            registry.histogram("repair.provenance_root_causes").observe(
                len(roots)
            )
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.record(
                obs.TraceKind.PROVENANCE_WALK,
                at=target.timestamp,
                router=target.router,
                event_id=target.event_id,
                roots=len(roots),
                ancestry=len(ancestry),
            )
        return ProvenanceResult(
            target=target,
            root_causes=roots,
            chains=chains,
            ancestry=ancestry,
            min_confidence=self.min_confidence,
        )

    def trace_many(self, event_ids: Sequence[int]) -> ProvenanceResult:
        """Joint provenance of several violating events.

        Root causes are the union; a shared leaf (one config change
        breaking many routers, as in Fig. 4) appears once.
        """
        if not event_ids:
            raise ValueError("need at least one event to trace")
        results = [self.trace(event_id) for event_id in event_ids]
        merged = results[0]
        seen_roots = {e.event_id for e in merged.root_causes}
        for result in results[1:]:
            merged.ancestry.update(result.ancestry)
            for root in result.root_causes:
                if root.event_id not in seen_roots:
                    seen_roots.add(root.event_id)
                    merged.root_causes.append(root)
                    chain = result.chains.get(root.event_id)
                    if chain is not None:
                        merged.chains[root.event_id] = chain
        merged.root_causes.sort(key=lambda e: e.event_id)
        return merged

    def blast_radius(self, event_id: int) -> List[IOEvent]:
        """All events downstream of ``event_id`` — everything that
        would have to be rolled back if the event is reverted."""
        descendants = self.graph.descendants(event_id, self.min_confidence)
        return [self.graph.event(i) for i in sorted(descendants)]
