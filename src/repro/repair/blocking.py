"""The blocking baseline: "block or revert the updates" (§2).

    "However, this creates an inconsistency between the data and
    control planes that may lead to further policy violations."

:class:`BlockingRepair` installs a FIB guard that refuses writes for
a configured set of prefixes (or everything).  It also keeps the
ledger of what it blocked, so tests and benchmarks can quantify the
divergence between the control plane's belief and the actual data
plane — the pathology that produces the Fig. 2b black hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.addr import Prefix
from repro.protocols.fib import FibEntry


@dataclass(frozen=True)
class BlockedWrite:
    """One FIB write the guard refused."""

    router: str
    prefix: Prefix
    old: Optional[FibEntry]
    new: Optional[FibEntry]
    at: float


class BlockingRepair:
    """Freeze FIBs for selected prefixes network-wide."""

    def __init__(self, network, prefixes: Optional[Set[Prefix]] = None):
        self.network = network
        #: None means "block every BGP-driven write".
        self.prefixes = set(prefixes) if prefixes is not None else None
        self.blocked: List[BlockedWrite] = []
        self._active = False

    def activate(self) -> None:
        self.network.set_fib_guard(self._guard)
        self._active = True

    def deactivate(self) -> None:
        self.network.set_fib_guard(None)
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def _guard(
        self,
        router: str,
        old: Optional[FibEntry],
        new: Optional[FibEntry],
    ) -> bool:
        entry = new if new is not None else old
        if entry is None:
            return True
        if self.prefixes is not None and entry.prefix not in self.prefixes:
            return True
        self.blocked.append(
            BlockedWrite(
                router=router,
                prefix=entry.prefix,
                old=old,
                new=new,
                at=self.network.sim.now,
            )
        )
        return False

    # -- divergence accounting -----------------------------------------------

    def control_plane_belief(self) -> Dict[str, Dict[Prefix, Optional[str]]]:
        """What the control plane thinks the FIBs contain.

        Per router and prefix: the next hop of the current BGP best
        path (None for withdrawn) — what *would* be installed if the
        guard were lifted.
        """
        belief: Dict[str, Dict[Prefix, Optional[str]]] = {}
        for name, runtime in self.network.runtimes.items():
            if runtime.router.external:
                continue
            table: Dict[Prefix, Optional[str]] = {}
            for prefix, route in runtime.bgp.rib.loc_rib().items():
                if self.prefixes is not None and prefix not in self.prefixes:
                    continue
                resolved = runtime.resolve_next_hop(route.next_hop)
                table[prefix] = resolved[0] if resolved else None
            belief[name] = table
        return belief

    def divergence(self) -> List[Tuple[str, Prefix, Optional[str], Optional[str]]]:
        """(router, prefix, believed next hop, actual next hop) where
        the control plane and the frozen data plane disagree."""
        result = []
        belief = self.control_plane_belief()
        for router, table in belief.items():
            fib = self.network.runtime(router).fib
            for prefix, believed in table.items():
                entry = fib.get(prefix)
                actual = entry.next_hop_router if entry else None
                if believed != actual:
                    result.append((router, prefix, believed, actual))
        # Prefixes withdrawn from the control plane but still frozen
        # into the FIB also diverge.
        for router, runtime in self.network.runtimes.items():
            if runtime.router.external:
                continue
            loc = runtime.bgp.rib.loc_rib()
            for entry in runtime.fib:
                if entry.protocol not in ("ebgp", "ibgp"):
                    continue
                if self.prefixes is not None and entry.prefix not in self.prefixes:
                    continue
                if entry.prefix not in loc:
                    record = (router, entry.prefix, None, entry.next_hop_router)
                    if record not in result:
                        result.append(record)
        return result
