"""Early repair: predict outcomes before the damage propagates (§6).

    "A more advanced mitigation technique is blocking the root cause
    event as soon as possible — prior to any violation detection.
    ...  This repetition enables us to automatically learn a model of
    the control plane behavior from the data that we can then use to
    predict control plane outcomes."

The predictor is deliberately model-free, per the paper's framing: it
learns from *observed history* (input event → did a violation
follow?), keyed by an input-event signature and the prefix
equivalence group the event touches.  At prediction time a new input
whose (signature, group) matched violating history is flagged before
its downstream FIB updates land.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.capture.io_events import IOEvent, IOKind

#: Input-event signature: (kind, router, coarse payload).
InputSignature = Tuple[str, str, str]


def input_signature(event: IOEvent) -> InputSignature:
    """A coarse, generalisable description of a control-plane input."""
    if event.kind is IOKind.CONFIG_CHANGE:
        payload = f"{event.attr('kind')}:{event.attr('key')}"
        # Generalise the *value* away: "a change to this route-map on
        # this router" is the repeatable unit, not the specific LP.
        return (event.kind.value, event.router, payload)
    if event.kind is IOKind.HARDWARE_STATUS:
        return (
            event.kind.value,
            event.router,
            f"{event.attr('link')}:{event.attr('status')}",
        )
    action = event.action.value if event.action else "-"
    return (
        event.kind.value,
        event.router,
        f"{event.protocol}:{action}:{event.peer}",
    )


@dataclass(frozen=True)
class TrainingExample:
    """One historical observation: input event → outcome."""

    signature: InputSignature
    group_id: Optional[int]
    violated: bool
    #: Optional detail for reporting (e.g. which policy broke).
    detail: str = ""


@dataclass
class Prediction:
    """The predictor's verdict on a new input event."""

    will_violate: bool
    confidence: float
    support: int
    detail: str = ""

    def __str__(self) -> str:
        verdict = "VIOLATION" if self.will_violate else "safe"
        return (
            f"Prediction[{verdict}, confidence={self.confidence:.2f}, "
            f"support={self.support}]"
        )


class OutcomePredictor:
    """History-based outcome prediction for control-plane inputs."""

    def __init__(self, min_support: int = 1, threshold: float = 0.5):
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.min_support = min_support
        self.threshold = threshold
        self._history: Dict[
            Tuple[InputSignature, Optional[int]], List[TrainingExample]
        ] = defaultdict(list)

    def learn(self, example: TrainingExample) -> None:
        self._history[(example.signature, example.group_id)].append(example)

    def learn_from_event(
        self,
        event: IOEvent,
        group_id: Optional[int],
        violated: bool,
        detail: str = "",
    ) -> TrainingExample:
        example = TrainingExample(
            signature=input_signature(event),
            group_id=group_id,
            violated=violated,
            detail=detail,
        )
        self.learn(example)
        return example

    def predict(
        self, event: IOEvent, group_id: Optional[int] = None
    ) -> Prediction:
        """Predict whether ``event`` will lead to a violation.

        Falls back from exact (signature, group) history to
        signature-only history — "many destinations are treated
        alike", so same-signature evidence from *another* group still
        carries (discounted) weight.
        """
        signature = input_signature(event)
        exact = self._history.get((signature, group_id), [])
        if len(exact) >= self.min_support:
            rate = sum(1 for e in exact if e.violated) / len(exact)
            detail = next((e.detail for e in exact if e.violated), "")
            return Prediction(
                will_violate=rate >= self.threshold,
                confidence=rate if rate >= self.threshold else 1.0 - rate,
                support=len(exact),
                detail=detail,
            )
        # Cross-group fallback.
        related: List[TrainingExample] = []
        for (sig, _group), examples in self._history.items():
            if sig == signature:
                related.extend(examples)
        if len(related) >= self.min_support:
            rate = sum(1 for e in related if e.violated) / len(related)
            detail = next((e.detail for e in related if e.violated), "")
            discounted = rate * 0.8  # weaker evidence across groups
            return Prediction(
                will_violate=discounted >= self.threshold,
                confidence=discounted
                if discounted >= self.threshold
                else 1.0 - discounted,
                support=len(related),
                detail=detail,
            )
        return Prediction(
            will_violate=False, confidence=0.0, support=0, detail="no history"
        )

    def known_signatures(self) -> List[InputSignature]:
        return sorted({sig for sig, _ in self._history})

    def history_size(self) -> int:
        return sum(len(v) for v in self._history.values())
