"""Prefix equivalence grouping (§6).

    "Control plane computations tend to be highly repetitive across
    prefixes.  Many destinations are treated alike by the network
    control plane and can therefore be grouped into few equivalence
    classes.  Studies have shown that even large networks (100K
    prefixes) often have less than 15 equivalence classes in total."

:class:`PrefixGrouper` groups *prefixes* (not raw address atoms — see
:mod:`repro.verify.headerspace` for that) by their network-wide
forwarding behaviour, which is the granularity the §6 predictor
learns at: an input event's effect on one member of a class predicts
its effect on all members.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addr import Prefix
from repro.snapshot.base import DataPlaneSnapshot

#: A prefix's network-wide behaviour: per-router (next_hop, discard).
BehaviorKey = Tuple[Tuple[str, Tuple[Optional[str], bool]], ...]


@dataclass(frozen=True)
class PrefixGroup:
    """One equivalence class of prefixes."""

    group_id: int
    behavior: BehaviorKey
    prefixes: Tuple[Prefix, ...]

    @property
    def representative(self) -> Prefix:
        return self.prefixes[0]

    def __len__(self) -> int:
        return len(self.prefixes)


class PrefixGrouper:
    """Group snapshot prefixes by identical forwarding behaviour."""

    def __init__(self, routers: Optional[Sequence[str]] = None):
        self.routers = list(routers) if routers else None

    def behavior_of(
        self, snapshot: DataPlaneSnapshot, prefix: Prefix
    ) -> BehaviorKey:
        routers = self.routers or snapshot.routers()
        address = prefix.first_address()
        behavior = []
        for router in sorted(routers):
            entry = snapshot.lookup(router, address)
            if entry is None:
                behavior.append((router, (None, False)))
            else:
                behavior.append(
                    (router, (entry.next_hop_router, entry.discard))
                )
        return tuple(behavior)

    def group(self, snapshot: DataPlaneSnapshot) -> List[PrefixGroup]:
        by_behavior: Dict[BehaviorKey, List[Prefix]] = defaultdict(list)
        for prefix in sorted(snapshot.all_prefixes()):
            by_behavior[self.behavior_of(snapshot, prefix)].append(prefix)
        groups = []
        for group_id, (behavior, prefixes) in enumerate(
            sorted(by_behavior.items(), key=lambda item: item[1][0].key())
        ):
            groups.append(
                PrefixGroup(
                    group_id=group_id,
                    behavior=behavior,
                    prefixes=tuple(prefixes),
                )
            )
        return groups

    def group_of(
        self, groups: Sequence[PrefixGroup], prefix: Prefix
    ) -> Optional[PrefixGroup]:
        for group in groups:
            if prefix in group.prefixes:
                return group
        return None

    @staticmethod
    def compression(groups: Sequence[PrefixGroup]) -> float:
        """Average prefixes per group (the §6 headline ratio)."""
        total = sum(len(g) for g in groups)
        return total / len(groups) if groups else 0.0
