"""Repairing policy violations via the HBG (§6).

Three repair strategies "in increasing order of sophistication":

1. :mod:`repro.repair.blocking` — the strawman §2 warns about:
   block the problematic FIB updates.  Demonstrably dangerous (the
   Fig. 2b black hole) but included as the baseline.
2. :mod:`repro.repair.provenance` + :mod:`repro.repair.rollback` —
   trace a problematic FIB update backwards through the HBG to its
   leaf root cause(s) and revert the causing configuration change
   using the versioned config store.
3. :mod:`repro.repair.predictor` — "reverting the root cause event,
   early on in the computation": exploit the repetitiveness of
   control-plane behaviour across prefix equivalence classes
   (:mod:`repro.repair.equivalence`) to predict the data-plane
   outcome of an input event before the damage propagates.
"""

from repro.repair.provenance import ProvenanceResult, ProvenanceTracer
from repro.repair.rollback import RepairAction, RepairEngine, RepairReport
from repro.repair.blocking import BlockingRepair
from repro.repair.equivalence import PrefixGrouper
from repro.repair.predictor import OutcomePredictor, TrainingExample

__all__ = [
    "BlockingRepair",
    "OutcomePredictor",
    "PrefixGrouper",
    "ProvenanceResult",
    "ProvenanceTracer",
    "RepairAction",
    "RepairEngine",
    "RepairReport",
    "TrainingExample",
]
