"""Root-cause rollback (§6, "Reverting the root cause event").

    "We would therefore automatically revert it and report the
    configuration change as problematic to the operator.  If the
    change was intended, the operator can simply adapt the policy
    accordingly."

:class:`RepairEngine` connects provenance results to the versioned
configuration store: for each actionable root cause that is a config
change, it applies the inverse change through the live network (so
the revert propagates like any other control-plane input), waits for
re-convergence, and re-verifies.  §8's correctness preconditions —
HBR precision and deterministic control-plane execution — are
surfaced in the report rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.net.config import ConfigChange
from repro.repair.provenance import ProvenanceResult
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.verifier import DataPlaneVerifier, VerificationResult


@dataclass
class RepairAction:
    """One revert applied (or attempted)."""

    root_cause: IOEvent
    change_reverted: Optional[ConfigChange]
    inverse_applied: Optional[ConfigChange]
    succeeded: bool
    note: str = ""

    def __str__(self) -> str:
        status = "ok" if self.succeeded else "FAILED"
        return f"RepairAction[{status}] {self.root_cause.describe()} ({self.note})"


@dataclass
class RepairReport:
    """Outcome of one repair attempt."""

    actions: List[RepairAction]
    #: Verification result after re-convergence (None if no action).
    post_verification: Optional[VerificationResult]
    converge_seconds: float = 0.0
    #: Environmental causes that could not be repaired (§8 limitation).
    unrepairable: List[IOEvent] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        return (
            any(a.succeeded for a in self.actions)
            and self.post_verification is not None
            and self.post_verification.ok
        )

    def describe(self) -> str:
        lines = ["repair report:"]
        for action in self.actions:
            lines.append(f"  {action}")
        for event in self.unrepairable:
            lines.append(f"  unrepairable: {event.describe()}")
        if self.post_verification is not None:
            lines.append(f"  post-verify: {self.post_verification}")
        return "\n".join(lines)


class RepairEngine:
    """Applies root-cause reverts to a live network and re-verifies.

    ``snapshotters`` registers cache-holding verification components —
    persistent-memo :class:`~repro.snapshot.consistent.ConsistentSnapshotter`
    instances and :class:`~repro.verify.incremental.IncrementalVerifier`
    wrappers — whose ``invalidate()`` is called after any revert is
    applied.  A revert re-converges the network and later replays
    re-use event ids, so every memo keyed by event id or
    (router, prefix) may silently describe a different event; failing
    to invalidate serves stale closures (the cache-coherence hazard
    docs/INCREMENTAL_VERIFY.md documents and
    tests/test_verify_incremental.py reproduces).
    """

    def __init__(
        self,
        network,
        verifier: DataPlaneVerifier,
        snapshotters: Sequence = (),
    ):
        self.network = network
        self.verifier = verifier
        self.snapshotters = list(snapshotters)

    def _find_change(self, change_id: int) -> Optional[ConfigChange]:
        for router in self.network.configs.routers():
            for change in self.network.configs.changes(router):
                if change.change_id == change_id:
                    return change
        return None

    def repair(
        self,
        provenance: ProvenanceResult,
        settle: float = 60.0,
        only_change_ids: Optional[set] = None,
    ) -> RepairReport:
        """Revert every actionable config root cause, then re-verify.

        Hardware root causes (a link that died) are reported as
        unrepairable — software cannot splice fibre — as are
        environmental causes, matching §8: "when a route is withdrawn
        because a link goes down ... blocking the withdrawal would
        have no good effects".

        ``only_change_ids`` restricts reverts to that set — the
        pipeline uses it to avoid re-reverting changes it already
        handled (or reverting its own reverts).
        """
        actions: List[RepairAction] = []
        unrepairable = list(provenance.environmental_causes)
        for cause in provenance.actionable_causes:
            if cause.kind is IOKind.HARDWARE_STATUS:
                unrepairable.append(cause)
                continue
            change_id = cause.attr("change_id")
            if (
                only_change_ids is not None
                and change_id is not None
                and int(change_id) not in only_change_ids
            ):
                continue
            if change_id is None:
                actions.append(
                    RepairAction(
                        root_cause=cause,
                        change_reverted=None,
                        inverse_applied=None,
                        succeeded=False,
                        note="config event carries no change id",
                    )
                )
                continue
            change = self._find_change(int(change_id))
            if change is None:
                actions.append(
                    RepairAction(
                        root_cause=cause,
                        change_reverted=None,
                        inverse_applied=None,
                        succeeded=False,
                        note=f"change #{change_id} not in config store",
                    )
                )
                continue
            try:
                inverse = change.inverted()
            except Exception as error:  # noqa: BLE001 - reported, not raised
                actions.append(
                    RepairAction(
                        root_cause=cause,
                        change_reverted=change,
                        inverse_applied=None,
                        succeeded=False,
                        note=f"cannot invert: {error}",
                    )
                )
                continue
            self.network.apply_config_change(inverse)
            actions.append(
                RepairAction(
                    root_cause=cause,
                    change_reverted=change,
                    inverse_applied=inverse,
                    succeeded=True,
                    note=f"reverted {change}",
                )
            )
        if any(a.succeeded for a in actions):
            # The revert invalidates every registered verification
            # cache *before* any re-verification or replay consumes
            # post-revert events.
            for snapshotter in self.snapshotters:
                snapshotter.invalidate()
        post: Optional[VerificationResult] = None
        converge_seconds = 0.0
        # settle == 0 means the caller is inside a running simulation
        # event (the pipeline guard): the revert will propagate as the
        # simulation continues, and re-verification is the caller's job.
        if any(a.succeeded for a in actions) and settle > 0:
            before = self.network.sim.now
            self.network.run(settle)
            converge_seconds = self.network.sim.now - before
            snapshot = DataPlaneSnapshot.from_live_network(self.network)
            post = self.verifier.verify(snapshot)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("repair.reverts_applied_total").inc(
                sum(1 for a in actions if a.succeeded)
            )
            registry.counter("repair.reverts_failed_total").inc(
                sum(1 for a in actions if not a.succeeded)
            )
            registry.counter("repair.unrepairable_total").inc(
                len(unrepairable)
            )
            if converge_seconds:
                registry.histogram("repair.converge_sim_seconds").observe(
                    converge_seconds
                )
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.record(
                obs.TraceKind.ROLLBACK,
                at=self.network.sim.now,
                event_id=provenance.target.event_id,
                detail="; ".join(a.note for a in actions if a.succeeded),
                reverted=sum(1 for a in actions if a.succeeded),
                failed=sum(1 for a in actions if not a.succeeded),
                unrepairable=len(unrepairable),
            )
        verdicts = obs.get_verdicts()
        if verdicts.enabled:
            reverted = sum(1 for a in actions if a.succeeded)
            root_refs = tuple(
                sorted(
                    {a.root_cause.event_id for a in actions if a.succeeded}
                    | {provenance.target.event_id}
                )
            )
            verdicts.record(
                kind="rollback",
                at=self.network.sim.now,
                ok=post.ok if post is not None else bool(reverted),
                event_id=provenance.target.event_id,
                event_time=provenance.target.timestamp,
                detail="; ".join(a.note for a in actions if a.succeeded)
                or "no revert applied",
                violations=len(post.violations) if post is not None else 0,
                refs=root_refs,
                reverted=reverted,
                failed=sum(1 for a in actions if not a.succeeded),
                unrepairable=len(unrepairable),
            )
        return RepairReport(
            actions=actions,
            post_verification=post,
            converge_seconds=converge_seconds,
            unrepairable=unrepairable,
        )
