"""Operator-facing rendering of captures, HBGs, and incidents.

The paper's Figs. 4 and 5 are *renderings* of captured episodes: a
per-router lane diagram of control-plane I/Os (Fig. 5) and a causal
graph (Fig. 4).  This package produces both from any capture:

* :func:`~repro.analysis.timeline.render_timeline` — Fig. 5-style
  per-router lanes in plain text;
* :class:`~repro.analysis.report.IncidentReporter` — a full incident
  write-up: violations, causal chain, root causes, blast radius, and
  repair actions, suitable for handing to a network operator.
"""

from repro.analysis.timeline import render_timeline
from repro.analysis.report import IncidentReporter

__all__ = ["IncidentReporter", "render_timeline"]
