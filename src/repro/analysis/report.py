"""Full incident write-ups for network operators.

§6: the system should "report the configuration change as problematic
to the operator.  If the change was intended, the operator can simply
adapt the policy accordingly."  :class:`IncidentReporter` assembles
everything an operator needs for that decision: the violations, the
causal chain rendered as a timeline, the root causes with their
classification, the blast radius, and what (if anything) was already
repaired automatically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.timeline import render_timeline
from repro.capture.io_events import IOEvent
from repro.hbr.graph import HappensBeforeGraph
from repro.repair.provenance import ProvenanceResult
from repro.repair.rollback import RepairReport
from repro.verify.policy import Violation


class IncidentReporter:
    """Render one incident (violations + provenance + repair) as text."""

    def __init__(self, graph: HappensBeforeGraph):
        self.graph = graph

    def render(
        self,
        violations: Sequence[Violation],
        provenance: Optional[ProvenanceResult] = None,
        repair: Optional[RepairReport] = None,
        title: str = "policy violation incident",
    ) -> str:
        lines: List[str] = [
            "=" * 72,
            f"INCIDENT REPORT: {title}",
            "=" * 72,
        ]
        lines.append("")
        lines.append(f"Violations detected ({len(violations)}):")
        for violation in violations:
            lines.append(f"  * {violation}")
        if provenance is not None:
            lines.extend(self._provenance_section(provenance))
        if repair is not None:
            lines.append("")
            lines.append("Automatic repair:")
            lines.append("  " + repair.describe().replace("\n", "\n  "))
        lines.append("")
        lines.append("Operator guidance:")
        lines.extend(self._guidance(provenance, repair))
        return "\n".join(lines)

    def _provenance_section(self, provenance: ProvenanceResult) -> List[str]:
        lines = ["", "Root-cause analysis (happens-before graph):"]
        for cause in provenance.root_causes:
            marker = (
                "actionable"
                if cause in provenance.actionable_causes
                else "environmental"
            )
            lines.append(f"  root cause [{marker}]: {cause.describe()}")
        chain_events: List[IOEvent] = []
        for chain in provenance.chains.values():
            chain_events.extend(chain)
        if chain_events:
            lines.append("")
            lines.append("Causal timeline (cause -> fault):")
            timeline = render_timeline(
                {e.event_id: e for e in chain_events}.values()
            )
            lines.extend("  " + line for line in timeline.splitlines())
        radius = len(provenance.ancestry)
        lines.append("")
        lines.append(
            f"Blast radius: {radius} control-plane events implicated "
            f"across {len({self.graph.event(i).router for i in provenance.ancestry} | {provenance.target.router})} router(s)."
        )
        return lines

    def _guidance(
        self,
        provenance: Optional[ProvenanceResult],
        repair: Optional[RepairReport],
    ) -> List[str]:
        lines = []
        if repair is not None and repair.repaired:
            lines.append(
                "  The root-cause configuration change was reverted "
                "automatically."
            )
            lines.append(
                "  If the change was intended, adapt the policy and "
                "re-apply it (§6)."
            )
        elif provenance is not None and provenance.actionable_causes:
            lines.append(
                "  Revert the root-cause change(s) listed above, or adapt "
                "the policy if the change was intended."
            )
        if provenance is not None and provenance.environmental_causes:
            lines.append(
                "  Environmental causes (external routes / hardware) "
                "cannot be repaired in software (§8); investigate the "
                "underlying event."
            )
        if not lines:
            lines.append("  No actionable root cause was identified.")
        return lines
