"""Fig. 5-style per-router lane rendering of a captured episode.

The paper's Fig. 5 lays control-plane I/Os out in one column per
router, ordered by time, with the elapsed delay annotated between
consecutive events.  :func:`render_timeline` produces the same layout
in plain text from any slice of a capture.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.capture.io_events import IOEvent, IOKind

#: Compact one-line labels per event kind (Fig. 5's cell style).
_KIND_LABELS = {
    IOKind.CONFIG_CHANGE: "Config",
    IOKind.HARDWARE_STATUS: "Link",
    IOKind.ROUTE_RECEIVE: "Recv",
    IOKind.ROUTE_SEND: "Send",
    IOKind.RIB_UPDATE: "RIB",
    IOKind.FIB_UPDATE: "FIB",
}


def _cell_text(event: IOEvent) -> str:
    label = _KIND_LABELS[event.kind]
    if event.kind is IOKind.CONFIG_CHANGE:
        detail = str(event.attr("description") or event.attr("key") or "")
        return f"{label}: {detail}"
    if event.kind is IOKind.HARDWARE_STATUS:
        return f"{label}: {event.attr('link')} {event.attr('status')}"
    parts = [label]
    if event.action is not None and event.kind in (
        IOKind.ROUTE_SEND,
        IOKind.ROUTE_RECEIVE,
    ):
        parts.append(event.action.value)
    if event.prefix is not None:
        parts.append(str(event.prefix))
    if event.peer:
        arrow = "->" if event.kind is IOKind.ROUTE_SEND else "<-"
        parts.append(f"{arrow}{event.peer}")
    nh = event.attr("next_hop_router")
    if nh and event.kind is IOKind.FIB_UPDATE:
        parts.append(f"via {nh}")
    return " ".join(parts)


def render_timeline(
    events: Iterable[IOEvent],
    routers: Optional[Sequence[str]] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
    column_width: int = 34,
) -> str:
    """Render events as per-router lanes with inter-event delays.

    ``routers`` fixes the lane order (defaults to sorted router names
    present); ``since``/``until`` clip the window.  Each row is one
    event; the delay annotation on the left is measured from the
    previous rendered row, mirroring Fig. 5's "+4ms" style.
    """
    selected = [
        e
        for e in events
        if (since is None or e.timestamp >= since)
        and (until is None or e.timestamp <= until)
    ]
    selected.sort(key=lambda e: (e.timestamp, e.event_id))
    if not selected:
        return "(no events in window)"
    lane_names = list(routers) if routers else sorted(
        {e.router for e in selected}
    )
    lanes = {name: index for index, name in enumerate(lane_names)}

    header_cells = ["t (delay)".ljust(14)] + [
        name.center(column_width) for name in lane_names
    ]
    rule = "-" * (14 + (column_width + 1) * len(lane_names))
    lines = ["  ".join(header_cells), rule]

    base = selected[0].timestamp
    previous = base
    for event in selected:
        if event.router not in lanes:
            continue
        gap = event.timestamp - previous
        previous = event.timestamp
        if gap >= 1.0:
            delay_text = f"+{gap:.1f}s"
        elif gap > 0:
            delay_text = f"+{gap * 1000:.1f}ms"
        else:
            delay_text = ""
        stamp = f"{event.timestamp - base:9.4f} {delay_text}".ljust(14)
        cells = [" " * column_width] * len(lane_names)
        text = _cell_text(event)
        if len(text) > column_width:
            text = text[: column_width - 1] + "…"
        cells[lanes[event.router]] = text.ljust(column_width)
        lines.append("  ".join([stamp] + cells))
    return "\n".join(lines)
