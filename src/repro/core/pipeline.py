"""The integrated verification/repair pipeline (Fig. 3).

    "Our proposal is for each router to capture all control plane
    inputs and outputs, send them to a centralized data plane
    verifier, and only allow the data plane to be updated if the
    inputs and outputs are deemed correct."  (§1)

The pipeline subscribes to the capture collector (maintaining the
HBG incrementally via streaming inference) and installs a guard at
every internal router's FIB boundary.  When a FIB write is attempted:

1. the verifier's current snapshot reconstruction is updated with
   the *hypothetical* post-write state;
2. only violations *introduced* by the write are counted —
   legitimate convergence transitions that shrink or preserve the
   violation set pass through;
3. an offending write is blocked (in ``BLOCK``/``REPAIR`` modes), its
   provenance is traced from its causing RIB update back to HBG
   leaves, and in ``REPAIR`` mode the root-cause configuration change
   is reverted through the versioned config store — once per change,
   however many routers' updates it poisoned.

The pipeline also offers the offline path (``detect_and_repair``)
corresponding to §6's first variant: verify a consistent snapshot
after the fact, trace each violating FIB entry, and revert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind
from repro.hbr.inference import InferenceEngine
from repro.net.addr import Prefix
from repro.protocols.fib import FibEntry
from repro.repair.provenance import ProvenanceResult, ProvenanceTracer
from repro.repair.rollback import RepairEngine, RepairReport
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry, VerifierView
from repro.snapshot.consistent import ConsistentSnapshotter
from repro.verify.policy import Policy, Violation
from repro.verify.verifier import DataPlaneVerifier


class PipelineMode(enum.Enum):
    """What the pipeline does about a bad update."""

    MONITOR = "monitor"  # detect and record only
    BLOCK = "block"  # block the update (the §2 strawman)
    REPAIR = "repair"  # block + revert the root cause (the paper)
    #: §6's "more advanced mitigation technique": like REPAIR, but
    #: additionally consult the learned outcome predictor on every
    #: incoming CONFIG_CHANGE and revert recognised-bad changes
    #: immediately — "prior to any violation detection", before even
    #: the soft reconfiguration fires.
    PREDICT = "predict"


@dataclass
class PipelineIncident:
    """One caught-bad-update episode."""

    at: float
    router: str
    prefix: Optional[Prefix]
    introduced_violations: List[Violation]
    provenance: Optional[ProvenanceResult]
    blocked: bool
    repair: Optional[RepairReport] = None
    #: True when the predictor caught the change before any damage.
    predicted: bool = False

    def describe(self) -> str:
        if self.predicted:
            header = (
                f"incident @{self.at:.3f}s: config change on "
                f"{self.router} predicted to violate policy; reverted "
                f"before any FIB damage"
            )
        else:
            header = (
                f"incident @{self.at:.3f}s: FIB update for {self.prefix} "
                f"on {self.router} would introduce "
                f"{len(self.introduced_violations)} violation(s) "
                f"({'blocked' if self.blocked else 'allowed'})"
            )
        lines = [header]
        for violation in self.introduced_violations:
            lines.append(f"  {violation}")
        if self.provenance is not None:
            lines.append("  " + self.provenance.describe().replace("\n", "\n  "))
        if self.repair is not None:
            lines.append("  " + self.repair.describe().replace("\n", "\n  "))
        return "\n".join(lines)


class IntegratedControlPlane:
    """Fig. 3, operational: capture -> verify -> trace -> block/repair."""

    def __init__(
        self,
        network,
        policies: Sequence[Policy],
        mode: PipelineMode = PipelineMode.REPAIR,
        engine: Optional[InferenceEngine] = None,
        repair_settle: float = 60.0,
    ):
        self.network = network
        self.mode = mode
        self.engine = engine or InferenceEngine()
        self.verifier = DataPlaneVerifier(network.topology, policies)
        self.repair_engine = RepairEngine(network, self.verifier)
        self.repair_settle = repair_settle
        self.incidents: List[PipelineIncident] = []
        self.updates_checked = 0
        self.updates_blocked = 0
        #: Config change ids already reverted (dedup across incidents).
        self._reverted_change_ids: Set[int] = set()
        #: The learned model behind PREDICT mode; trained automatically
        #: from every incident's root cause.
        from repro.repair.predictor import OutcomePredictor

        self.predictor = OutcomePredictor()
        #: True while the pipeline itself is applying a revert, so the
        #: predictor never fires on the pipeline's own config changes.
        self._repairing = False
        self._stream = self.engine.streaming()
        network.collector.subscribe(self._observe)
        # Catch up on any events captured before attachment.
        for event in network.collector:
            self._stream.observe(event)
        self._armed = False

    def _observe(self, event: IOEvent) -> None:
        self._stream.observe(event)
        if (
            self.mode is PipelineMode.PREDICT
            and self._armed
            and not self._repairing
            and event.kind is IOKind.CONFIG_CHANGE
        ):
            self._consider_prediction(event)

    def _consider_prediction(self, event: IOEvent) -> None:
        """§6 early repair: revert recognised-bad changes on sight."""
        change_id = event.attr("change_id")
        if change_id is None or int(change_id) in self._reverted_change_ids:
            return
        prediction = self.predictor.predict(event)
        if not prediction.will_violate:
            return
        change = self._find_change_by_id(int(change_id))
        if change is None:
            return
        self._reverted_change_ids.add(int(change_id))
        try:
            inverse = change.inverted()
        except Exception:  # noqa: BLE001 - uninvertible: leave to the guard
            return
        self._reverted_change_ids.add(inverse.change_id)
        self._repairing = True
        try:
            self.network.apply_config_change(inverse)
        finally:
            self._repairing = False
        self.incidents.append(
            PipelineIncident(
                at=self.network.sim.now,
                router=event.router,
                prefix=None,
                introduced_violations=[],
                provenance=None,
                blocked=True,
                predicted=True,
            )
        )
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("repair.incidents_total").inc()
            registry.counter("repair.predicted_reverts_total").inc()

    def _find_change_by_id(self, change_id: int):
        for router in self.network.configs.routers():
            for change in self.network.configs.changes(router):
                if change.change_id == change_id:
                    return change
        return None

    # -- lifecycle -------------------------------------------------------------

    def arm(self) -> "IntegratedControlPlane":
        """Install the FIB guard on every internal router."""
        self.network.set_fib_guard(self._guard)
        self._armed = True
        return self

    def disarm(self) -> None:
        self.network.set_fib_guard(None)
        self._armed = False

    @property
    def hbg(self):
        """The incrementally-maintained happens-before graph."""
        return self._stream.graph

    # -- the guard ---------------------------------------------------------------

    def _current_snapshot(self) -> DataPlaneSnapshot:
        """The verifier's reconstruction from events captured so far.

        The pipeline is co-located with the collector (zero delivery
        lag), so this is simply the replay of all FIB events.
        """
        return DataPlaneSnapshot.from_fib_events(
            self.network.collector.events_of_kind(IOKind.FIB_UPDATE),
            taken_at=self.network.sim.now,
        )

    def _guard(
        self,
        router: str,
        old: Optional[FibEntry],
        new: Optional[FibEntry],
    ) -> bool:
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        self.updates_checked += 1
        entry = new if new is not None else old
        if entry is None:
            return True
        prefix = entry.prefix
        snapshot = self._current_snapshot()
        hypothetical: Optional[SnapshotEntry] = None
        if new is not None:
            hypothetical = SnapshotEntry(
                router=router,
                prefix=prefix,
                next_hop_router=new.next_hop_router,
                out_interface=new.out_interface,
                protocol=new.protocol,
                discard=new.discard,
                source_event_id=0,
                timestamp=self.network.sim.now,
            )
        introduced, _result = self.verifier.new_violations_from(
            snapshot, hypothetical, router, prefix
        )
        if not introduced:
            if registry.enabled:
                registry.counter("verify.fib_writes_verified").inc()
                registry.histogram(
                    "verify.fib_write_latency_seconds"
                ).observe(watch.elapsed())
            return True
        provenance = self._trace_pending_update(router, prefix)
        blocked = self.mode is not PipelineMode.MONITOR
        incident = PipelineIncident(
            at=self.network.sim.now,
            router=router,
            prefix=prefix,
            introduced_violations=introduced,
            provenance=provenance,
            blocked=blocked,
        )
        self.incidents.append(incident)
        if blocked:
            self.updates_blocked += 1
        if provenance is not None:
            self._learn_from_incident(provenance, introduced)
        if (
            self.mode in (PipelineMode.REPAIR, PipelineMode.PREDICT)
            and provenance is not None
        ):
            incident.repair = self._repair_once(provenance)
        if registry.enabled:
            registry.counter("verify.fib_writes_verified").inc()
            registry.counter("repair.incidents_total").inc()
            registry.counter(
                "verify.violations_introduced_total"
            ).inc(len(introduced))
            if blocked:
                registry.counter("verify.fib_writes_blocked").inc()
            registry.histogram("verify.fib_write_latency_seconds").observe(
                watch.elapsed()
            )
        return not blocked

    def _learn_from_incident(
        self,
        provenance: ProvenanceResult,
        violations: List[Violation],
    ) -> None:
        """Feed the predictor: this input signature led to a violation."""
        detail = violations[0].policy if violations else ""
        for cause in provenance.actionable_causes:
            if cause.kind is IOKind.CONFIG_CHANGE:
                self.predictor.learn_from_event(
                    cause, group_id=None, violated=True, detail=detail
                )

    def _trace_pending_update(
        self, router: str, prefix: Prefix
    ) -> Optional[ProvenanceResult]:
        """Provenance of the not-yet-installed FIB update.

        The FIB event does not exist (the write is pending), but its
        would-be parent does: the latest RIB_UPDATE for the same
        router and prefix.  Trace from there.
        """
        candidates = [
            event
            for event in self.network.collector.query(
                router=router, kind=IOKind.RIB_UPDATE, prefix=prefix
            )
            if event.event_id in self._stream.graph
        ]
        if not candidates:
            return None
        latest = max(candidates, key=lambda e: (e.timestamp, e.event_id))
        tracer = ProvenanceTracer(self._stream.graph)
        return tracer.trace(latest.event_id)

    def _repair_once(
        self, provenance: ProvenanceResult
    ) -> Optional[RepairReport]:
        """Revert root causes not already reverted this session."""
        new_ids = {
            change_id
            for change_id in provenance.config_change_ids()
            if change_id not in self._reverted_change_ids
        }
        if not new_ids:
            return None
        self._reverted_change_ids.update(new_ids)
        registry = obs.get_registry()
        if registry.enabled:
            watch = registry.stopwatch()
        # Note: settle=0 here; the revert propagates through the
        # already-running simulation rather than a nested run() call
        # (the guard fires *inside* a simulation event).
        self._repairing = True
        try:
            report = self.repair_engine.repair(
                provenance, settle=0.0, only_change_ids=new_ids
            )
        finally:
            self._repairing = False
        if registry.enabled:
            registry.counter("repair.root_causes_reverted_total").inc(
                len(new_ids)
            )
            registry.histogram("repair.repair_seconds").observe(
                watch.elapsed()
            )
        # The reverts themselves are config changes; they must never be
        # treated as root causes to revert later (that would oscillate).
        for action in report.actions:
            if action.inverse_applied is not None:
                self._reverted_change_ids.add(action.inverse_applied.change_id)
        return report

    # -- offline detection (the monitoring path) -----------------------------------

    def detect_and_repair(
        self,
        view: Optional[VerifierView] = None,
        at: Optional[float] = None,
        wait_deadline: float = 5.0,
        settle: float = 60.0,
    ) -> Tuple[List[Violation], Optional[RepairReport]]:
        """§6 variant 1: verify a consistent snapshot, trace, revert.

        Uses the consistent snapshotter (waiting for stragglers up to
        ``wait_deadline`` seconds past ``at``) so the verifier never
        acts on a phantom violation.
        """
        when = at if at is not None else self.network.sim.now
        view = view or VerifierView(self.network.collector)
        snapshotter = ConsistentSnapshotter(
            view,
            internal_routers=self.network.topology.internal_routers(),
            engine=self.engine,
        )
        with obs.span("pipeline.detect_and_repair"):
            snapshot, report, got_at = snapshotter.wait_until_consistent(
                when, when + wait_deadline
            )
            if snapshot is None:
                return [], None
            with obs.span("pipeline.offline_verify"):
                result = self.verifier.verify(snapshot)
            if result.ok:
                return [], None
            with obs.span("pipeline.offline_trace"):
                graph = self.engine.build_graph(view.visible_events(got_at))
                tracer = ProvenanceTracer(graph)
                violating_event_ids: List[int] = []
                for violation in result.violations:
                    for hop in violation.path:
                        entry = (
                            snapshot.entry(hop, violation.prefix)
                            if violation.prefix is not None
                            else None
                        )
                        if entry is not None and entry.source_event_id in graph:
                            violating_event_ids.append(entry.source_event_id)
                if not violating_event_ids:
                    return result.violations, None
                provenance = tracer.trace_many(violating_event_ids)
            with obs.span("pipeline.offline_repair"):
                repair = self.repair_engine.repair(provenance, settle=settle)
            return result.violations, repair

    # -- reporting -----------------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"pipeline[{self.mode.value}]: {self.updates_checked} updates "
            f"checked, {self.updates_blocked} blocked, "
            f"{len(self.incidents)} incident(s), "
            f"{len(self._reverted_change_ids)} change(s) reverted"
        ]
        for incident in self.incidents:
            lines.append(incident.describe())
        return "\n".join(lines)
