"""The paper's primary contribution, integrated (Fig. 3).

:class:`~repro.core.pipeline.IntegratedControlPlane` interposes on
every router's FIB boundary ("CAPTURE CONTROL PLANE I/OS" -> "DATA
PLANE VERIFIER" -> "TRACE PROVENANCE" -> "BLOCK I/OS" in Fig. 3):
updates that would introduce a policy violation are caught *before*
they are installed, their provenance is traced through the
incrementally-maintained HBG, and — in repair mode — the root-cause
configuration change is automatically reverted.
"""

from repro.core.pipeline import (
    IntegratedControlPlane,
    PipelineIncident,
    PipelineMode,
)

__all__ = ["IntegratedControlPlane", "PipelineIncident", "PipelineMode"]
