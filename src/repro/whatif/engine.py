"""The what-if engine: fork, inject, converge, compare.

The fork rebuilds the network from its *current configuration and
link state* — exactly what CrystalNet does with production configs —
and re-converges it from scratch.  Under deterministic control-plane
execution (§8's precondition, satisfied by our seeded simulator and
optionally the Add-Path decision profile), the forked copy reaches
the same forwarding state as the live network, making the subsequent
hypothetical injection a faithful prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.net.addr import Prefix
from repro.net.config import ConfigChange, RouterConfig
from repro.net.topology import Interface, Link, Router, Topology
from repro.protocols.network import Network
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.policy import Policy, Violation
from repro.verify.verifier import DataPlaneVerifier

#: A hypothetical event applied to the forked copy.
Injection = Callable[[Network], None]


def config_change(change: ConfigChange) -> Injection:
    """Inject a configuration change.

    Note: applying the change records its ``previous`` value against
    the *forked* config; create a fresh :class:`ConfigChange` when you
    later apply the same edit to the live network.
    """
    return lambda net: net.apply_config_change(change)


def link_failure(router_a: str, router_b: str) -> Injection:
    return lambda net: net.fail_link(router_a, router_b)


def link_recovery(router_a: str, router_b: str) -> Injection:
    return lambda net: net.restore_link(router_a, router_b)


def route_withdrawal(router: str, prefix: Prefix) -> Injection:
    return lambda net: net.withdraw_prefix(router, prefix)


def route_announcement(router: str, prefix: Prefix) -> Injection:
    return lambda net: net.announce_prefix(router, prefix)


@dataclass
class ForwardingDelta:
    """One (router, prefix) whose forwarding changed in the fork.

    ``before_present``/``after_present`` disambiguate a local-delivery
    entry (present, no next-hop router) from an absent entry.
    """

    router: str
    prefix: Prefix
    before_next_hop: Optional[str]
    after_next_hop: Optional[str]
    before_present: bool = True
    after_present: bool = True

    def _side(self, next_hop: Optional[str], present: bool) -> str:
        if not present:
            return "(no entry)"
        return next_hop or "(local)"

    def __str__(self) -> str:
        return (
            f"{self.router} {self.prefix}: "
            f"{self._side(self.before_next_hop, self.before_present)} -> "
            f"{self._side(self.after_next_hop, self.after_present)}"
        )


@dataclass
class WhatIfResult:
    """Outcome of one what-if question."""

    baseline: DataPlaneSnapshot
    hypothetical: DataPlaneSnapshot
    violations: List[Violation]
    deltas: List[ForwardingDelta]
    converge_seconds: float
    fork_matches_live: bool

    @property
    def safe(self) -> bool:
        """No policy violations in the hypothetical state."""
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"what-if result: {'SAFE' if self.safe else 'VIOLATES POLICY'} "
            f"({len(self.deltas)} forwarding changes, "
            f"converged in {self.converge_seconds:.2f}s)"
        ]
        for violation in self.violations:
            lines.append(f"  {violation}")
        for delta in self.deltas:
            lines.append(f"  {delta}")
        return "\n".join(lines)


class WhatIfEngine:
    """Forked-emulation what-if analysis for a live network."""

    def __init__(
        self,
        network: Network,
        policies: Sequence[Policy],
        settle: float = 60.0,
    ):
        self.network = network
        self.policies = list(policies)
        self.settle = settle

    # -- forking ----------------------------------------------------------

    def _fork_topology(self) -> Topology:
        live = self.network.topology
        fork = Topology(f"{live.name}-whatif")
        for router in live:
            fork.add_router(
                Router(
                    name=router.name,
                    asn=router.asn,
                    loopback=router.loopback,
                    vendor=router.vendor,
                    external=router.external,
                )
            )
        for link in live.links.values():
            a = Interface(link.a.router, link.a.name, link.a.address, link.a.prefix)
            b = Interface(link.b.router, link.b.name, link.b.address, link.b.prefix)
            fork.add_link(Link(a, b, delay=link.delay, up=link.up))
        return fork

    def _fork_configs(self) -> List[RouterConfig]:
        return [
            self.network.configs.get(name).snapshot()
            for name in self.network.configs.routers()
        ]

    def fork(self, seed: Optional[int] = None) -> Network:
        """An emulated copy of the live network, converged.

        The copy starts from the live network's *current*
        configuration and link state and re-runs the control plane to
        convergence (originated prefixes are part of the configs, so
        they re-announce during startup).
        """
        fork = Network(
            self._fork_topology(),
            self._fork_configs(),
            seed=seed if seed is not None else self.network.sim.rng.randint(0, 2**31),
            delays=self.network.delays,
            deterministic_bgp=self.network.deterministic_bgp,
        )
        fork.start()
        fork.run(self.settle)
        return fork

    def _forwarding_matches(self, fork: Network) -> bool:
        """Does the fork's data plane match the live network's?"""
        live_state = DataPlaneSnapshot.from_live_network(self.network)
        fork_state = DataPlaneSnapshot.from_live_network(fork)
        for router in self.network.topology.internal_routers():
            live_entries = {
                e.prefix: e.next_hop_router for e in live_state.entries_of(router)
            }
            fork_entries = {
                e.prefix: e.next_hop_router for e in fork_state.entries_of(router)
            }
            if live_entries != fork_entries:
                return False
        return True

    # -- asking questions ----------------------------------------------------

    def ask(
        self,
        injections: Sequence[Injection],
        seed: Optional[int] = None,
    ) -> WhatIfResult:
        """Fork, inject the hypothetical events, converge, and judge."""
        fork = self.fork(seed=seed)
        matches = self._forwarding_matches(fork)
        baseline = DataPlaneSnapshot.from_live_network(fork)
        started = fork.sim.now
        for injection in injections:
            injection(fork)
        fork.run(self.settle)
        converge_seconds = fork.sim.now - started
        hypothetical = DataPlaneSnapshot.from_live_network(fork)
        verifier = DataPlaneVerifier(fork.topology, self.policies)
        violations = verifier.verify(hypothetical).violations
        deltas = self._diff(baseline, hypothetical)
        return WhatIfResult(
            baseline=baseline,
            hypothetical=hypothetical,
            violations=violations,
            deltas=deltas,
            converge_seconds=converge_seconds,
            fork_matches_live=matches,
        )

    def _diff(
        self, before: DataPlaneSnapshot, after: DataPlaneSnapshot
    ) -> List[ForwardingDelta]:
        deltas: List[ForwardingDelta] = []
        routers = sorted(set(before.routers()) | set(after.routers()))
        for router in routers:
            prefixes = {e.prefix for e in before.entries_of(router)}
            prefixes |= {e.prefix for e in after.entries_of(router)}
            for prefix in sorted(prefixes):
                old = before.entry(router, prefix)
                new = after.entry(router, prefix)
                old_nh = old.next_hop_router if old else None
                new_nh = new.next_hop_router if new else None
                if old_nh != new_nh or (old is None) != (new is None):
                    deltas.append(
                        ForwardingDelta(
                            router=router,
                            prefix=prefix,
                            before_next_hop=old_nh,
                            after_next_hop=new_nh,
                            before_present=old is not None,
                            after_present=new is not None,
                        )
                    )
        return deltas

    def is_change_safe(
        self, change: ConfigChange, seed: Optional[int] = None
    ) -> WhatIfResult:
        """Convenience: would this config change violate any policy?"""
        return self.ask([config_change(change)], seed=seed)

    def survives_link_failure(
        self, router_a: str, router_b: str, seed: Optional[int] = None
    ) -> WhatIfResult:
        """Convenience: what happens if this link dies?"""
        return self.ask([link_failure(router_a, router_b)], seed=seed)
