"""What-if analysis by forked emulation (§8).

    "Another limitation is that our approach cannot directly answer
    what-if questions, like control plane verifiers can ...  One
    approach in this direction is to leverage ideas from CrystalNet
    [27] that runs an emulated copy of the network and can inject
    faults."

:class:`~repro.whatif.engine.WhatIfEngine` implements exactly that
idea on the simulator substrate: fork an emulated copy of the live
network (same topology, same current configuration, same protocol
state after re-convergence), inject hypothetical events — config
changes, link failures, route withdrawals — and report the resulting
data plane and policy verdicts without touching the live network.
"""

from repro.whatif.engine import WhatIfEngine, WhatIfResult

__all__ = ["WhatIfEngine", "WhatIfResult"]
