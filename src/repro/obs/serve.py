"""The live observability endpoint behind ``repro serve-metrics``.

Everything so far renders observability *after* a run; this module
serves it *during* one.  :class:`MetricsServer` wraps a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon thread — the
repo's first long-lived process, and deliberately the skeleton the
ROADMAP's future ``repro serve`` streaming daemon plugs into — with
four routes:

* ``GET /metrics`` — the Prometheus text exposition of the current
  registry (the PR-1 exporter, now scrapeable);
* ``GET /healthz`` — the :class:`~repro.obs.health.HealthEngine`'s
  verdict as JSON, status 200 when healthy and 503 when any rule is
  failing (the shape load-balancers and Kubernetes probes expect);
* ``GET /resources.json`` — the resource ledger's per-component
  bytes and high-watermarks;
* ``GET /verdicts.json`` — the verdict ledger's bounded tail
  (schema ``repro-verdicts/v1``; 404 when the ledger is off);
* ``GET /profile.speedscope.json`` — the sampling profiler's current
  capture (404 when profiling is off).

A single lock serialises renders against the owner's ``tick()``
(ledger refresh + health evaluation), so a scrape never reads a
half-updated gauge set.  The server binds ``127.0.0.1`` by default
and ``port=0`` asks the OS for a free port (what the tests use);
:attr:`MetricsServer.port` reports the resolved one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple, Type

from repro import obs
from repro.obs.export import render_prometheus
from repro.obs.health import HealthEngine


class MetricsServer:
    """Serve /metrics, /healthz, /resources.json, /profile (see above)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: Optional[HealthEngine] = None,
    ) -> None:
        self.engine = engine if engine is not None else HealthEngine()
        #: Serialises request rendering against :meth:`tick`.
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve on a daemon thread; returns once the thread is up."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- the evaluation tick ----------------------------------------------

    def tick(self) -> bool:
        """One health tick (ledger refresh + rule evaluation).

        The owner's loop calls this on its own schedule; requests
        between ticks see the last verdict.  Returns the overall
        health so callers can log transitions.
        """
        with self._lock:
            verdict = self.engine.evaluate()
        return verdict.ok

    # -- request handling --------------------------------------------------

    def _render(self, path: str) -> Tuple[int, str, bytes]:
        """(status, content-type, body) for one GET, under the lock."""
        with self._lock:
            if path in ("/metrics", "/metrics/"):
                registry = obs.get_registry()
                tracer = obs.get_tracer()
                body = render_prometheus(registry, tracer)
                return (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    body.encode("utf-8"),
                )
            if path in ("/healthz", "/healthz/"):
                verdict = self.engine.last
                if verdict is None:
                    # First probe before the owner's first tick:
                    # evaluate inline so /healthz never 500s.
                    verdict = self.engine.evaluate()
                status = 200 if verdict.ok else 503
                payload = json.dumps(
                    verdict.to_dict(), indent=2, sort_keys=True
                )
                return (status, "application/json", payload.encode("utf-8"))
            if path in ("/resources.json", "/resources.json/"):
                document = obs.get_ledger().document()
                payload = json.dumps(document, indent=2, sort_keys=True)
                return (200, "application/json", payload.encode("utf-8"))
            if path in ("/verdicts.json", "/verdicts.json/"):
                verdicts = obs.get_verdicts()
                if not verdicts.enabled:
                    return (
                        404,
                        "application/json",
                        b'{"error": "verdict ledger is not enabled"}',
                    )
                payload = json.dumps(
                    verdicts.document(), indent=2, sort_keys=True
                )
                return (200, "application/json", payload.encode("utf-8"))
            if path in (
                "/profile.speedscope.json",
                "/profile.speedscope.json/",
            ):
                profiler = obs.get_profiler()
                if not profiler.enabled:
                    return (
                        404,
                        "application/json",
                        b'{"error": "profiling is not enabled"}',
                    )
                payload = json.dumps(profiler.speedscope(), sort_keys=True)
                return (200, "application/json", payload.encode("utf-8"))
            return (
                404,
                "application/json",
                b'{"error": "unknown path", "paths": '
                b'["/metrics", "/healthz", "/resources.json", '
                b'"/verdicts.json", "/profile.speedscope.json"]}',
            )

    def _make_handler(self) -> Type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Stop BaseHTTPRequestHandler from logging every request
            # to stderr (the CLI owns the terminal).
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                path = self.path.split("?", 1)[0]
                status, content_type, body = server._render(path)
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        return Handler
