"""Exporters: turn a registry + tracer into human or machine output.

Three formats, one source of truth (:func:`registry_to_dict`):

* ``table`` — aligned text tables, one per section, for terminals;
* ``json`` / ``jsonl`` — the machine-readable document used by
  ``repro stats``, ``BENCH_*.json`` trajectories, and CI key checks;
* ``prom`` — Prometheus text exposition format (counters, gauges,
  and histogram count/sum plus quantile gauges), so a scrape target
  can be bolted on without changing instrumentation.

The JSON document groups metrics into *sections* by leading name
component (``capture``, ``inference``, ``snapshot``, ``verify``,
``repair``, ``sim``, ``span`` ...), which is what the acceptance
checks and the CI smoke test key off.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    format_metric_name,
    section_of,
)
from repro.obs.tracing import Tracer

SCHEMA = "repro-obs/v1"


# -- generic table rendering (also reused by the CLI and benchmarks) --------


def table_lines(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[str]:
    """Format an aligned text table as a list of lines."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return lines


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    return "\n".join(table_lines(headers, rows))


# -- the canonical document --------------------------------------------------


def _num(value):
    """JSON-friendly numbers: ints stay ints, floats get rounded."""
    if value is None:
        return None
    if isinstance(value, int):
        return value
    if float(value).is_integer():
        return int(value)
    return round(float(value), 9)


def registry_to_dict(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> dict:
    """The canonical metrics document (see module docstring)."""
    sections: Dict[str, dict] = {}

    def bucket(name: str, kind: str) -> dict:
        section = sections.setdefault(
            section_of(name), {"counters": {}, "gauges": {}, "histograms": {}}
        )
        return section[kind]

    for counter in registry.counters():
        key = format_metric_name(counter.name, counter.labels)
        bucket(counter.name, "counters")[key] = _num(counter.value)
    for gauge in registry.gauges():
        key = format_metric_name(gauge.name, gauge.labels)
        bucket(gauge.name, "gauges")[key] = _num(gauge.value)
    for histogram in registry.histograms():
        key = format_metric_name(histogram.name, histogram.labels)
        summary = {k: _num(v) for k, v in histogram.summary().items()}
        bucket(histogram.name, "histograms")[key] = summary

    document = {"schema": SCHEMA, "sections": sections}
    if tracer is not None and tracer.enabled:
        document["spans"] = {
            "summary": [
                {
                    key: _num(value) if isinstance(value, float) else value
                    for key, value in entry.items()
                }
                for entry in tracer.summarise()
            ],
            "recorded": len(tracer.records),
            "dropped": tracer.dropped,
        }
    return document


def missing_sections(document: dict, required: Sequence[str]) -> List[str]:
    """Required sections absent from ``document`` or all-zero.

    A section counts as present only if it exists *and* at least one
    of its counters is nonzero or one histogram has observations —
    the guard CI uses against silently-dead instrumentation.
    """
    missing = []
    sections = document.get("sections", {})
    for name in required:
        section = sections.get(name)
        if section is None:
            missing.append(name)
            continue
        live_counter = any(
            value for value in section.get("counters", {}).values()
        )
        live_histogram = any(
            summary.get("count")
            for summary in section.get("histograms", {}).values()
        )
        if not (live_counter or live_histogram):
            missing.append(name)
    return missing


# -- renderers ---------------------------------------------------------------


def render_table(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """Human-readable report: per-section tables plus span summary."""
    document = registry_to_dict(registry, tracer)
    blocks: List[str] = []
    for name in sorted(document["sections"]):
        section = document["sections"][name]
        rows: List[Sequence[object]] = []
        for key, value in section["counters"].items():
            rows.append((key, "counter", value, "", "", ""))
        for key, value in section["gauges"].items():
            rows.append((key, "gauge", _fmt(value), "", "", ""))
        for key, summary in section["histograms"].items():
            rows.append(
                (
                    key,
                    "histogram",
                    summary.get("count"),
                    _fmt(summary.get("mean")),
                    _fmt(summary.get("p95")),
                    _fmt(summary.get("max")),
                )
            )
        blocks.append(
            f"[{name}]\n"
            + format_table(
                ("metric", "type", "count", "mean", "p95", "max"), rows
            )
        )
    if tracer is not None and tracer.enabled and tracer.records:
        span_rows = [
            (
                entry["name"],
                entry["calls"],
                entry["errors"],
                _fmt(entry["total_seconds"]),
                _fmt(entry["mean_seconds"]),
                _fmt(entry["max_seconds"]),
            )
            for entry in tracer.summarise()
        ]
        blocks.append(
            "[spans]\n"
            + format_table(
                ("span", "calls", "errors", "total_s", "mean_s", "max_s"),
                span_rows,
            )
        )
    return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    return f"{value:.6f}"


def render_json(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    meta: Optional[dict] = None,
    indent: int = 2,
) -> str:
    document = registry_to_dict(registry, tracer)
    if meta:
        document = {"meta": meta, **document}
    return json.dumps(document, indent=indent, sort_keys=True)


def render_jsonl(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """One JSON object per metric per line (log-shipper friendly)."""
    lines = []
    for counter in registry.counters():
        lines.append(
            json.dumps(
                {
                    "kind": "counter",
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "value": _num(counter.value),
                },
                sort_keys=True,
            )
        )
    for gauge in registry.gauges():
        lines.append(
            json.dumps(
                {
                    "kind": "gauge",
                    "name": gauge.name,
                    "labels": dict(gauge.labels),
                    "value": _num(gauge.value),
                },
                sort_keys=True,
            )
        )
    for histogram in registry.histograms():
        lines.append(
            json.dumps(
                {
                    "kind": "histogram",
                    "name": histogram.name,
                    "labels": dict(histogram.labels),
                    "summary": {
                        k: _num(v) for k, v in histogram.summary().items()
                    },
                },
                sort_keys=True,
            )
        )
    if tracer is not None and tracer.enabled:
        for record in tracer.records:
            lines.append(
                json.dumps(
                    {"kind": "span", **record.to_record()}, sort_keys=True
                )
            )
    return "\n".join(lines)


#: The fixed ``le`` ladder for cumulative ``_bucket`` series.  Spans
#: sub-millisecond pipeline latencies through the count-valued
#: histograms (probe counts, atom fan-outs); everything beyond the
#: last bound lands in ``+Inf``.  A fixed ladder keeps two runs of
#: the same scenario byte-identical and lets PromQL aggregate across
#: processes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    1000.0,
    10000.0,
)


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Inside double quotes, backslash, double-quote, and line-feed must
    be written ``\\\\``, ``\\"``, and ``\\n`` — a router named
    ``edge"1`` or a detail containing a newline otherwise yields
    unparseable exposition text.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels
    )
    return "{" + inner + "}"


def render_prometheus(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """Prometheus text exposition format (v0.0.4)."""
    lines: List[str] = []
    typed: set = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        name = _prom_name(counter.name)
        declare(name, "counter")
        lines.append(
            f"{name}{_prom_labels(counter.labels)} {counter.value:g}"
        )
    for gauge in registry.gauges():
        name = _prom_name(gauge.name)
        declare(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {gauge.value:g}")
    for histogram in registry.histograms():
        name = _prom_name(histogram.name)
        declare(name, "histogram")
        labels = histogram.labels
        for quantile, value in (
            ("0.5", histogram.percentile(50)),
            ("0.95", histogram.percentile(95)),
            ("0.99", histogram.percentile(99)),
        ):
            if value is None:
                continue
            q_labels = labels + (("quantile", quantile),)
            lines.append(f"{name}{_prom_labels(q_labels)} {value:g}")
        for bound, cumulative in zip(
            DEFAULT_BUCKETS, histogram.bucket_counts(DEFAULT_BUCKETS)
        ):
            b_labels = labels + (("le", f"{bound:g}"),)
            lines.append(
                f"{name}_bucket{_prom_labels(b_labels)} {cumulative}"
            )
        inf_labels = labels + (("le", "+Inf"),)
        lines.append(
            f"{name}_bucket{_prom_labels(inf_labels)} {histogram.count}"
        )
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {histogram.sum:g}"
        )
        lines.append(
            f"{name}_count{_prom_labels(labels)} {histogram.count}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


# -- exposition parsing (round-trip tests, CI smoke validation) --------------

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class ExpositionError(ValueError):
    """Raised by :func:`parse_exposition` on malformed input."""


def _parse_label_block(block: str, line_no: int) -> Dict[str, str]:
    """Parse ``k="v",k2="v2"`` with spec escapes, or raise."""
    labels: Dict[str, str] = {}
    i = 0
    length = len(block)
    while i < length:
        eq = block.find("=", i)
        if eq < 0:
            raise ExpositionError(f"line {line_no}: missing '=' in labels")
        name = block[i:eq].strip()
        if not _LABEL_NAME_RE.match(name):
            raise ExpositionError(
                f"line {line_no}: bad label name {name!r}"
            )
        if eq + 1 >= length or block[eq + 1] != '"':
            raise ExpositionError(
                f"line {line_no}: label value must be double-quoted"
            )
        i = eq + 2
        chars: List[str] = []
        while True:
            if i >= length:
                raise ExpositionError(
                    f"line {line_no}: unterminated label value"
                )
            ch = block[i]
            if ch == "\\":
                if i + 1 >= length:
                    raise ExpositionError(
                        f"line {line_no}: dangling escape in label value"
                    )
                nxt = block[i + 1]
                if nxt == "n":
                    chars.append("\n")
                elif nxt in ('"', "\\"):
                    chars.append(nxt)
                else:
                    raise ExpositionError(
                        f"line {line_no}: bad escape \\{nxt} in label value"
                    )
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            chars.append(ch)
            i += 1
        labels[name] = "".join(chars)
        if i < length:
            if block[i] != ",":
                raise ExpositionError(
                    f"line {line_no}: expected ',' between labels"
                )
            i += 1
    return labels


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text exposition into ``{types, samples}``.

    ``types`` maps metric name → declared type; ``samples`` is a list
    of ``(name, labels_dict, value)`` tuples in document order.
    Raises :class:`ExpositionError` on any malformed line — the
    strictness is the point (this backs the CI format check and the
    label-escaping round-trip test).
    """
    types: Dict[str, str] = {}
    samples: List[tuple] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ExpositionError(
                        f"line {line_no}: malformed TYPE line"
                    )
                _hash, _type, name, kind = parts
                if not _METRIC_NAME_RE.match(name):
                    raise ExpositionError(
                        f"line {line_no}: bad metric name {name!r}"
                    )
                if kind not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ExpositionError(
                        f"line {line_no}: bad metric type {kind!r}"
                    )
                types[name] = kind
            continue  # HELP and free comments pass through
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ExpositionError(
                    f"line {line_no}: unbalanced braces"
                )
            name = line[:brace]
            labels = _parse_label_block(line[brace + 1 : close], line_no)
            rest = line[close + 1 :].strip()
        else:
            fields = line.split(None, 1)
            if len(fields) != 2:
                raise ExpositionError(
                    f"line {line_no}: expected 'name value'"
                )
            name, rest = fields
            labels = {}
        if not _METRIC_NAME_RE.match(name):
            raise ExpositionError(
                f"line {line_no}: bad metric name {name!r}"
            )
        value_field = rest.split()[0] if rest else ""
        try:
            value = float(value_field)
        except ValueError as exc:
            raise ExpositionError(
                f"line {line_no}: bad sample value {value_field!r}"
            ) from exc
        samples.append((name, labels, value))
    return {"types": types, "samples": samples}


def validate_exposition(text: str) -> List[str]:
    """Errors in ``text`` as strings; empty list means valid."""
    try:
        parsed = parse_exposition(text)
    except ExpositionError as exc:
        return [str(exc)]
    errors: List[str] = []
    if not parsed["samples"]:
        errors.append("no samples in exposition")
    return errors


#: Format name -> renderer(registry, tracer) for the CLI.
RENDERERS: Dict[str, Callable] = {
    "table": render_table,
    "json": render_json,
    "jsonl": render_jsonl,
    "prom": render_prometheus,
}
