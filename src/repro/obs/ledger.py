"""The verdict ledger: an append-only record of every verification verdict.

The paper's integration argument is that verification runs *inside*
the control plane, continuously — which makes the sequence of
verdicts itself operational data.  "When did this prefix start
failing?  What event introduced it?  When did it recover, and was the
recovery a repair or convergence?" are questions about the *verdict
stream*, and the metrics registry (aggregates) and flight recorder
(bounded ring) both forget it.  This module keeps it:

* :class:`VerdictRecord` — one verdict: a §5/§4 snapshot verification
  (``kind="snapshot"``), one :meth:`IncrementalVerifier.apply` delta
  verdict (``kind="incremental"``), or one §6 rollback
  (``kind="rollback"``), carrying HBG event-id provenance ``refs``
  and the per-router watermark ``frontier`` at verdict time (when a
  :class:`~repro.obs.continuous.WatermarkTracker` is attached);
* :class:`VerdictLedger` — bounded in-memory tail (for
  ``/verdicts.json`` and ``repro watch``) plus JSONL persistence
  with **bounded rotation**: the current segment is republished
  atomically (:func:`repro.obs.atomicio.atomic_write_text`) every
  ``flush_every`` appends, and rotated to ``<path>.1`` once it holds
  ``rotate_records`` records, so a long-lived process never grows an
  unbounded artifact and a killed process never leaves a truncated
  one.

Design constraints mirror the flight recorder and resource ledger:

* **Off by default.**  The process-wide singleton is a shared
  :class:`NullVerdictLedger`; verdict sites (catalogued in
  ``VERDICT_SITES``, ``repro/lint/rules/obs_rules.py``) pay one
  ``verdicts.enabled`` attribute check when disabled — the
  tripping-ledger test proves the disabled path never reaches
  :meth:`record`.
* **Thread-safe appends.**  ``repro serve-metrics`` scrapes
  ``/verdicts.json`` from server threads while the owner's replay
  loop appends; one lock serialises both.
* **Deterministic content.**  Records carry simulation/arrival
  timestamps, never wall clocks, so two runs of the same scenario
  produce byte-identical ledgers.

Schema (``repro-verdicts/v1``): one JSON object per line with keys
``seq, kind, at, ok, prefix, router, event_id, event_time, detail,
violations, missing_routers, refs, frontier`` (see
:meth:`VerdictRecord.to_dict`).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.atomicio import atomic_write_text
from repro.obs.resources import combined_sizeof

SCHEMA = "repro-verdicts/v1"

#: The verdict kinds a record may carry (one per catalogued site).
KINDS: Tuple[str, ...] = ("snapshot", "incremental", "rollback")


@dataclass(frozen=True)
class VerdictRecord:
    """One verification verdict, with provenance and frontier context."""

    seq: int
    #: ``snapshot`` | ``incremental`` | ``rollback``.
    kind: str
    #: Verifier-visible time of the verdict (snapshot ``taken_at``,
    #: incremental arrival clock, or rollback sim time).
    at: float
    ok: bool
    #: The judged prefix (incremental verdicts); None for whole-plane.
    prefix: Optional[str] = None
    router: Optional[str] = None
    #: HBG event id of the triggering event (FIB delta / root-cause
    #: target) — the primary provenance ref.
    event_id: Optional[int] = None
    #: Event time (capture timestamp) of the triggering event.
    event_time: Optional[float] = None
    detail: str = ""
    #: Violation count at this verdict (0 when ``ok``).
    violations: int = 0
    missing_routers: Tuple[str, ...] = ()
    #: HBG event ids this verdict derives from (snapshot entries'
    #: ``source_event_id`` for violated flows, the delta itself, the
    #: provenance target) — the refs a §6 walk starts from.
    refs: Tuple[int, ...] = ()
    #: Per-router event-time watermarks at verdict time (empty when no
    #: WatermarkTracker is attached).
    frontier: Dict[str, float] = field(default_factory=dict)
    #: Free-form extras (per-violation detail dicts, rollback counts).
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "at": self.at,
            "ok": self.ok,
            "prefix": self.prefix,
            "router": self.router,
            "event_id": self.event_id,
            "event_time": self.event_time,
            "detail": self.detail,
            "violations": self.violations,
            "missing_routers": list(self.missing_routers),
            "refs": list(self.refs),
            "frontier": dict(sorted(self.frontier.items())),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class VerdictLedger:
    """Append-only verdict log with a bounded tail and rotation."""

    enabled = True

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = 4096,
        rotate_records: int = 100_000,
        flush_every: int = 256,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if rotate_records < 1:
            raise ValueError("rotate_records must be >= 1")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.capacity = capacity
        self.rotate_records = rotate_records
        self.flush_every = flush_every
        self._lock = threading.Lock()
        #: Bounded in-memory tail (drop-oldest) for /verdicts.json.
        self._tail: List[VerdictRecord] = []
        #: Serialised lines of the current on-disk segment.
        self._segment: List[str] = []
        self._unflushed = 0
        self.appended_total = 0
        self.dropped_records = 0
        self.rotations = 0
        self.failing_total = 0
        self._listeners: List[Callable] = []
        self._frontier_source: Optional[Callable] = None
        # Self-registration with the resource ledger, mirroring
        # FlightRecorder: the verdict tail is long-lived state the
        # byte-ceiling health rule must see.
        from repro import obs

        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("obs.verdicts", self)

    # -- wiring -----------------------------------------------------------

    def subscribe(self, listener: Callable) -> None:
        """``listener(record)`` runs after every append (SLI monitor)."""
        self._listeners.append(listener)

    def attach_watermarks(self, tracker: Any) -> None:
        """Stamp each record's ``frontier`` from ``tracker``.

        ``tracker`` must expose ``frontier_by_router() -> Dict[str,
        float]`` (:class:`~repro.obs.continuous.WatermarkTracker`
        does).
        """
        self._frontier_source = tracker.frontier_by_router

    # -- the append path --------------------------------------------------

    def record(
        self,
        kind: str,
        at: float,
        ok: bool,
        prefix: Optional[str] = None,
        router: Optional[str] = None,
        event_id: Optional[int] = None,
        event_time: Optional[float] = None,
        detail: str = "",
        violations: int = 0,
        missing_routers: Tuple[str, ...] = (),
        refs: Tuple[int, ...] = (),
        **attrs: Any,
    ) -> VerdictRecord:
        """Append one verdict; returns the sealed record."""
        if kind not in KINDS:
            raise ValueError(f"unknown verdict kind {kind!r}")
        frontier: Dict[str, float] = {}
        if self._frontier_source is not None:
            frontier = dict(self._frontier_source())
        with self._lock:
            self.appended_total += 1
            record = VerdictRecord(
                seq=self.appended_total,
                kind=kind,
                at=at,
                ok=ok,
                prefix=prefix,
                router=router,
                event_id=event_id,
                event_time=event_time,
                detail=detail,
                violations=violations,
                missing_routers=tuple(missing_routers),
                refs=tuple(refs),
                frontier=frontier,
                attrs=dict(attrs),
            )
            self._tail.append(record)
            if len(self._tail) > self.capacity:
                del self._tail[0]
                self.dropped_records += 1
            if not ok:
                self.failing_total += 1
            if self.path is not None:
                self._segment.append(record.to_json())
                self._unflushed += 1
                if self._unflushed >= self.flush_every:
                    self._flush_locked()
        for listener in self._listeners:
            listener(record)
        return record

    # -- persistence ------------------------------------------------------

    def _flush_locked(self) -> None:
        if self.path is None:
            return
        if len(self._segment) > self.rotate_records:
            # Seal the overfull head as <path>.1 (replacing any older
            # sealed segment — the bound is the point) and keep only
            # the newest records in the live segment.
            sealed = self._segment[: -self.rotate_records]
            self._segment = self._segment[-self.rotate_records :]
            atomic_write_text(self.path + ".1", "\n".join(sealed) + "\n")
            self.rotations += 1
        text = "\n".join(self._segment)
        atomic_write_text(self.path, text + "\n" if text else "")
        self._unflushed = 0

    def flush(self) -> None:
        """Publish the current segment to disk (atomic replace)."""
        with self._lock:
            if self.path is not None and (
                self._unflushed or not self._segment
            ):
                self._flush_locked()

    # -- read side --------------------------------------------------------

    def records(self) -> List[VerdictRecord]:
        """A snapshot copy of the in-memory tail."""
        with self._lock:
            return list(self._tail)

    def last(self) -> Optional[VerdictRecord]:
        with self._lock:
            return self._tail[-1] if self._tail else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._tail)

    def document(self) -> Dict[str, Any]:
        """The ``/verdicts.json`` payload."""
        with self._lock:
            records = [record.to_dict() for record in self._tail]
            return {
                "schema": SCHEMA,
                "records": records,
                "appended_total": self.appended_total,
                "dropped_records": self.dropped_records,
                "failing_total": self.failing_total,
                "rotations": self.rotations,
                "capacity": self.capacity,
                "path": self.path,
            }

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of the tail + segment (resource ledger)."""
        from repro import obs

        return combined_sizeof(
            (self._tail, self._segment),
            sample=None if audit else obs.get_ledger().sample,
        )

    def __repr__(self) -> str:
        return (
            f"VerdictLedger(records={len(self)}, "
            f"appended={self.appended_total}, path={self.path!r})"
        )


class NullVerdictLedger:
    """The default ledger: verdict sites pay one attribute check.

    ``record`` still exists (and no-ops) so a site that forgets the
    ``verdicts.enabled`` guard stays correct, merely slower — the same
    contract as :class:`NullRecorder` and :class:`NullLedger`.
    """

    enabled = False
    path = None
    appended_total = 0

    def subscribe(self, listener: Callable) -> None:
        pass

    def attach_watermarks(self, tracker: Any) -> None:
        pass

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def flush(self) -> None:
        pass

    def records(self) -> List[VerdictRecord]:
        return []

    def last(self) -> Optional[VerdictRecord]:
        return None

    def __len__(self) -> int:
        return 0

    def document(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "records": [],
            "appended_total": 0,
            "dropped_records": 0,
            "failing_total": 0,
            "rotations": 0,
            "capacity": 0,
            "path": None,
        }


NULL_VERDICTS = NullVerdictLedger()
