"""Atomic file publication: temp-file + ``os.replace``.

Several artifacts in this repo are consumed by *other* processes —
``repro stats --output`` feeds the CI ``bench diff`` gate, trace
exports feed Perfetto, and the verdict ledger feeds operators'
tooling.  A plain ``open(path, "w")`` that dies mid-write (OOM kill,
SIGKILL, full disk) leaves a truncated file that the consumer then
parses as corrupt-but-present data, which is strictly worse than no
file at all.

:func:`atomic_write_text` closes that window: the content is written
to a uniquely named sibling temp file in the *same directory* (so the
final rename never crosses a filesystem boundary) and published with
``os.replace``, which POSIX guarantees is atomic.  Readers see either
the complete old content or the complete new content, never a
half-written mix, and a crash at any point leaves the destination
untouched (the temp file is removed on failure).

The ``write`` parameter exists for the fault-injection regression
test: it lets a test substitute a writer that fails partway and then
assert the destination was never disturbed.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Optional


def atomic_write_text(
    path: str,
    text: str,
    encoding: str = "utf-8",
    write: Optional[Callable] = None,
) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    ``write(handle, text)``, when given, replaces the default
    ``handle.write(text)`` — the hook the fault-injecting regression
    test uses to kill the writer mid-stream.  On any failure the temp
    file is removed and ``path`` is left exactly as it was.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding=encoding,
        dir=directory,
        prefix="." + os.path.basename(path) + ".",
        suffix=".tmp",
        delete=False,
    )
    temp_path = handle.name
    try:
        with handle:
            if write is None:
                handle.write(text)
            else:
                write(handle, text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
