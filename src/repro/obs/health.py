"""Declarative health rules evaluated over the metrics registry.

``/healthz`` needs a yes/no, and "yes" has to mean something: this
module turns the observability stream into a verdict.  A
:class:`HealthRule` is a threshold over the registry —

* a **gauge/counter ceiling**: ``resource.bytes_total <= 512MiB``
  (the ledger's grand total must stay bounded);
* a **failure-rate ratio**: ``snapshot.inconsistent_total /
  snapshot.consistency_checks_total <= 0.5`` (§5 snapshots must
  mostly pass their §4.3 consistency check);
* a **latency percentile**: ``inference.build_graph_seconds.p99 <=
  1.0`` (HBG construction must stay real-time, the Delta-net bar).

:class:`HealthEngine` evaluates its rules on a tick: it refreshes the
resource ledger first (so byte ceilings see current data), publishes
``health.*`` metrics, flips the overall verdict that
``repro.obs.serve`` returns from ``/healthz``, and — when the flight
recorder is on — records one :data:`TraceKind.HEALTH` event per tick
plus one per *failing* rule, so a post-mortem can see exactly when a
process went unhealthy and which rule tripped, in causal order with
the pipeline events around it.

Determinism: the tick's ``at`` timestamp is the engine's own tick
counter, not a wall clock, so recorded HEALTH events are byte-stable
for a fixed evaluation schedule.  Rules never *fail* on missing
metrics — an instrument that has not been created yet reports
``value=None`` and passes (a process that has done nothing is
healthy, not broken).

Rules parse from compact specs (the CLI's ``--health-rule``)::

    ledger-bytes: resource.bytes_total <= 536870912
    snapshot-consistency: snapshot.inconsistent_total / snapshot.consistency_checks_total <= 0.5
    inference-p99: inference.build_graph_seconds.p99 <= 1.0
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs

#: Comparison operators a rule may use (value OP threshold == healthy).
OPS: Tuple[str, ...] = ("<=", "<", ">=", ">")

#: Histogram statistics addressable from a rule spec; ``value`` means
#: counter/gauge value (or histogram sum when the name is a histogram).
STATS: Tuple[str, ...] = (
    "value",
    "count",
    "sum",
    "mean",
    "min",
    "max",
    "p50",
    "p95",
    "p99",
)


class HealthRuleError(ValueError):
    """Raised for malformed rules or rule specs."""


@dataclass(frozen=True)
class HealthRule:
    """One declarative threshold over the metrics registry."""

    name: str
    metric: str
    op: str
    threshold: float
    #: Histogram statistic (or ``value`` for counters/gauges).
    stat: str = "value"
    #: Label constraints: instruments must carry every listed pair.
    labels: Tuple[Tuple[str, str], ...] = ()
    #: When set, the rule value is ``sum(metric) / sum(denominator)``.
    denominator: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise HealthRuleError(f"unknown operator {self.op!r}")
        if self.stat not in STATS:
            raise HealthRuleError(f"unknown stat {self.stat!r}")
        if self.denominator is not None and self.stat != "value":
            raise HealthRuleError("ratio rules only support stat='value'")

    def spec(self) -> str:
        """The rule re-rendered as a parseable spec string."""
        labels = ""
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in self.labels)
            labels = f"{{{inner}}}"
        stat = f".{self.stat}" if self.stat != "value" else ""
        expr = f"{self.metric}{labels}{stat}"
        if self.denominator is not None:
            expr = f"{self.metric}{labels} / {self.denominator}"
        # repr() round-trips floats exactly; :g would truncate.
        return f"{self.name}: {expr} {self.op} {self.threshold!r}"


@dataclass(frozen=True)
class RuleResult:
    """The verdict of one rule at one tick."""

    rule: HealthRule
    ok: bool
    value: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.name,
            "spec": self.rule.spec(),
            "ok": self.ok,
            "value": self.value,
        }


def _compare(value: float, op: str, threshold: float) -> bool:
    if op == "<=":
        return value <= threshold
    if op == "<":
        return value < threshold
    if op == ">=":
        return value >= threshold
    return value > threshold


def _labels_match(
    instrument_labels: Sequence[Tuple[str, str]],
    wanted: Sequence[Tuple[str, str]],
) -> bool:
    have = dict(instrument_labels)
    return all(have.get(k) == v for k, v in wanted)


def _sum_scalar(
    registry: Any, metric: str, labels: Sequence[Tuple[str, str]]
) -> Optional[float]:
    """Sum of matching counter/gauge values; None when none exist."""
    total = 0.0
    found = False
    for instrument in list(registry.counters()) + list(registry.gauges()):
        if instrument.name == metric and _labels_match(
            instrument.labels, labels
        ):
            total += instrument.value
            found = True
    return total if found else None


def _histogram_stat(
    registry: Any,
    metric: str,
    labels: Sequence[Tuple[str, str]],
    stat: str,
) -> Optional[float]:
    """Worst-case ``stat`` across matching histograms; None if absent.

    Worst-case (max across label sets) rather than a merged value:
    a p99 ceiling should trip if *any* labelled population breaches
    it, and percentiles do not merge soundly anyway.
    """
    worst: Optional[float] = None
    for histogram in registry.histograms():
        if histogram.name != metric:
            continue
        if not _labels_match(histogram.labels, labels):
            continue
        extracted: Optional[float]
        if stat == "count":
            extracted = float(histogram.count)
        elif stat in ("sum", "value"):
            extracted = float(histogram.sum)
        elif stat == "mean":
            extracted = histogram.mean
        elif stat == "min":
            extracted = histogram.min
        elif stat == "max":
            extracted = histogram.max
        else:  # p50 / p95 / p99
            extracted = histogram.percentile(float(stat[1:]))
        if extracted is None:
            continue
        if worst is None or extracted > worst:
            worst = extracted
    return worst


def evaluate_rule(rule: HealthRule, registry: Any) -> RuleResult:
    """One rule against one registry; missing metrics pass."""
    value: Optional[float]
    if rule.denominator is not None:
        numerator = _sum_scalar(registry, rule.metric, rule.labels)
        denominator = _sum_scalar(registry, rule.denominator, ())
        if numerator is None or denominator is None or denominator == 0:
            value = None
        else:
            value = numerator / denominator
    elif rule.stat == "value":
        value = _sum_scalar(registry, rule.metric, rule.labels)
        if value is None:
            value = _histogram_stat(
                registry, rule.metric, rule.labels, "value"
            )
    else:
        value = _histogram_stat(
            registry, rule.metric, rule.labels, rule.stat
        )
    if value is None:
        return RuleResult(rule=rule, ok=True, value=None)
    return RuleResult(
        rule=rule, ok=_compare(value, rule.op, rule.threshold), value=value
    )


# -- rule spec parsing -------------------------------------------------------

_SPEC_RE = re.compile(
    r"""^\s*
    (?P<name>[A-Za-z0-9_.-]+)\s*:\s*
    (?P<metric>[A-Za-z0-9_.]+)
    (?:\{(?P<labels>[^}]*)\})?
    (?:\.(?P<stat>[A-Za-z0-9]+))?
    \s*
    (?:/\s*(?P<denominator>[A-Za-z0-9_.]+)\s*)?
    (?P<op><=|<|>=|>)\s*
    (?P<threshold>[-+0-9.eE]+)
    \s*$""",
    re.VERBOSE,
)


def parse_rule(spec: str) -> HealthRule:
    """Parse ``name: metric[{k=v}][.stat] [/ metric] OP number``."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise HealthRuleError(f"unparseable health rule: {spec!r}")
    metric = match.group("metric")
    stat = "value"
    explicit_stat = match.group("stat")
    if explicit_stat is not None:
        # ``metric{labels}.p95`` — the suffix sits after the label
        # block, so the metric group cannot have swallowed it.
        if explicit_stat not in STATS:
            raise HealthRuleError(
                f"unknown stat {explicit_stat!r} in {spec!r}"
            )
        stat = explicit_stat
    else:
        head, dot, tail = metric.rpartition(".")
        if dot and tail in STATS and match.group("denominator") is None:
            metric, stat = head, tail
    labels: Tuple[Tuple[str, str], ...] = ()
    raw_labels = match.group("labels")
    if raw_labels:
        pairs: List[Tuple[str, str]] = []
        for part in raw_labels.split(","):
            if "=" not in part:
                raise HealthRuleError(
                    f"bad label constraint {part!r} in {spec!r}"
                )
            key, _eq, val = part.partition("=")
            pairs.append((key.strip(), val.strip().strip('"')))
        labels = tuple(sorted(pairs))
    try:
        threshold = float(match.group("threshold"))
    except ValueError as exc:
        raise HealthRuleError(f"bad threshold in {spec!r}") from exc
    return HealthRule(
        name=match.group("name"),
        metric=metric,
        op=match.group("op"),
        threshold=threshold,
        stat=stat,
        labels=labels,
        denominator=match.group("denominator"),
    )


#: The out-of-the-box rule set ``repro serve-metrics`` ships with.
DEFAULT_RULES: Tuple[HealthRule, ...] = (
    HealthRule(
        name="ledger-bytes",
        metric="resource.bytes_total",
        op="<=",
        threshold=512 * 1024 * 1024,
    ),
    HealthRule(
        name="snapshot-consistency",
        metric="snapshot.inconsistent_total",
        op="<=",
        threshold=0.5,
        denominator="snapshot.consistency_checks_total",
    ),
    HealthRule(
        name="inference-p99",
        metric="inference.build_graph_seconds",
        op="<=",
        threshold=1.0,
        stat="p99",
    ),
    # Continuous-verification SLIs (docs/OBSERVABILITY.md): burn-rate
    # style ceilings on the tail of each histogram.  Missing metrics
    # pass, so batch runs without the continuous monitor are
    # unaffected.
    HealthRule(
        name="sli-detection-latency",
        metric="verify.detection_latency_seconds",
        op="<=",
        threshold=30.0,
        stat="p99",
    ),
    HealthRule(
        name="sli-exposure",
        metric="verify.exposure_seconds",
        op="<=",
        threshold=120.0,
        stat="p99",
    ),
    HealthRule(
        name="sli-verdict-staleness",
        metric="verify.verdict_staleness_seconds",
        op="<=",
        threshold=60.0,
        stat="p99",
    ),
)


@dataclass
class HealthVerdict:
    """The engine's overall state after one tick."""

    tick: int
    ok: bool
    results: List[RuleResult] = field(default_factory=list)

    def failing(self) -> List[RuleResult]:
        return [r for r in self.results if not r.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-health/v1",
            "tick": self.tick,
            "ok": self.ok,
            "rules": [r.to_dict() for r in self.results],
        }


class HealthEngine:
    """Evaluates a rule set on a tick; see module docstring."""

    def __init__(self, rules: Sequence[HealthRule] = DEFAULT_RULES) -> None:
        self.rules: Tuple[HealthRule, ...] = tuple(rules)
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise HealthRuleError(f"duplicate rule names in {names}")
        self._tick = 0
        self._last: Optional[HealthVerdict] = None

    @property
    def tick(self) -> int:
        return self._tick

    @property
    def last(self) -> Optional[HealthVerdict]:
        return self._last

    def healthy(self) -> bool:
        """Overall verdict of the most recent tick (healthy-until-ticked)."""
        return self._last.ok if self._last is not None else True

    def evaluate(
        self, registry: Any = None, ledger: Any = None
    ) -> HealthVerdict:
        """One tick: refresh the ledger, judge every rule, emit obs.

        Ledger refresh happens first so ``resource.bytes`` ceilings
        judge current occupancy, not the previous tick's.
        """
        if registry is None:
            registry = obs.get_registry()
        if ledger is None:
            ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.refresh(registry)
        self._tick += 1
        results = [evaluate_rule(rule, registry) for rule in self.rules]
        verdict = HealthVerdict(
            tick=self._tick,
            ok=all(r.ok for r in results),
            results=results,
        )
        self._last = verdict
        if registry.enabled:
            registry.counter("health.ticks_total").inc()
            registry.gauge("health.ok").set(1.0 if verdict.ok else 0.0)
            for result in results:
                registry.gauge(
                    "health.rule_ok", rule=result.rule.name
                ).set(1.0 if result.ok else 0.0)
                if not result.ok:
                    registry.counter(
                        "health.rule_failures_total", rule=result.rule.name
                    ).inc()
        recorder = obs.get_recorder()
        if recorder.enabled:
            # ``at`` is the deterministic tick counter: health ticks
            # have no simulation timestamp, and a wall clock would
            # break byte-identical traces.
            recorder.record(
                obs.TraceKind.HEALTH,
                at=float(self._tick),
                detail="tick",
                ok=verdict.ok,
                rules=len(results),
                failing=len(verdict.failing()),
            )
            for result in verdict.failing():
                recorder.record(
                    obs.TraceKind.HEALTH,
                    at=float(self._tick),
                    detail=f"rule-failed:{result.rule.name}",
                    rule=result.rule.name,
                    value=result.value,
                    threshold=result.rule.threshold,
                    op=result.rule.op,
                )
        return verdict

    def __repr__(self) -> str:
        return (
            f"HealthEngine(rules={[r.name for r in self.rules]}, "
            f"tick={self._tick}, healthy={self.healthy()})"
        )
