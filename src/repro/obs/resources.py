"""The memory ledger: deterministic byte accounting for long-lived state.

The ROADMAP's next frontier is an always-on streaming service with
*bounded* memory, and a bound nobody can observe is a bound nobody
can trust.  This module gives every long-lived structure in the
pipeline — the happens-before graph, the inference indices, the §5
closure caches, the flight-recorder ring, the fuzz corpus — a way to
**account for its own bytes**:

* each structure implements ``account_bytes(audit: bool = False)``
  returning its resident size in bytes, and registers itself into the
  process-wide :class:`ResourceLedger` under a stable *component*
  name (``hbr.graph``, ``hbr.index``, ``snapshot.closure_cache``,
  ``obs.recorder``, ``testkit.corpus`` — see
  :data:`KNOWN_COMPONENTS`);
* :meth:`ResourceLedger.refresh` polls every live registration,
  publishes ``resource.bytes{component=}`` gauges (plus per-component
  high-watermarks and a grand total) into the metrics registry, and
  feeds the ``/resources.json`` endpoint of ``repro serve-metrics``;
* :meth:`ResourceLedger.audit` re-measures every component with the
  exact (unsampled) ``sys.getsizeof`` walk, cross-checking the fast
  estimates — the acceptance bar is estimates within 20% of audit.

Design constraints, mirroring :mod:`repro.obs.metrics` and the
flight recorder:

* **Off by default.**  The module-level ledger is a shared
  :class:`NullLedger`; registration sites pay a single attribute
  check (``ledger.enabled``) and nothing else.  The ``LEDGER_SITES``
  catalogue in :mod:`repro.lint.rules.obs_rules` pins every
  registration point, and a tripping-ledger test proves the disabled
  path never reaches ``register()``.
* **Weak references only.**  The ledger must never extend an object's
  lifetime: registrations hold ``weakref``\\ s and drop off silently
  when the owner is collected.
* **Deterministic.**  ``sys.getsizeof`` is a pure function of object
  layout and content, and sampling always takes *evenly spaced
  indices* of a container's (insertion-ordered) iteration, so two
  runs of the same seed report byte-identical ledgers.  Sets larger
  than the sample budget are measured exactly rather than sampled,
  because their iteration order may be hash-seed dependent.
"""

from __future__ import annotations

import sys
import types
import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Component names with a catalogued registration site; the lint
#: ``LEDGER_SITES`` table and its drift test keep this in lockstep
#: with the code (see repro/lint/rules/obs_rules.py).
KNOWN_COMPONENTS: Tuple[str, ...] = (
    "hbr.graph",
    "hbr.index",
    "obs.recorder",
    "obs.verdicts",
    "snapshot.closure_cache",
    "testkit.corpus",
)

#: Per-container sampling budget for the fast estimate: containers
#: longer than this are measured at evenly spaced elements and
#: extrapolated.
DEFAULT_SAMPLE = 64

#: Leaf types: counted via ``sys.getsizeof`` alone, never traversed.
_ATOMIC = (int, float, complex, bool, bytes, bytearray, str, type(None))

#: Types counted shallow (their internals are code, not data).
_OPAQUE = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.GeneratorType,
    weakref.ref,
)


def _slot_names(cls: type) -> List[str]:
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__"):
                names.append(name)
    return names


def _mark_seen(obj: Any, seen: set) -> None:
    """Add a skipped element (and its direct children) to the dedup set.

    Skipped elements' bytes are represented by the extrapolation, so a
    later root that shares them must not count them again — the audit
    walk would not.  Marking one level deep covers the common shape of
    cross-root sharing (adjacency maps whose lists hold the same edge
    objects) without recursing into skipped data.
    """
    seen.add(id(obj))
    if isinstance(obj, dict):
        for key, value in obj.items():
            seen.add(id(key))
            seen.add(id(value))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for element in obj:
            seen.add(id(element))


def _spread_indices(length: int, sample: int) -> set:
    """``sample`` evenly spaced indices into ``length`` elements.

    Deterministic and stratified: a head sample would misjudge any
    container whose early elements differ systematically from the
    rest (the HBG's out-adjacency starts with high fan-out config
    events and settles into single-edge chains).
    """
    step = length / sample
    return {int(i * step) for i in range(sample)}


def _extrapolate(costs: List[int], skipped: int) -> int:
    """Estimate a container's element bytes from its measured sample.

    Shared sub-objects (interned strings, events referenced by many
    edges) are counted once per walk, so the sample's *average*
    element cost overstates the rest: the first measured elements pay
    for the shared objects the others reuse.  The first half of the
    sample therefore only warms up the dedup set; the second half's
    mean — measured with the shared objects already seen — is the
    marginal cost extrapolated over the ``skipped`` elements,
    mirroring what the audit walk would charge them.
    """
    measured = sum(costs)
    if not skipped:
        return measured
    probe = costs[len(costs) // 2 :]
    if not probe:
        return measured * (1 + skipped)
    marginal = sum(probe) / len(probe)
    return int(measured + marginal * skipped)


def _sizeof(obj: Any, seen: set, sample: Optional[int]) -> int:
    """Recursive ``sys.getsizeof`` walk with id-dedup and sampling.

    ``sample=None`` measures exactly (audit mode); otherwise
    containers longer than ``sample`` are extrapolated from
    ``sample`` evenly spaced elements.  Shared sub-objects are
    counted once per walk via the ``seen`` id set.
    """
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    try:
        size = sys.getsizeof(obj)
    except TypeError:  # exotic C objects without a size
        return 0
    if isinstance(obj, _ATOMIC) or isinstance(obj, _OPAQUE):
        return size
    if isinstance(obj, dict):
        items: List[Tuple[Any, Any]] = list(obj.items())
        if sample is None or len(items) <= sample:
            return size + sum(
                _sizeof(key, seen, sample) + _sizeof(value, seen, sample)
                for key, value in items
            )
        picked = _spread_indices(len(items), sample)
        costs: List[int] = []
        skipped = 0
        for index, (key, value) in enumerate(items):
            if index in picked:
                costs.append(
                    _sizeof(key, seen, sample)
                    + _sizeof(value, seen, sample)
                )
            else:
                skipped += 1
                _mark_seen(key, seen)
                _mark_seen(value, seen)
        return size + _extrapolate(costs, skipped)
    if isinstance(obj, (list, tuple)):
        elements: List[Any] = list(obj)
        if sample is None or len(elements) <= sample:
            return size + sum(_sizeof(e, seen, sample) for e in elements)
        picked = _spread_indices(len(elements), sample)
        costs = []
        skipped = 0
        for index, element in enumerate(elements):
            if index in picked:
                costs.append(_sizeof(element, seen, sample))
            else:
                skipped += 1
                _mark_seen(element, seen)
        return size + _extrapolate(costs, skipped)
    if isinstance(obj, (set, frozenset)):
        # Iteration order of sets can be hash-seed dependent, so a
        # head sample would be nondeterministic: measure exactly.
        return size + sum(_sizeof(e, seen, sample) for e in obj)
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is not None:
        size += _sizeof(instance_dict, seen, sample)
    for name in _slot_names(type(obj)):
        size += _sizeof(getattr(obj, name, None), seen, sample)
    return size


def deep_sizeof(root: Any) -> int:
    """Exact retained size of ``root`` in bytes (audit mode)."""
    return _sizeof(root, set(), None)


def estimate_sizeof(root: Any, sample: int = DEFAULT_SAMPLE) -> int:
    """Sampled retained size of ``root`` (the fast ledger estimate)."""
    return _sizeof(root, set(), sample)


def combined_sizeof(
    roots: Iterable[Any], sample: Optional[int] = DEFAULT_SAMPLE
) -> int:
    """Size several roots with *one* shared dedup set.

    The idiom for a structure's ``account_bytes``: pass the handful
    of containers that make up its long-lived state, and objects
    referenced from more than one of them are counted once — exactly
    how the audit walk would see them.
    """
    seen: set = set()
    return sum(_sizeof(root, seen, sample) for root in roots)


class _Registration:
    """One weak registration of an accountable owner."""

    __slots__ = ("component", "ref")

    def __init__(self, component: str, owner: Any) -> None:
        self.component = component
        self.ref = weakref.ref(owner)


class ResourceLedger:
    """Registry of accountable components and their byte watermarks."""

    enabled = True

    def __init__(self, sample: int = DEFAULT_SAMPLE) -> None:
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.sample = sample
        self._registrations: Dict[int, _Registration] = {}
        self._next_handle = 1
        #: component -> last refreshed bytes.
        self._bytes: Dict[str, int] = {}
        #: component -> high-watermark across every refresh.
        self._peaks: Dict[str, int] = {}
        self._peak_total = 0
        self.refreshes_total = 0

    # -- registration ------------------------------------------------------

    def register(self, component: str, owner: Any) -> int:
        """Track ``owner`` under ``component``; returns a handle.

        ``owner`` must implement ``account_bytes(audit: bool) -> int``.
        Only a weak reference is kept: a collected owner drops out of
        the ledger at the next refresh with no unregistration needed.
        """
        account = getattr(owner, "account_bytes", None)
        if not callable(account):
            raise TypeError(
                f"{type(owner).__name__} registered under {component!r} "
                "has no account_bytes() method"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._registrations[handle] = _Registration(component, owner)
        return handle

    def unregister(self, handle: int) -> None:
        self._registrations.pop(handle, None)

    def live_registrations(self) -> List[Tuple[str, Any]]:
        """(component, owner) pairs whose owners are still alive."""
        alive: List[Tuple[str, Any]] = []
        for handle in sorted(self._registrations):
            registration = self._registrations[handle]
            owner = registration.ref()
            if owner is None:
                del self._registrations[handle]
            else:
                alive.append((registration.component, owner))
        return alive

    def components(self) -> List[str]:
        return sorted({c for c, _owner in self.live_registrations()})

    def __len__(self) -> int:
        return len(self.live_registrations())

    # -- measurement -------------------------------------------------------

    def _measure(self, audit: bool) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for component, owner in self.live_registrations():
            measured = int(owner.account_bytes(audit=audit))
            totals[component] = totals.get(component, 0) + measured
        return totals

    def refresh(self, registry: Any = None) -> Dict[str, int]:
        """Re-account every component; publish gauges; return bytes.

        ``registry`` defaults to the process-wide metrics registry;
        when metrics are disabled the refresh still updates the
        ledger's own state (peaks, ``/resources.json``).
        """
        totals = self._measure(audit=False)
        self.refreshes_total += 1
        self._bytes = totals
        for component, count in totals.items():
            if count > self._peaks.get(component, -1):
                self._peaks[component] = count
        total = sum(totals.values())
        if total > self._peak_total:
            self._peak_total = total
        if registry is None:
            from repro import obs

            registry = obs.get_registry()
        if registry.enabled:
            for component, count in sorted(totals.items()):
                registry.gauge("resource.bytes", component=component).set(
                    count
                )
                registry.gauge(
                    "resource.bytes_peak", component=component
                ).set(self._peaks[component])
            registry.gauge("resource.bytes_total").set(total)
            registry.gauge("resource.bytes_peak_total").set(self._peak_total)
            registry.counter("resource.refreshes_total").inc()
        return totals

    def audit(self) -> Dict[str, int]:
        """Exact per-component bytes via the unsampled getsizeof walk."""
        return self._measure(audit=True)

    # -- read side ---------------------------------------------------------

    def bytes_by_component(self) -> Dict[str, int]:
        return dict(self._bytes)

    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    def peak_bytes(self, component: str) -> int:
        return self._peaks.get(component, 0)

    def peak_total_bytes(self) -> int:
        return self._peak_total

    def document(self) -> Dict[str, Any]:
        """The ``/resources.json`` payload (last refresh, no re-walk)."""
        components = {
            component: {
                "bytes": self._bytes.get(component, 0),
                "peak_bytes": self._peaks.get(component, 0),
            }
            for component in sorted(set(self._bytes) | set(self._peaks))
        }
        return {
            "schema": "repro-resources/v1",
            "components": components,
            "total_bytes": self.total_bytes(),
            "peak_total_bytes": self._peak_total,
            "registrations": len(self),
            "refreshes_total": self.refreshes_total,
            "sample": self.sample,
        }

    def clear(self) -> None:
        self._registrations.clear()
        self._bytes.clear()
        self._peaks.clear()
        self._peak_total = 0
        self.refreshes_total = 0

    def __repr__(self) -> str:
        return (
            f"ResourceLedger(components={self.components()}, "
            f"total={self.total_bytes()}B, peak={self._peak_total}B)"
        )


class NullLedger:
    """The default ledger: registration is a single attribute check.

    ``enabled`` is False so registration sites skip the weakref and
    accounting entirely; ``register`` still exists (and no-ops) so a
    site that forgets the guard stays correct, merely slower.
    """

    enabled = False
    sample = DEFAULT_SAMPLE
    refreshes_total = 0

    def register(self, component: str, owner: Any) -> int:
        return 0

    def unregister(self, handle: int) -> None:
        pass

    def live_registrations(self) -> List[Tuple[str, Any]]:
        return []

    def components(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def refresh(self, registry: Any = None) -> Dict[str, int]:
        return {}

    def audit(self) -> Dict[str, int]:
        return {}

    def bytes_by_component(self) -> Dict[str, int]:
        return {}

    def total_bytes(self) -> int:
        return 0

    def peak_bytes(self, component: str) -> int:
        return 0

    def peak_total_bytes(self) -> int:
        return 0

    def document(self) -> Dict[str, Any]:
        return {
            "schema": "repro-resources/v1",
            "components": {},
            "total_bytes": 0,
            "peak_total_bytes": 0,
            "registrations": 0,
            "refreshes_total": 0,
            "sample": self.sample,
        }

    def clear(self) -> None:
        pass


NULL_LEDGER = NullLedger()
