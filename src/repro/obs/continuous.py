"""Continuous-verification telemetry: watermarks and detection SLIs.

The paper's pitch is verification *inside* the control plane, running
while the network operates — so the operator-facing quantities are
stream-shaped: how far behind live capture is each router's event
feed (watermark lag), how much captured input is still ahead of the
verdict frontier (backlog, staleness), and — the number that
justifies the whole architecture — how long the network was exposed
between a fault and its verdict or repair.  This module derives all
of them from the existing capture/verify plumbing:

* :class:`WatermarkTracker` consumes the
  :meth:`StreamingInference.subscribe` delta feed and maintains
  per-router **event-time watermarks** (the newest capture timestamp
  seen per router), a clock-skew-adjusted lag gauge per router
  (``stream.watermark_lag_seconds{router=}``), the global frontier
  (the minimum watermark — everything at or before it is complete),
  and the pipeline **backlog depth** (events newer than the
  frontier, i.e. observed but not yet frontier-complete);
* :class:`ContinuousMonitor` composes the tracker with the verdict
  ledger (:mod:`repro.obs.ledger`) into the three SLIs:

  - ``verify.detection_latency_seconds`` — violation-introducing FIB
    update (event time) → first *failing* verdict for that prefix.
    Per-prefix suspect timestamps are attributed through an
    :class:`~repro.verify.atoms.AtomTable`: an update whose address
    range overlaps an already-tracked prefix marks that prefix
    suspect too, exactly the atoms the incremental verifier
    re-probes.
  - ``verify.exposure_seconds`` — failing verdict → the passing
    verdict or §6 rollback that closes it (a rollback closes every
    open failure; a passing whole-plane snapshot verdict does too).
  - ``verify.verdict_staleness_seconds`` — newest captured event time
    minus the verdict's own time: how far behind capture the verdict
    frontier runs.

All times are capture/simulation timestamps, never wall clocks, so
the SLIs are deterministic for a fixed scenario — hand-computable
from the event timeline, which is exactly how the tests pin them.

Zero overhead when off: nothing here hooks the pipeline unless
explicitly attached, and the registry publishes only when metrics are
enabled.  The tripping-tracker benchmark guard asserts an unattached
pipeline never reaches :meth:`WatermarkTracker.observe`.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro import obs

# Deliberately no imports from repro.capture / repro.verify: ``obs``
# is importable from every layer (LAY001 EXEMPT), so an obs module
# importing a higher layer would close an import cycle (LAY002).
# Events and atom tables arrive duck-typed through the subscribe
# hooks instead.


class WatermarkTracker:
    """Per-router event-time watermarks over the streaming delta feed.

    ``view`` (a :class:`~repro.snapshot.base.VerifierView`) supplies
    per-router capture lags so the tracker's clock advances in
    *arrival* time like the incremental verifier's; without one,
    arrival time equals event time.  ``skew_tolerance`` (the
    :class:`InferenceConfig.clock_skew_tolerance` default) is
    subtracted from reported lag: two routers within the tolerance
    are indistinguishable, so their lag reads 0 rather than noise.
    """

    def __init__(
        self,
        view: Optional[Any] = None,
        skew_tolerance: float = 0.05,
    ) -> None:
        self.view = view
        self.skew_tolerance = skew_tolerance
        #: router -> newest event timestamp seen (the watermark).
        self._watermarks: Dict[str, float] = {}
        #: Arrival-time clock (max arrival time seen).
        self.clock = 0.0
        #: Newest event timestamp across all routers.
        self.newest_event_time = 0.0
        self.events_seen = 0
        #: Min-heap of event timestamps not yet <= the frontier.
        self._pending: List[float] = []

    # -- wiring -----------------------------------------------------------

    def attach(self, streaming: Any) -> "WatermarkTracker":
        """Subscribe to a :class:`StreamingInference` delta feed."""
        streaming.subscribe(self.observe)
        return self

    # -- the feed ---------------------------------------------------------

    def observe(
        self, event: Any, relinked: Tuple[Any, ...] = ()
    ) -> None:
        """One observed event (the ``subscribe()`` listener)."""
        self.events_seen += 1
        arrival = (
            self.view.arrival_time(event)
            if self.view is not None
            else event.timestamp
        )
        if arrival > self.clock:
            self.clock = arrival
        if event.timestamp > self.newest_event_time:
            self.newest_event_time = event.timestamp
        current = self._watermarks.get(event.router)
        if current is None or event.timestamp > current:
            self._watermarks[event.router] = event.timestamp
        heapq.heappush(self._pending, event.timestamp)
        frontier = self.frontier()
        while self._pending and self._pending[0] <= frontier:
            heapq.heappop(self._pending)
        self._publish(frontier)

    # -- read side --------------------------------------------------------

    def frontier(self) -> float:
        """The global watermark: min per-router watermark (0 if none).

        Every event at or before the frontier has been observed from
        *every* router that has ever reported — the completeness line
        a verdict can be trusted up to.
        """
        if not self._watermarks:
            return 0.0
        return min(self._watermarks.values())

    def frontier_by_router(self) -> Dict[str, float]:
        """Per-router watermarks (the ledger's ``frontier`` stamp)."""
        return dict(self._watermarks)

    def lag_of(self, router: str) -> float:
        """Skew-adjusted lag of one router behind the arrival clock."""
        watermark = self._watermarks.get(router)
        if watermark is None:
            return 0.0
        return max(0.0, self.clock - watermark - self.skew_tolerance)

    def backlog_depth(self) -> int:
        """Observed events still ahead of the frontier."""
        return len(self._pending)

    # -- publishing -------------------------------------------------------

    def _publish(self, frontier: float) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        for router in sorted(self._watermarks):
            registry.gauge(
                "stream.watermark_lag_seconds", router=router
            ).set(self.lag_of(router))
        registry.gauge("stream.watermark_frontier").set(frontier)
        registry.gauge("stream.backlog_depth").set(len(self._pending))
        registry.gauge("stream.newest_event_time").set(
            self.newest_event_time
        )


class ContinuousMonitor:
    """Derives the detection/exposure/staleness SLIs (module docstring).

    Wire-up::

        verdicts = obs.enable_verdicts(path="verdicts.jsonl")
        monitor = ContinuousMonitor(view=view).attach(streaming)
        monitor.bind_ledger(verdicts)
        for event in events_in_arrival_order:
            streaming.observe(event)
        # registry now carries verify.detection_latency_seconds etc.
    """

    def __init__(
        self,
        view: Optional[Any] = None,
        tracker: Optional[WatermarkTracker] = None,
        skew_tolerance: float = 0.05,
        atoms: Optional[Any] = None,
    ) -> None:
        self.tracker = (
            tracker
            if tracker is not None
            else WatermarkTracker(view=view, skew_tolerance=skew_tolerance)
        )
        #: Optional :class:`repro.verify.atoms.AtomTable` (injected —
        #: see the module docstring on layering) refined with every
        #: tracked prefix, aligning suspect attribution with the
        #: partition the incremental verifier re-probes.
        self.atoms = atoms
        #: prefix-str -> (first_address, last_address) of tracked keys.
        self._ranges: Dict[str, Tuple[int, int]] = {}
        #: prefix-str -> event time of the first unjudged FIB update.
        self._suspect: Dict[str, float] = {}
        #: prefix-str -> verdict time the open failure started.
        self._failing: Dict[str, float] = {}
        self.detections = 0
        self.exposures_closed = 0
        #: routers whose ``verify.last_verdict_ok`` gauge we set to 0.
        self._failed_routers: set = set()

    # -- wiring -----------------------------------------------------------

    def attach(self, streaming: Any) -> "ContinuousMonitor":
        streaming.subscribe(self.on_event)
        return self

    def bind_ledger(self, verdicts: Any) -> "ContinuousMonitor":
        """Consume a :class:`VerdictLedger`'s append stream.

        Also stamps the ledger's records with this monitor's watermark
        frontier, so every persisted verdict carries the capture state
        it was judged against.
        """
        verdicts.subscribe(self.on_verdict)
        verdicts.attach_watermarks(self.tracker)
        return self

    # -- the event feed ---------------------------------------------------

    def on_event(
        self, event: Any, relinked: Tuple[Any, ...] = ()
    ) -> None:
        self.tracker.observe(event, relinked)
        # Duck-typed FIB_UPDATE check (no IOKind import; see module
        # docstring on layering).
        kind = getattr(event.kind, "name", event.kind)
        if kind == "FIB_UPDATE" and event.prefix is not None:
            self._mark_suspect(event)

    def _mark_suspect(self, event: Any) -> None:
        prefix = event.prefix
        key = str(prefix)
        first = prefix.first_address()
        last = prefix.last_address()
        if key not in self._ranges:
            if self.atoms is not None:
                self.atoms.ensure(prefix)
            self._ranges[key] = (first, last)
        self._suspect.setdefault(key, event.timestamp)
        # Atom-table attribution: the verifier re-probes every atom
        # inside the update's range, so any tracked prefix sharing an
        # atom is equally suspect from this update on.
        for other, (ofirst, olast) in self._ranges.items():
            if other != key and not (olast < first or last < ofirst):
                self._suspect.setdefault(other, event.timestamp)

    # -- the verdict feed -------------------------------------------------

    def on_verdict(self, record: Any) -> None:
        """One ledger record (the ``VerdictLedger.subscribe`` listener)."""
        registry = obs.get_registry()
        if registry.enabled:
            staleness = max(
                0.0, self.tracker.newest_event_time - record.at
            )
            registry.histogram("verify.verdict_staleness_seconds").observe(
                staleness
            )
            registry.gauge(
                "verify.last_verdict_ok",
                router=record.router if record.router else "all",
            ).set(1.0 if record.ok else 0.0)
            if not record.ok and record.router:
                self._failed_routers.add(record.router)
        if record.kind == "rollback":
            # A rollback closes every open failure: the root cause is
            # reverted, exposure ends at the rollback, whatever the
            # next verdict says about residual convergence.
            for key in sorted(self._failing):
                self._close(key, record.at, registry)
            self._suspect.clear()
        elif record.prefix is not None:
            if record.ok:
                self._suspect.pop(record.prefix, None)
                if record.prefix in self._failing:
                    self._close(record.prefix, record.at, registry)
            else:
                self._open(record, record.prefix, registry)
        else:
            # Whole-plane snapshot verdict: a pass clears everything; a
            # failure opens (only) the violated prefixes it names.
            if record.ok:
                for key in sorted(self._failing):
                    self._close(key, record.at, registry)
                self._suspect.clear()
            else:
                for key in self._violated_prefixes(record):
                    self._open(record, key, registry)
        if registry.enabled:
            registry.gauge("verify.exposed_prefixes").set(
                len(self._failing)
            )
            # Once no failure is open the plane is green: a stale FAIL
            # on a router whose update merely *triggered* a since-cured
            # check would misread as an ongoing problem.
            if record.ok and not self._failing and self._failed_routers:
                for router in sorted(self._failed_routers):
                    registry.gauge(
                        "verify.last_verdict_ok", router=router
                    ).set(1.0)
                self._failed_routers.clear()

    @staticmethod
    def _violated_prefixes(record: Any) -> List[str]:
        details = record.attrs.get("violation_detail", ())
        keys = sorted(
            {d["prefix"] for d in details if d.get("prefix")}
        )
        return keys if keys else ["*"]

    def _open(self, record: Any, key: str, registry: Any) -> None:
        if key in self._failing:
            return
        self._failing[key] = record.at
        introduced = self._suspect.pop(key, None)
        if introduced is None:
            # No FIB update was seen for this prefix (whole-plane
            # verdicts, pre-attach history): fall back to the verdict's
            # own trigger time — detection 0 when even that is absent.
            introduced = (
                record.event_time
                if record.event_time is not None
                else record.at
            )
        self.detections += 1
        if registry.enabled:
            registry.histogram("verify.detection_latency_seconds").observe(
                max(0.0, record.at - introduced)
            )

    def _close(self, key: str, at: float, registry: Any) -> None:
        started = self._failing.pop(key)
        self.exposures_closed += 1
        if registry.enabled:
            registry.histogram("verify.exposure_seconds").observe(
                max(0.0, at - started)
            )

    # -- read side --------------------------------------------------------

    def exposed_prefixes(self) -> List[str]:
        return sorted(self._failing)


# -- the `repro watch` renderer ----------------------------------------------


def _fmt(value: Optional[float], suffix: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.3f}{suffix}"


def render_watch_table(
    registry: Any, verdicts: Optional[Any] = None
) -> str:
    """The ``repro watch`` status table, from the live registry.

    One row per router seen in ``stream.watermark_lag_seconds`` /
    ``verify.last_verdict_ok`` gauges; headline lines summarise the
    frontier, backlog, and the ledger tail when one is supplied.
    """
    lags: Dict[str, float] = {}
    last_ok: Dict[str, float] = {}
    frontier: Optional[float] = None
    backlog: Optional[float] = None
    exposed: Optional[float] = None
    for gauge in registry.gauges():
        labels = dict(gauge.labels)
        if gauge.name == "stream.watermark_lag_seconds":
            lags[labels.get("router", "?")] = gauge.value
        elif gauge.name == "verify.last_verdict_ok":
            last_ok[labels.get("router", "all")] = gauge.value
        elif gauge.name == "stream.watermark_frontier":
            frontier = gauge.value
        elif gauge.name == "stream.backlog_depth":
            backlog = gauge.value
        elif gauge.name == "verify.exposed_prefixes":
            exposed = gauge.value
    detection = exposure = None
    for histogram in registry.histograms():
        if histogram.name == "verify.detection_latency_seconds":
            detection = histogram.percentile(99)
        elif histogram.name == "verify.exposure_seconds":
            exposure = histogram.percentile(99)
    lines: List[str] = []
    lines.append(
        "frontier=%s  backlog=%s  exposed_prefixes=%s"
        % (
            _fmt(frontier, "s"),
            "-" if backlog is None else str(int(backlog)),
            "-" if exposed is None else str(int(exposed)),
        )
    )
    lines.append(
        "detection_p99=%s  exposure_p99=%s"
        % (_fmt(detection, "s"), _fmt(exposure, "s"))
    )
    if verdicts is not None:
        last = verdicts.last()
        tail = "-"
        if last is not None:
            status = "ok" if last.ok else "FAIL"
            where = last.prefix or last.router or "plane"
            tail = f"#{last.seq} {last.kind} {status} {where} @{last.at:g}"
        lines.append(
            f"verdicts={verdicts.appended_total}  last={tail}"
        )
    routers = sorted(set(lags) | set(last_ok) - {"all"})
    header = f"{'ROUTER':<12} {'LAG(s)':>10} {'VERDICT':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for router in routers:
        lag = lags.get(router)
        verdict_value = last_ok.get(router)
        if verdict_value is None:
            verdict = "-"
        else:
            verdict = "ok" if verdict_value >= 1.0 else "FAIL"
        lines.append(
            f"{router:<12} {_fmt(lag):>10} {verdict:>8}"
        )
    if not routers:
        lines.append("(no routers reporting)")
    return "\n".join(lines)
