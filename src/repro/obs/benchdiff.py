"""Benchmark report comparison: the ``repro bench diff`` gate.

``benchmarks/`` emits ``BENCH_<experiment>.json`` documents (see
:mod:`benchmarks._report`) but until now nothing ever *compared* two
of them, so performance regressions were invisible.  This module
closes the loop: flatten two reports into dotted key paths, compare
the numeric leaves key-by-key, and classify each as

* ``regression`` — a latency/wall-time key got slower by more than
  the threshold (and more than an absolute noise floor);
* ``improvement`` — the same, in the right direction;
* ``changed`` — a non-performance value differs (counters, shapes);
* ``added`` / ``removed`` — the key exists in only one report;
* ``ok`` — within tolerance.

Performance keys are recognised by name: any path segment containing
``seconds`` or ``latency`` is a time where *larger is worse*.  Pure
counts (events processed, episode totals) can legitimately change
with the workload and are reported as ``changed``, never as
regressions.

Wall-clock noise makes micro-benchmarks jittery, so a relative
threshold alone is not enough: a 3µs → 4µs blip is a 33% "regression"
nobody should page on.  ``min_abs`` (seconds) is the absolute floor a
delta must also clear.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Default relative threshold (percent) for calling a time regression.
DEFAULT_THRESHOLD_PCT = 10.0
#: Default absolute floor (seconds) a time delta must exceed.
DEFAULT_MIN_ABS = 1e-4
#: Default absolute floor (bytes) a memory delta must exceed —
#: allocator jitter and sampling make small byte deltas meaningless.
DEFAULT_MIN_ABS_BYTES = 1 << 20

_STATUS_ORDER = ("regression", "removed", "added", "changed", "improvement", "ok")


def is_perf_key(path: str) -> bool:
    """Paths where the value is a time and larger means slower."""
    lowered = path.lower()
    return "seconds" in lowered or "latency" in lowered


def is_resource_key(path: str) -> bool:
    """Paths where the value is a byte count and larger means fatter.

    Memory joins the regression gate the same way time did: any
    ``*bytes*`` key (the scaling bench's ``ledger_peak_bytes``) is a
    resource where growth beyond threshold + floor is a regression,
    not mere change.
    """
    return "bytes" in path.lower()


def flatten(document: Any, prefix: str = "") -> Dict[str, Any]:
    """Nested dicts/lists → {"a.b.0.c": leaf} with deterministic order."""
    flat: Dict[str, Any] = {}
    if isinstance(document, dict):
        for key in sorted(document, key=str):
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(document[key], path))
    elif isinstance(document, list):
        for index, item in enumerate(document):
            path = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten(item, path))
    else:
        flat[prefix] = document
    return flat


@dataclass(frozen=True)
class DiffEntry:
    """One compared key path."""

    path: str
    status: str  # regression | improvement | changed | added | removed | ok
    old: Any = None
    new: Any = None
    delta_pct: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "path": self.path,
            "status": self.status,
            "old": self.old,
            "new": self.new,
        }
        if self.delta_pct is not None:
            record["delta_pct"] = round(self.delta_pct, 3)
        return record


@dataclass
class BenchDiff:
    """The full comparison of two benchmark reports."""

    entries: List[DiffEntry]
    threshold_pct: float
    min_abs: float
    min_abs_bytes: float = DEFAULT_MIN_ABS_BYTES

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def has_regression(self) -> bool:
        return any(e.status == "regression" for e in self.entries)

    @property
    def has_change(self) -> bool:
        return any(e.status != "ok" for e in self.entries)

    def interesting(self) -> List[DiffEntry]:
        """Everything except ``ok``, worst first."""
        rank = {status: i for i, status in enumerate(_STATUS_ORDER)}
        return sorted(
            (e for e in self.entries if e.status != "ok"),
            key=lambda e: (rank[e.status], e.path),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold_pct": self.threshold_pct,
            "min_abs": self.min_abs,
            "min_abs_bytes": self.min_abs_bytes,
            "compared_keys": len(self.entries),
            "by_status": self.by_status(),
            "entries": [e.to_dict() for e in self.interesting()],
        }

    def table_lines(self) -> List[str]:
        counts = self.by_status()
        summary = ", ".join(
            f"{counts[status]} {status}"
            for status in _STATUS_ORDER
            if counts.get(status)
        )
        lines = [
            f"bench diff: {len(self.entries)} key(s) compared "
            f"(threshold {self.threshold_pct:g}%, floor "
            f"{self.min_abs:g}s) — {summary or 'nothing to compare'}"
        ]
        rows = self.interesting()
        if rows:
            lines.append("")
            lines.append(
                f"{'status':<12} {'delta':>9}  {'old':>14} {'new':>14}  path"
            )
            for entry in rows:
                delta = (
                    f"{entry.delta_pct:+8.1f}%"
                    if entry.delta_pct is not None
                    else "        -"
                )
                lines.append(
                    f"{entry.status:<12} {delta}  "
                    f"{_cell(entry.old):>14} {_cell(entry.new):>14}  "
                    f"{entry.path}"
                )
        return lines


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)[:14]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    min_abs: float = DEFAULT_MIN_ABS,
    min_abs_bytes: float = DEFAULT_MIN_ABS_BYTES,
) -> BenchDiff:
    """Compare two benchmark report documents key-by-key."""
    old_flat = flatten(old)
    new_flat = flatten(new)
    entries: List[DiffEntry] = []
    for path in sorted(set(old_flat) | set(new_flat)):
        if path not in new_flat:
            entries.append(
                DiffEntry(path=path, status="removed", old=old_flat[path])
            )
            continue
        if path not in old_flat:
            entries.append(
                DiffEntry(path=path, status="added", new=new_flat[path])
            )
            continue
        entries.append(
            _compare(
                path,
                old_flat[path],
                new_flat[path],
                threshold_pct,
                min_abs,
                min_abs_bytes,
            )
        )
    return BenchDiff(
        entries=entries,
        threshold_pct=threshold_pct,
        min_abs=min_abs,
        min_abs_bytes=min_abs_bytes,
    )


def _compare(
    path: str,
    old: Any,
    new: Any,
    threshold_pct: float,
    min_abs: float,
    min_abs_bytes: float = DEFAULT_MIN_ABS_BYTES,
) -> DiffEntry:
    if not (_is_number(old) and _is_number(new)):
        status = "ok" if old == new else "changed"
        return DiffEntry(path=path, status=status, old=old, new=new)
    delta = new - old
    delta_pct = (delta / old * 100.0) if old else (100.0 if delta else 0.0)
    if is_perf_key(path):
        floor = min_abs
    elif is_resource_key(path):
        floor = min_abs_bytes
    else:
        status = "ok" if delta == 0 else "changed"
        return DiffEntry(
            path=path, status=status, old=old, new=new, delta_pct=delta_pct
        )
    over_floor = abs(delta) > floor
    over_threshold = abs(delta_pct) > threshold_pct
    if over_floor and over_threshold:
        status = "regression" if delta > 0 else "improvement"
    else:
        status = "ok"
    return DiffEntry(
        path=path, status=status, old=old, new=new, delta_pct=delta_pct
    )


def load_report(path: str) -> Dict[str, Any]:
    """Read one ``BENCH_*.json`` document."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: benchmark report is not a JSON object")
    return document


def exit_code(diff: BenchDiff, fail_on: str) -> int:
    """CLI exit status under a ``--fail-on`` policy."""
    if fail_on == "never":
        return 0
    if fail_on == "changed":
        return 1 if (diff.has_regression or diff.has_change) else 0
    return 1 if diff.has_regression else 0


#: ``--fail-on`` choices, mirrored by the CLI parser.
FAIL_ON_CHOICES: Tuple[str, ...] = ("regression", "changed", "never")
