"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry is the write side of the observability layer (§7's
feasibility numbers — events captured per change, HBG construction
cost, per-FIB-write verification latency — all come out of it).  Two
implementations share one interface:

* :class:`MetricsRegistry` — the real thing.  Instruments are
  created lazily, keyed by ``(name, labels)``, and grouped into
  *sections* by the name's leading dotted component
  (``verify.fib_writes_verified`` lives in section ``verify``).
* :class:`NullRegistry` — the default.  Every lookup returns a
  shared no-op instrument, so instrumented hot paths pay one
  attribute check and nothing else when observability is off.

Instrumented code follows one idiom::

    reg = obs.get_registry()
    if reg.enabled:                      # only pay for clocks when on
        watch = reg.stopwatch()
    ...work...
    if reg.enabled:
        reg.histogram("verify.verify_seconds").observe(watch.elapsed())
    reg.counter("verify.verifications_total").inc()   # no-op when off

The :class:`Stopwatch` returned by ``reg.stopwatch()`` is the *only*
sanctioned wall-clock read in the deterministic layers (``net``,
``protocols``, ``capture``, ``hbr``): domain code must never import
``time``/``datetime`` itself — simulation semantics come from the
logical simulator clock, and wall time exists solely for
observability.  The ``DET001`` lint rule (see
``docs/STATIC_ANALYSIS.md``) enforces this.

Histograms keep exact count/sum/min/max and a bounded reservoir of
samples (deterministic, seeded) for percentile estimation, so an
arbitrarily long capture cannot exhaust memory.
"""

from __future__ import annotations

import math
import random
import threading
import time
import zlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: LabelKey) -> str:
    """Canonical display name: ``name{k=v,k2=v2}`` (no braces if bare)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def section_of(name: str) -> str:
    """Section = the metric name's leading dotted component."""
    return name.split(".", 1)[0]


class Stopwatch:
    """A started wall clock; the observability layer's only clock.

    Handed out by :meth:`MetricsRegistry.stopwatch` so that
    deterministic domain code (simulator, capture, HBR) can measure
    wall time for metrics without importing ``time`` — keeping the
    wall clock quarantined inside ``repro.obs`` where it cannot leak
    into simulation semantics.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._started

    def restart(self) -> None:
        self._started = time.perf_counter()


class _NullStopwatch:
    """Free stand-in handed out by :class:`NullRegistry`."""

    __slots__ = ()

    def elapsed(self) -> float:
        return 0.0

    def restart(self) -> None:
        pass


_NULL_STOPWATCH = _NullStopwatch()


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({format_metric_name(self.name, self.labels)}={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, throughput)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({format_metric_name(self.name, self.labels)}={self._value})"


class Histogram:
    """Distribution summary with exact moments and sampled percentiles.

    ``count``/``sum``/``min``/``max``/``mean`` are exact over every
    observation.  Percentiles come from a reservoir of at most
    ``max_samples`` values, filled by Vitter's Algorithm R with a
    per-histogram seeded RNG so replays are bit-identical.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "max_samples",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_samples",
        "_rng",
    )

    def __init__(
        self, name: str, labels: LabelKey = (), max_samples: int = 8192
    ):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        # Seed from a *stable* digest of the metric identity.  The
        # builtin hash() is salted per process (PYTHONHASHSEED), so
        # using it here would make reservoir contents — and therefore
        # p50/p95/p99 — drift between otherwise identical runs.
        self._rng = random.Random(
            zlib.crc32(format_metric_name(name, labels).encode("utf-8"))
        )

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the reservoir.

        Returns ``None`` with zero samples; with one sample every
        percentile is that sample.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if p == 0:
            return ordered[0]
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def bucket_counts(self, boundaries: Iterable[float]) -> List[int]:
        """Cumulative observation counts at each upper bound.

        The Prometheus ``_bucket{le=}`` series: for each boundary, how
        many observations were ``<=`` it.  Exact while the reservoir
        still holds every observation (``count <= max_samples``);
        beyond that the reservoir's empirical CDF is scaled to the
        true count.  Counts are clamped monotone non-decreasing, and
        the caller's trailing ``+Inf`` bucket is always ``count``.
        """
        bounds = list(boundaries)
        if not self._samples:
            return [0 for _ in bounds]
        ordered = sorted(self._samples)
        held = len(ordered)
        scale = self._count / held
        counts: List[int] = []
        floor = 0
        for bound in bounds:
            rank = bisect_right(ordered, bound)
            scaled = min(self._count, int(round(rank * scale)))
            floor = max(floor, scaled)
            counts.append(floor)
        return counts

    def __repr__(self) -> str:
        return (
            f"Histogram({format_metric_name(self.name, self.labels)} "
            f"count={self._count} mean={self.mean})"
        )


Metric = object  # Counter | Gauge | Histogram (py3.10-safe alias)


class MetricsRegistry:
    """Lazily-created, label-keyed instruments grouped into sections.

    The registry is **internally synchronized**: instrument creation
    and iteration hold a private lock, so a ``/metrics`` scrape on an
    HTTP handler thread can render while the pipeline thread creates
    new instruments (the CONC002 lint rule's "self-synchronized"
    contract — before the lock, ``sorted(self._counters)`` during a
    scrape raced creation with ``RuntimeError: dictionary changed
    size during iteration``).  The hot path stays cheap: a lookup
    that *hits* is a plain ``dict.get`` with no lock (CPython dict
    reads are atomic); only a miss takes the lock, double-checking
    before creating.  Mutating an already-obtained instrument
    (``Counter.inc`` …) was and remains lock-free single-writer.
    """

    enabled = True

    def __init__(self, histogram_max_samples: int = 8192):
        self.histogram_max_samples = histogram_max_samples
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument lookup (get-or-create) ---------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(key)
                if instrument is None:
                    instrument = Counter(name, key[1])
                    self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(key)
                if instrument is None:
                    instrument = Gauge(name, key[1])
                    self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(key)
                if instrument is None:
                    instrument = Histogram(
                        name, key[1], max_samples=self.histogram_max_samples
                    )
                    self._histograms[key] = instrument
        return instrument

    def stopwatch(self) -> Stopwatch:
        """A freshly started :class:`Stopwatch`."""
        return Stopwatch()

    # -- iteration ---------------------------------------------------------
    # Each method snapshots the key set under the lock; callers get a
    # stable list even while other threads create instruments.

    def counters(self) -> List[Counter]:
        with self._lock:
            return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        with self._lock:
            return [self._histograms[k] for k in sorted(self._histograms)]

    def all_metrics(self) -> Iterable[object]:
        yield from self.counters()
        yield from self.gauges()
        yield from self.histograms()

    def sections(self) -> List[str]:
        names = {section_of(m.name) for m in self.all_metrics()}
        return sorted(names)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )


# -- the no-op side ----------------------------------------------------------


class _NullCounter:
    kind = "counter"
    name = ""
    labels: LabelKey = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    kind = "gauge"
    name = ""
    labels: LabelKey = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    kind = "histogram"
    name = ""
    labels: LabelKey = ()
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = None

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> Optional[float]:
        return None

    def summary(self) -> Dict[str, Optional[float]]:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The default registry: every instrument is a shared no-op.

    ``enabled`` is False so instrumented code can skip clock reads and
    any other enabled-only work with a single attribute check.
    """

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def stopwatch(self) -> _NullStopwatch:
        return _NULL_STOPWATCH

    def counters(self) -> List[Counter]:
        return []

    def gauges(self) -> List[Gauge]:
        return []

    def histograms(self) -> List[Histogram]:
        return []

    def all_metrics(self) -> Iterable[object]:
        return iter(())

    def sections(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
