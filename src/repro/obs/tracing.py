"""Span tracing: timed, nestable regions of pipeline work.

A span is one timed region (a consistency check, a guard invocation,
a whole scenario run).  Spans nest: entering a span while another is
active records the parent-child relationship, so exporters can render
the capture → HBG → verify → repair pipeline as a tree with per-stage
wall time.

Usage, context-manager form::

    tracer = obs.get_tracer()
    with tracer.span("verify.guard", router="R2"):
        ...

or decorator form (the span context is created per call)::

    @obs.traced("snapshot.check")
    def check(...):
        ...

Finished spans also feed a ``span.<name>_seconds`` histogram in the
active metrics registry, so span latency shows up in every exporter
without separate plumbing.  :class:`NullTracer` (the default) makes
both forms free when tracing is off.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    start: float
    duration: float
    status: str = "ok"  # "ok" | "error"
    error: Optional[str] = None
    attrs: Dict[str, str] = field(default_factory=dict)

    def to_record(self) -> dict:
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _SpanContext:
    """Context manager *and* decorator for one span entry.

    As a decorator it creates a fresh span per call, so recursive and
    concurrent-looking call patterns each get their own record.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, str]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._span_id, self._start = self._tracer._push(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(
            self._span_id,
            self._name,
            self._start,
            self._attrs,
            error=exc if exc_type is not None else None,
        )
        return False  # never swallow exceptions

    def __call__(self, fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _SpanContext(self._tracer, self._name, dict(self._attrs)):
                return fn(*args, **kwargs)

        return wrapper


class Tracer:
    """Records spans into a bounded in-memory list.

    ``registry`` (optional) receives a ``span.<name>_seconds``
    histogram observation per finished span.  ``clock`` is injectable
    for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        registry=None,
        clock: Callable[[], float] = time.perf_counter,
        max_records: int = 10_000,
    ):
        self.registry = registry
        self.clock = clock
        self.max_records = max_records
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._ids = itertools.count(1)
        self._stack: List[int] = []  # active span ids, innermost last

    # -- public API --------------------------------------------------------

    def span(self, name: str, **attrs: str) -> _SpanContext:
        return _SpanContext(self, name, {k: str(v) for k, v in attrs.items()})

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def finished(self, name: Optional[str] = None) -> List[SpanRecord]:
        if name is None:
            return list(self.records)
        return [r for r in self.records if r.name == name]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self._stack.clear()

    # -- internals used by _SpanContext ------------------------------------

    def _push(self, name: str):
        span_id = next(self._ids)
        self._stack.append(span_id)
        return span_id, self.clock()

    def _pop(
        self,
        span_id: int,
        name: str,
        start: float,
        attrs: Dict[str, str],
        error: Optional[BaseException],
    ) -> None:
        duration = self.clock() - start
        # Exception-safe unwinding: drop this span and anything left
        # above it (children that escaped via the same exception).
        while self._stack and self._stack[-1] != span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        parent_id = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            depth=len(self._stack),
            start=start,
            duration=duration,
            status="error" if error is not None else "ok",
            error=repr(error) if error is not None else None,
            attrs=attrs,
        )
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1
        if self.registry is not None and self.registry.enabled:
            self.registry.histogram(f"span.{name}_seconds").observe(duration)

    # -- reporting ---------------------------------------------------------

    def summarise(self) -> List[dict]:
        """Per-name aggregate: calls, total/mean/max seconds, errors."""
        by_name: Dict[str, dict] = {}
        for record in self.records:
            agg = by_name.setdefault(
                record.name,
                {"name": record.name, "calls": 0, "errors": 0,
                 "total_seconds": 0.0, "max_seconds": 0.0},
            )
            agg["calls"] += 1
            agg["total_seconds"] += record.duration
            agg["max_seconds"] = max(agg["max_seconds"], record.duration)
            if record.status == "error":
                agg["errors"] += 1
        result = []
        for agg in by_name.values():
            agg["mean_seconds"] = agg["total_seconds"] / agg["calls"]
            result.append(agg)
        result.sort(key=lambda a: -a["total_seconds"])
        return result

    def render_tree(self, max_spans: int = 200) -> str:
        """Indented call-tree of recorded spans (record order)."""
        lines = []
        for record in self.records[:max_spans]:
            indent = "  " * record.depth
            flag = "" if record.status == "ok" else "  [ERROR]"
            lines.append(
                f"{indent}{record.name}  {record.duration * 1000:.3f}ms{flag}"
            )
        if len(self.records) > max_spans:
            lines.append(f"... {len(self.records) - max_spans} more span(s)")
        if self.dropped:
            lines.append(f"... {self.dropped} span(s) dropped (buffer full)")
        return "\n".join(lines)


class _NullSpanContext:
    """Shared, reusable no-op span (context manager + pass-through decorator)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __call__(self, fn: Callable) -> Callable:
        return fn


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Default tracer: spans cost one method call and nothing else."""

    enabled = False
    records: List[SpanRecord] = []
    dropped = 0

    def span(self, name: str, **attrs: str) -> _NullSpanContext:
        return _NULL_SPAN

    @property
    def active_depth(self) -> int:
        return 0

    def finished(self, name: Optional[str] = None) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        pass

    def summarise(self) -> List[dict]:
        return []

    def render_tree(self, max_spans: int = 200) -> str:
        return ""


NULL_TRACER = NullTracer()
