"""Deterministic sampling profiler attributing time to pipeline stages.

The bench gate can say *that* a build got slower; this module says
*where*.  It is a stdlib-only sampling profiler built on
``sys.setprofile``:

* the hook counts interpreter events (calls, returns, C-calls) and
  takes a stack sample every ``stride``-th event — event-paced rather
  than timer-paced, so a run of the same seed takes samples at the
  same points in the program;
* each sample is weighted either by wall time since the previous
  sample (``weights="wall"``, read through the obs
  :class:`~repro.obs.metrics.Stopwatch`, the only sanctioned wall
  clock) or by a constant 1.0 (``weights="events"``, byte-identical
  across runs — the mode the determinism tests use);
* frames are attributed to **pipeline stages** by source path
  (``net``/``protocols`` → sim, ``hbr`` → inference, …) and to
  individual **HBR rules** by function name for frames inside
  ``repro/hbr/rules.py``;
* results export as collapsed-stack lines, speedscope JSON, and
  ``profile.self_seconds{stage=}`` histograms via :meth:`publish`.

Like the flight recorder, profiling is **off by default** — and here
"off" costs literally nothing: no ``sys.setprofile`` hook is
installed, so the interpreter runs unperturbed (the tripping tests
assert ``sys.getprofile() is None`` when disabled).  Enable per
process with ``obs.enable_profiling()`` or scoped with
``obs.profiling()``.

The hook only observes the thread that installed it; profile the
thread doing the work (the CLI enables it on the main thread before
running a scenario).
"""

from __future__ import annotations

import sys
from types import FrameType
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Stopwatch

#: A frame identity: (source path, function name).
FrameKey = Tuple[str, str]
#: A sampled stack, root → leaf.
StackKey = Tuple[FrameKey, ...]

#: Top-level ``repro`` package → pipeline stage.
STAGE_BY_PACKAGE: Dict[str, str] = {
    "net": "sim",
    "protocols": "sim",
    "scenarios": "sim",
    "capture": "capture",
    "hbr": "inference",
    "snapshot": "snapshot",
    "verify": "verify",
    "repair": "repair",
    "core": "pipeline",
    "whatif": "whatif",
    "testkit": "testkit",
    "obs": "obs",
}

_EVENTS = frozenset({"call", "return", "c_call", "c_return"})


def stage_for_path(filename: str) -> str:
    """Pipeline stage for a source path (``other`` when unknown)."""
    parts = filename.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return STAGE_BY_PACKAGE.get(parts[i + 1], "other")
    return "other"


def _is_rule_frame(key: FrameKey) -> bool:
    filename, _name = key
    normal = filename.replace("\\", "/")
    return normal.endswith("repro/hbr/rules.py")


class DeterministicProfiler:
    """Event-paced sampling profiler (see module docstring)."""

    enabled = True

    def __init__(
        self,
        stride: int = 97,
        weights: str = "wall",
        max_stack: int = 64,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if weights not in ("wall", "events"):
            raise ValueError(f"unknown weights mode: {weights!r}")
        if max_stack < 1:
            raise ValueError("max_stack must be >= 1")
        self.stride = stride
        self.weights = weights
        self.max_stack = max_stack
        self.events_total = 0
        self.samples_total = 0
        #: stack → accumulated weight (seconds or sample count).
        self._stacks: Dict[StackKey, float] = {}
        #: source path → stage, memoised (hook-path hot).
        self._stage_cache: Dict[str, str] = {}
        self._running = False
        self._watch: Optional[Stopwatch] = None
        self._wall = Stopwatch()
        self._wall_seconds = 0.0
        # Bound once: ``self._hook`` creates a fresh bound-method
        # object per access, which would defeat the identity check
        # in :meth:`stop`.
        self._installed_hook: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Install the ``sys.setprofile`` hook on the calling thread."""
        if self._running:
            return
        self._running = True
        self._wall.restart()
        if self.weights == "wall":
            self._watch = Stopwatch()
        self._installed_hook = self._hook
        sys.setprofile(self._installed_hook)

    def stop(self) -> None:
        """Remove the hook (idempotent; only removes *our* hook)."""
        if not self._running:
            return
        self._running = False
        self._wall_seconds += self._wall.elapsed()
        if sys.getprofile() is self._installed_hook:
            sys.setprofile(None)
        self._installed_hook = None

    @property
    def running(self) -> bool:
        return self._running

    def wall_seconds(self) -> float:
        """Wall time spent with the hook installed."""
        if self._running:
            return self._wall_seconds + self._wall.elapsed()
        return self._wall_seconds

    def samples_per_sec(self) -> float:
        wall = self.wall_seconds()
        return self.samples_total / wall if wall > 0 else 0.0

    # -- the hook ----------------------------------------------------------

    def _hook(self, frame: FrameType, event: str, arg: Any) -> None:
        if event not in _EVENTS:
            return
        self.events_total += 1
        if self.events_total % self.stride:
            return
        if self._watch is not None:
            weight = self._watch.elapsed()
            self._watch.restart()
        else:
            weight = 1.0
        stack: List[FrameKey] = []
        current: Optional[FrameType] = frame
        while current is not None and len(stack) < self.max_stack:
            code = current.f_code
            stack.append((code.co_filename, code.co_name))
            current = current.f_back
        stack.reverse()
        key: StackKey = tuple(stack)
        self._stacks[key] = self._stacks.get(key, 0.0) + weight
        self.samples_total += 1

    # -- attribution -------------------------------------------------------

    def _stage_of(self, key: FrameKey) -> str:
        filename = key[0]
        stage = self._stage_cache.get(filename)
        if stage is None:
            stage = stage_for_path(filename)
            self._stage_cache[filename] = stage
        return stage

    def stacks(self) -> Dict[StackKey, float]:
        """Sampled stacks (root → leaf) and accumulated weights."""
        return dict(self._stacks)

    def self_weight_by_stage(self) -> Dict[str, float]:
        """Sample weight attributed to each stage's *leaf* frames."""
        totals: Dict[str, float] = {}
        for stack, weight in self._stacks.items():
            stage = self._stage_of(stack[-1]) if stack else "other"
            totals[stage] = totals.get(stage, 0.0) + weight
        return totals

    def self_weight_by_rule(self) -> Dict[str, float]:
        """Sample weight attributed to HBR rules (deepest rule frame)."""
        totals: Dict[str, float] = {}
        for stack, weight in self._stacks.items():
            for key in reversed(stack):
                if _is_rule_frame(key):
                    rule = key[1]
                    totals[rule] = totals.get(rule, 0.0) + weight
                    break
        return totals

    # -- exports -----------------------------------------------------------

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;leaf weight``), sorted."""
        lines: List[str] = []
        for stack, weight in self._stacks.items():
            path = ";".join(f"{self._frame_label(k)}" for k in stack)
            lines.append(f"{path} {weight:.9g}")
        return sorted(lines)

    def _frame_label(self, key: FrameKey) -> str:
        filename, name = key
        normal = filename.replace("\\", "/")
        marker = "/repro/"
        idx = normal.rfind(marker)
        short = normal[idx + 1 :] if idx >= 0 else normal.rsplit("/", 1)[-1]
        return f"{short}:{name}"

    def speedscope(self, name: str = "repro") -> Dict[str, Any]:
        """The profile as a speedscope ``sampled`` document."""
        frame_index: Dict[FrameKey, int] = {}
        frames: List[Dict[str, str]] = []
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack in sorted(self._stacks):
            indices: List[int] = []
            for key in stack:
                idx = frame_index.get(key)
                if idx is None:
                    idx = len(frames)
                    frame_index[key] = idx
                    frames.append({"name": key[1], "file": key[0]})
                indices.append(idx)
            samples.append(indices)
            weights.append(self._stacks[stack])
        total = sum(weights)
        unit = "seconds" if self.weights == "wall" else "none"
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profiler",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": unit,
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def publish(self, registry: Any = None) -> None:
        """Emit ``profile.*`` metrics into the registry.

        ``profile.self_seconds{stage=}`` carries per-sample self
        weight; ``profile.rule_self_seconds{rule=}`` the HBR-rule
        slice; plus counters for samples/events and the sampling rate
        gauge the bench trajectory records.
        """
        if registry is None:
            from repro import obs

            registry = obs.get_registry()
        if not registry.enabled:
            return
        for stack, weight in sorted(self._stacks.items()):
            stage = self._stage_of(stack[-1]) if stack else "other"
            registry.histogram("profile.self_seconds", stage=stage).observe(
                weight
            )
        for rule, weight in sorted(self.self_weight_by_rule().items()):
            registry.histogram(
                "profile.rule_self_seconds", rule=rule
            ).observe(weight)
        registry.counter("profile.samples_total").inc(self.samples_total)
        registry.counter("profile.events_total").inc(self.events_total)
        registry.gauge("profile.samples_per_sec").set(self.samples_per_sec())

    def clear(self) -> None:
        self._stacks.clear()
        self.events_total = 0
        self.samples_total = 0
        self._wall_seconds = 0.0
        self._wall.restart()

    def __repr__(self) -> str:
        return (
            f"DeterministicProfiler(stride={self.stride}, "
            f"weights={self.weights!r}, samples={self.samples_total})"
        )


class NullProfiler:
    """The default profiler: nothing installed, nothing measured."""

    enabled = False
    running = False
    stride = 0
    weights = "none"
    events_total = 0
    samples_total = 0

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def wall_seconds(self) -> float:
        return 0.0

    def samples_per_sec(self) -> float:
        return 0.0

    def stacks(self) -> Dict[StackKey, float]:
        return {}

    def self_weight_by_stage(self) -> Dict[str, float]:
        return {}

    def self_weight_by_rule(self) -> Dict[str, float]:
        return {}

    def collapsed(self) -> List[str]:
        return []

    def speedscope(self, name: str = "repro") -> Dict[str, Any]:
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profiler",
            "shared": {"frames": []},
            "profiles": [],
        }

    def publish(self, registry: Any = None) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_PROFILER = NullProfiler()
