"""Latency attribution: which HBR hop cost the most, root cause → FIB?

§6 of the paper treats leaf nodes of an HBG ancestry walk as the root
cause(s) of an observed problem.  This pass runs the walk in the
forward direction for *every* FIB update in a graph: find its root
causes, take the causal chain from each root to the FIB write, and
charge the time between consecutive chain events to the HBR rule that
produced that edge.  The result answers the Delta-net-style question
— per-update latency attribution, not averages — directly from a
recorded run.

Outputs land in two places:

* the metrics registry (when one is passed or the process-wide one is
  enabled): ``trace.hop_latency_seconds{rule=...}`` histograms per
  HBR rule, a ``trace.root_to_fib_seconds`` end-to-end histogram, and
  ``trace.attributed_paths_total`` / ``trace.unattributed_fib_updates_total``
  counters;
* an :class:`AttributionReport` value with per-rule summaries and
  per-path hop breakdowns, renderable as a table or a JSON dict.

The graph is duck-typed (``events`` / ``parents`` / ``root_causes`` /
``causal_chain`` in the :class:`repro.hbr.graph.HappensBeforeGraph`
shape); FIB updates are recognised by ``event.kind.value`` so this
module never imports the capture layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: ``IOKind.value`` of the events attribution terminates at.
FIB_UPDATE_KIND = "fib_update"


@dataclass(frozen=True)
class Hop:
    """One cause→effect step on an attributed path."""

    cause: int
    effect: int
    rule: str
    technique: str
    confidence: float
    seconds: float


@dataclass(frozen=True)
class AttributedPath:
    """One root-cause → FIB-update chain with per-hop charges."""

    root: int
    fib_update: int
    router: str
    seconds: float
    hops: Tuple[Hop, ...]

    @property
    def slowest_hop(self) -> Optional[Hop]:
        if not self.hops:
            return None
        return max(self.hops, key=lambda hop: hop.seconds)


@dataclass
class RuleSummary:
    """Aggregate per-HBR-rule hop latency over all attributed paths."""

    rule: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class AttributionReport:
    """Everything the latency-attribution pass learned from one graph."""

    paths: List[AttributedPath] = field(default_factory=list)
    per_rule: Dict[str, RuleSummary] = field(default_factory=dict)
    fib_updates: int = 0
    unattributed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fib_updates": self.fib_updates,
            "attributed_paths": len(self.paths),
            "unattributed_fib_updates": self.unattributed,
            "per_rule": {
                rule: {
                    "hops": summary.count,
                    "total_seconds": round(summary.total_seconds, 9),
                    "mean_seconds": round(summary.mean_seconds, 9),
                    "max_seconds": round(summary.max_seconds, 9),
                }
                for rule, summary in sorted(self.per_rule.items())
            },
            "paths": [
                {
                    "root": path.root,
                    "fib_update": path.fib_update,
                    "router": path.router,
                    "seconds": round(path.seconds, 9),
                    "hops": [
                        {
                            "cause": hop.cause,
                            "effect": hop.effect,
                            "rule": hop.rule,
                            "technique": hop.technique,
                            "confidence": round(hop.confidence, 6),
                            "seconds": round(hop.seconds, 9),
                        }
                        for hop in path.hops
                    ],
                }
                for path in self.paths
            ],
        }

    def table_lines(self) -> List[str]:
        """Human-readable per-rule + slowest-hop summary."""
        lines = [
            "latency attribution"
            f"  (fib updates: {self.fib_updates}, attributed paths: "
            f"{len(self.paths)}, unattributed: {self.unattributed})",
            "",
            f"{'rule':<28} {'hops':>5} {'mean ms':>10} {'max ms':>10} "
            f"{'total ms':>10}",
        ]
        for rule in sorted(self.per_rule):
            summary = self.per_rule[rule]
            lines.append(
                f"{rule:<28} {summary.count:>5d} "
                f"{summary.mean_seconds * 1e3:>10.3f} "
                f"{summary.max_seconds * 1e3:>10.3f} "
                f"{summary.total_seconds * 1e3:>10.3f}"
            )
        slow = sorted(
            self.paths, key=lambda p: p.seconds, reverse=True
        )[:5]
        if slow:
            lines.append("")
            lines.append("slowest root→FIB paths:")
            for path in slow:
                hop = path.slowest_hop
                culprit = (
                    f"slowest hop #{hop.cause}->#{hop.effect} "
                    f"({hop.rule or hop.technique}, "
                    f"{hop.seconds * 1e3:.3f} ms)"
                    if hop is not None
                    else "no hops"
                )
                lines.append(
                    f"  #{path.root} -> #{path.fib_update} "
                    f"[{path.router}] {path.seconds * 1e3:.3f} ms; "
                    f"{culprit}"
                )
        return lines


def _hop_evidence(graph, cause_id: int, effect_id: int):
    for parent, evidence in graph.parents(effect_id):
        if parent.event_id == cause_id:
            return evidence
    return None


def attribute_latency(
    graph,
    registry=None,
    min_confidence: float = 0.0,
) -> AttributionReport:
    """Walk every root-cause → FIB-update chain and charge each hop.

    ``registry`` defaults to the process-wide metrics registry, so
    calling this inside ``obs.capturing()`` populates ``trace.*``
    histograms without further wiring; pass an explicit registry (or
    leave metrics disabled) to keep the pass side-effect free.
    """
    if registry is None:
        from repro import obs

        registry = obs.get_registry()

    report = AttributionReport()
    for event in graph.events():
        if event.kind.value != FIB_UPDATE_KIND:
            continue
        report.fib_updates += 1
        roots = graph.root_causes(event.event_id, min_confidence)
        attributed = False
        for root in roots:
            if root.event_id == event.event_id:
                continue  # isolated FIB write: its own root, no path
            chain = graph.causal_chain(
                root.event_id, event.event_id, min_confidence
            )
            if chain is None or len(chain) < 2:
                continue
            hops: List[Hop] = []
            for cause, effect in zip(chain, chain[1:]):
                evidence = _hop_evidence(
                    graph, cause.event_id, effect.event_id
                )
                dt = max(0.0, effect.timestamp - cause.timestamp)
                rule = (
                    (evidence.rule or evidence.technique)
                    if evidence is not None
                    else "unknown"
                )
                hops.append(
                    Hop(
                        cause=cause.event_id,
                        effect=effect.event_id,
                        rule=rule,
                        technique=(
                            evidence.technique
                            if evidence is not None
                            else "unknown"
                        ),
                        confidence=(
                            evidence.confidence
                            if evidence is not None
                            else 0.0
                        ),
                        seconds=dt,
                    )
                )
            total = max(0.0, event.timestamp - root.timestamp)
            path = AttributedPath(
                root=root.event_id,
                fib_update=event.event_id,
                router=event.router,
                seconds=total,
                hops=tuple(hops),
            )
            report.paths.append(path)
            attributed = True
            for hop in hops:
                summary = report.per_rule.setdefault(
                    hop.rule, RuleSummary(rule=hop.rule)
                )
                summary.observe(hop.seconds)
            if registry.enabled:
                for hop in hops:
                    registry.histogram(
                        "trace.hop_latency_seconds", rule=hop.rule
                    ).observe(hop.seconds)
                registry.histogram(
                    "trace.root_to_fib_seconds"
                ).observe(total)
                registry.counter("trace.attributed_paths_total").inc()
        if not attributed:
            report.unattributed += 1
            if registry.enabled:
                registry.counter(
                    "trace.unattributed_fib_updates_total"
                ).inc()
    return report
