"""The flight recorder: a bounded ring buffer of causal trace events.

Aggregate counters (PR 1) answer *how much*; the flight recorder
answers *what happened, in what order*.  Every pipeline stage —
simulator event firings, captured I/Os, HBR rule firings, snapshot
builds, verify verdicts, provenance walks, rollbacks — appends one
:class:`TraceEvent` to the process-wide recorder when recording is
enabled.  Events carry the **same event ids** the capture layer and
the HBG use, so a recorded ``IO_CAPTURED`` entry can be joined to its
HBG vertex after the fact, and a recorded ``HBR_EDGE`` entry names
the exact cause→effect pair an inference rule produced.

Design constraints, mirroring :mod:`repro.obs.metrics`:

* **Off by default.**  The module-level recorder is a shared
  :class:`NullRecorder`; instrumented hot paths pay a single
  attribute check (``recorder.enabled``) per site and nothing else.
* **Bounded.**  The buffer is a ring of ``capacity`` events.  On
  overflow the default policy evicts the oldest event
  (``drop-oldest``); ``drop-newest`` keeps the head of the run
  instead.  Either way memory is O(capacity) for arbitrarily long
  captures, and the eviction count is reported.
* **Deterministic.**  Trace events carry *simulation* timestamps and
  a monotonic sequence number — never a wall clock — so two runs of
  the same seed record byte-identical traces (the same invariant the
  testkit's replay-determinism oracle enforces).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


class TraceKind(enum.Enum):
    """What a recorded event witnesses, one member per pipeline stage.

    Kept in lockstep with ``TRACE_SITES`` in
    :mod:`repro.lint.rules.obs_rules` (a tier-1 test fails when the
    two drift apart).
    """

    #: One simulator callback fired (``repro.net.simulator``).
    SIM_EVENT = "sim_event"
    #: One control-plane I/O ingested by the collector; ``event_id``
    #: joins to the HBG vertex of the same id.
    IO_CAPTURED = "io_captured"
    #: One HBR edge emitted by inference; ``event_id`` is the effect,
    #: ``attrs`` carry the cause id, rule name, and confidence.
    HBR_EDGE = "hbr_edge"
    #: One data-plane snapshot reconstructed from FIB events.
    SNAPSHOT_BUILD = "snapshot_build"
    #: One verifier pass over a snapshot (violation count in attrs).
    VERIFY_VERDICT = "verify_verdict"
    #: One provenance walk from a problematic event to HBG leaves.
    PROVENANCE_WALK = "provenance_walk"
    #: One repair-engine rollback episode (reverts applied/failed).
    ROLLBACK = "rollback"
    #: One health-engine evaluation tick (per-rule verdicts in attrs);
    #: failing rules additionally record one HEALTH event each.
    HEALTH = "health"


#: Overflow policies accepted by :class:`FlightRecorder`.
OVERFLOW_POLICIES = ("drop-oldest", "drop-newest")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded pipeline occurrence.

    ``seq`` is the recorder-assigned monotonic sequence number (total
    order of recording).  ``at`` is the simulation timestamp of the
    occurrence.  ``event_id``, when present, is the capture-layer
    event id — the join key into the HBG.
    """

    seq: int
    kind: TraceKind
    at: float
    router: Optional[str] = None
    event_id: Optional[int] = None
    detail: str = ""
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def to_record(self) -> Dict[str, Any]:
        """A flat dict for serialisation (artifacts, exports)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind.value,
            "at": self.at,
        }
        if self.router is not None:
            record["router"] = self.router
        if self.event_id is not None:
            record["event_id"] = self.event_id
        if self.detail:
            record["detail"] = self.detail
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_record`."""
        return cls(
            seq=int(record["seq"]),
            kind=TraceKind(record["kind"]),
            at=float(record["at"]),
            router=record.get("router"),
            event_id=(
                int(record["event_id"])
                if record.get("event_id") is not None
                else None
            ),
            detail=str(record.get("detail", "")),
            attrs=tuple(sorted((record.get("attrs") or {}).items())),
        )


class FlightRecorder:
    """Bounded ring buffer of :class:`TraceEvent`\\ s."""

    enabled = True

    def __init__(
        self, capacity: int = 4096, overflow: str = "drop-oldest"
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r} "
                f"(expected one of {', '.join(OVERFLOW_POLICIES)})"
            )
        self.capacity = capacity
        self.overflow = overflow
        #: Events recorded over the recorder's lifetime (kept or not).
        self.recorded_total = 0
        #: Events lost to the overflow policy.
        self.dropped = 0
        self._events: List[TraceEvent] = []
        #: Ring start index (oldest kept event) for drop-oldest mode.
        self._start = 0
        self._next_seq = 1
        # Lazy import: this module is imported while ``repro.obs``'s
        # own __init__ is still executing.
        from repro import obs

        ledger = obs.get_ledger()
        if ledger.enabled:
            ledger.register("obs.recorder", self)

    def account_bytes(self, audit: bool = False) -> int:
        """Resident bytes of the ring buffer (ledger callback)."""
        from repro import obs
        from repro.obs import resources

        return resources.combined_sizeof(
            (self._events,),
            sample=None if audit else obs.get_ledger().sample,
        )

    # -- writing -----------------------------------------------------------

    def record(
        self,
        kind: TraceKind,
        at: float,
        router: Optional[str] = None,
        event_id: Optional[int] = None,
        detail: str = "",
        **attrs: Any,
    ) -> Optional[TraceEvent]:
        """Append one event; returns it (or None when dropped)."""
        self.recorded_total += 1
        event = TraceEvent(
            seq=self._next_seq,
            kind=kind,
            at=float(at),
            router=router,
            event_id=event_id,
            detail=detail,
            attrs=tuple(sorted(attrs.items())) if attrs else (),
        )
        self._next_seq += 1
        live = len(self._events) - self._start
        if live < self.capacity:
            self._events.append(event)
        elif self.overflow == "drop-newest":
            self.dropped += 1
            return None
        else:  # drop-oldest: slide the ring window forward
            self._events.append(event)
            self._start += 1
            self.dropped += 1
            # Compact lazily so the backing list stays O(capacity).
            if self._start >= self.capacity:
                self._events = self._events[self._start :]
                self._start = 0
        return event

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events) - self._start

    def events(
        self,
        kind: Optional[TraceKind] = None,
        router: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Kept events in recording order, optionally filtered."""
        kept = self._events[self._start :]
        if kind is not None:
            kept = [e for e in kept if e.kind is kind]
        if router is not None:
            kept = [e for e in kept if e.router == router]
        return kept

    def tail(self, n: int) -> List[TraceEvent]:
        """The last ``n`` kept events (recording order preserved)."""
        if n <= 0:
            return []
        kept = self._events[self._start :]
        return kept[-n:]

    def to_records(self) -> List[Dict[str, Any]]:
        return [event.to_record() for event in self.events()]

    def clear(self) -> None:
        self._events.clear()
        self._start = 0
        self.dropped = 0
        self.recorded_total = 0

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, kept={len(self)}, "
            f"dropped={self.dropped}, overflow={self.overflow!r})"
        )


class NullRecorder:
    """The default recorder: recording is a single attribute check.

    ``enabled`` is False so instrumented sites skip argument
    construction entirely; ``record`` still exists (and no-ops) so a
    site that forgets the guard stays correct, merely slower.
    """

    enabled = False
    capacity = 0
    overflow = "drop-oldest"
    recorded_total = 0
    dropped = 0

    def record(
        self,
        kind: TraceKind,
        at: float,
        router: Optional[str] = None,
        event_id: Optional[int] = None,
        detail: str = "",
        **attrs: Any,
    ) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def events(self, kind=None, router=None) -> List[TraceEvent]:
        return []

    def tail(self, n: int) -> List[TraceEvent]:
        return []

    def to_records(self) -> List[Dict[str, Any]]:
        return []

    def clear(self) -> None:
        pass


NULL_RECORDER = NullRecorder()
