"""Causal trace exporters: HBG + flight recorder → viewable traces.

The happens-before graph already *is* a distributed trace: vertices
are timed events on named routers, and edges are causal parent
links.  These exporters serialise that structure into formats
existing tooling can open:

* :func:`chrome_trace` — Chrome trace-event JSON (the format
  Perfetto and ``chrome://tracing`` load).  One track (``tid``) per
  router; each I/O event is a complete ("X") slice whose duration
  spans until its last HBG child fires; every HBG edge becomes one
  flow arrow (an ``s``/``f`` pair) from cause to effect.
* :func:`otlp_spans` — an OTLP-style JSON span tree
  (``resourceSpans`` → ``scopeSpans`` → ``spans``).  Each HBG vertex
  is a span; its highest-confidence parent becomes ``parentSpanId``
  and every remaining in-edge becomes a span *link*, so the full
  edge set survives the tree-ification.
* :func:`text_timeline` — a plain per-router timeline for terminals.

Each exporter takes the graph duck-typed (anything with
``events()`` / ``edges()`` / ``parents()`` / ``children()`` in the
:class:`repro.hbr.graph.HappensBeforeGraph` shape) plus an optional
:class:`~repro.obs.trace.recorder.FlightRecorder` whose non-I/O
events (snapshot builds, verdicts, provenance walks, rollbacks) land
on a dedicated ``pipeline`` track.

:func:`validate_chrome_trace` and :func:`validate_otlp_spans` are the
structural schema checks CI and the test suite run against every
export: required keys present, flow/parent references resolve, and
per-track timestamps non-decreasing.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace.recorder import TraceKind

#: Trace-event kinds that duplicate HBG vertices (skipped on the
#: pipeline track when a graph is being exported alongside).
_GRAPH_DUPLICATE_KINDS = (TraceKind.IO_CAPTURED, TraceKind.HBR_EDGE)

#: The synthetic track carrying recorder (non-I/O) events.
PIPELINE_TRACK = "pipeline"


def _us(seconds: float) -> float:
    """Simulation seconds → trace-event microseconds."""
    return round(seconds * 1_000_000.0, 3)


def _durations(graph, min_confidence: float = 0.0) -> Dict[int, float]:
    """Per-vertex duration: time until the last direct HBG child.

    Leaf events (no children above the bar) get zero duration and are
    rendered as minimal slices; everything else visually spans its
    propagation window, which is what makes per-hop latency readable
    in Perfetto.
    """
    durations: Dict[int, float] = {}
    for event in graph.events():
        children = graph.children(event.event_id, min_confidence)
        if children:
            last = max(child.timestamp for child, _evidence in children)
            durations[event.event_id] = max(0.0, last - event.timestamp)
        else:
            durations[event.event_id] = 0.0
    return durations


def _sorted_events(graph) -> List[Any]:
    return sorted(graph.events(), key=lambda e: (e.timestamp, e.event_id))


def _routers(graph) -> List[str]:
    return sorted({event.router for event in graph.events()})


def _event_args(event) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "event_id": event.event_id,
        "kind": event.kind.value,
        "describe": event.describe(),
    }
    if event.protocol:
        args["protocol"] = event.protocol
    if event.prefix is not None:
        args["prefix"] = str(event.prefix)
    if event.peer:
        args["peer"] = event.peer
    return args


# -- Chrome trace-event / Perfetto -------------------------------------------


def chrome_trace(
    graph,
    recorder=None,
    min_confidence: float = 0.0,
) -> Dict[str, Any]:
    """Chrome trace-event JSON document (Perfetto-loadable)."""
    routers = _routers(graph)
    tids = {router: index + 1 for index, router in enumerate(routers)}
    pipeline_tid = len(routers) + 1
    durations = _durations(graph, min_confidence)

    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro control plane"},
        }
    ]
    for router in routers:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[router],
                "args": {"name": router},
            }
        )

    for event in _sorted_events(graph):
        trace_events.append(
            {
                "name": event.kind.value,
                "cat": "io",
                "ph": "X",
                "ts": _us(event.timestamp),
                "dur": max(_us(durations[event.event_id]), 1.0),
                "pid": 1,
                "tid": tids[event.router],
                "args": _event_args(event),
            }
        )

    flow_id = 0
    for edge in graph.edges():
        if edge.evidence.confidence < min_confidence:
            continue
        flow_id += 1
        cause = graph.event(edge.cause)
        effect = graph.event(edge.effect)
        args = {
            "cause": edge.cause,
            "effect": edge.effect,
            "technique": edge.evidence.technique,
            "rule": edge.evidence.rule,
            "confidence": round(edge.evidence.confidence, 6),
        }
        name = edge.evidence.rule or edge.evidence.technique
        trace_events.append(
            {
                "name": name,
                "cat": "hbg",
                "ph": "s",
                "id": flow_id,
                "ts": _us(cause.timestamp),
                "pid": 1,
                "tid": tids[cause.router],
                "args": args,
            }
        )
        trace_events.append(
            {
                "name": name,
                "cat": "hbg",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": _us(effect.timestamp),
                "pid": 1,
                "tid": tids[effect.router],
                "args": args,
            }
        )

    recorder_rows = _pipeline_rows(recorder)
    if recorder_rows:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": pipeline_tid,
                "args": {"name": PIPELINE_TRACK},
            }
        )
        for record in recorder_rows:
            trace_events.append(
                {
                    "name": record.kind.value,
                    "cat": "pipeline",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(record.at),
                    "pid": 1,
                    "tid": pipeline_tid,
                    "args": {
                        "seq": record.seq,
                        **({"router": record.router} if record.router else {}),
                        **(
                            {"event_id": record.event_id}
                            if record.event_id is not None
                            else {}
                        ),
                        **({"detail": record.detail} if record.detail else {}),
                        **dict(record.attrs),
                    },
                }
            )

    return {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
        "otherData": {
            "tool": "repro.obs.trace",
            "routers": routers,
            "hbg_edges": flow_id,
            "recorder_events": len(recorder_rows),
            "recorder_dropped": getattr(recorder, "dropped", 0)
            if recorder is not None
            else 0,
        },
    }


def _pipeline_rows(recorder) -> List[Any]:
    """Recorder events for the pipeline track, sorted by (at, seq)."""
    if recorder is None:
        return []
    rows = [
        event
        for event in recorder.events()
        if event.kind not in _GRAPH_DUPLICATE_KINDS
    ]
    rows.sort(key=lambda e: (e.at, e.seq))
    return rows


_CHROME_REQUIRED_BY_PHASE = {
    "M": ("name", "pid", "tid", "args"),
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "s": ("name", "id", "ts", "pid", "tid"),
    "f": ("name", "id", "ts", "pid", "tid"),
}


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural schema check; returns problems (empty = valid)."""
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flows: Dict[Any, Dict[str, float]] = {}
    last_ts_by_track: Dict[Tuple[Any, Any], float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{index}] is not an object")
            continue
        phase = event.get("ph")
        required = _CHROME_REQUIRED_BY_PHASE.get(phase)
        if required is None:
            problems.append(f"traceEvents[{index}] has unknown ph={phase!r}")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(
                f"traceEvents[{index}] (ph={phase}) missing "
                f"{', '.join(missing)}"
            )
            continue
        if phase == "X":
            track = (event["pid"], event["tid"])
            ts = float(event["ts"])
            if ts < last_ts_by_track.get(track, float("-inf")):
                problems.append(
                    f"traceEvents[{index}]: timestamp decreases on track "
                    f"{track}"
                )
            last_ts_by_track[track] = ts
        if phase in ("s", "f"):
            flows.setdefault(event["id"], {})[phase] = float(event["ts"])
    for flow_id, ends in flows.items():
        if set(ends) != {"s", "f"}:
            problems.append(f"flow {flow_id} is missing an s/f endpoint")
        elif ends["f"] < ends["s"]:
            problems.append(f"flow {flow_id} finishes before it starts")
    return problems


def chrome_flow_edges(document: Dict[str, Any]) -> set:
    """The (cause, effect) pairs encoded as flow events in an export.

    This is the join key the acceptance test uses to verify that span
    parent links match HBG edges exactly.
    """
    edges = set()
    for event in document.get("traceEvents", ()):
        if event.get("ph") == "s":
            args = event.get("args", {})
            edges.add((args.get("cause"), args.get("effect")))
    return edges


# -- OTLP-style span tree ----------------------------------------------------


def span_id(event_id: int) -> str:
    """Deterministic 16-hex-digit span id for one HBG vertex."""
    digest = hashlib.sha256(f"repro-event:{event_id}".encode("utf-8"))
    return digest.hexdigest()[:16]


def _trace_id(graph) -> str:
    blob = ",".join(str(e.event_id) for e in graph.events())
    return hashlib.sha256(f"repro-trace:{blob}".encode("utf-8")).hexdigest()[
        :32
    ]


def _otlp_value(value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attrs(mapping: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        {"key": key, "value": _otlp_value(value)}
        for key, value in mapping.items()
        if value is not None and value != ""
    ]


def _primary_parent(graph, event_id: int, min_confidence: float):
    """The in-edge promoted to OTLP parent: highest confidence wins,
    latest (timestamp, id) breaks ties — deterministic either way."""
    parents = graph.parents(event_id, min_confidence)
    if not parents:
        return None
    return max(
        parents,
        key=lambda pair: (
            pair[1].confidence,
            pair[0].timestamp,
            pair[0].event_id,
        ),
    )


def otlp_spans(
    graph,
    recorder=None,
    min_confidence: float = 0.0,
    service_name: str = "repro",
) -> Dict[str, Any]:
    """OTLP-style JSON span tree over the HBG."""
    trace_id = _trace_id(graph)
    durations = _durations(graph, min_confidence)
    spans: List[Dict[str, Any]] = []
    for event in _sorted_events(graph):
        start = int(round(event.timestamp * 1_000_000_000))
        end = start + int(round(durations[event.event_id] * 1_000_000_000))
        primary = _primary_parent(graph, event.event_id, min_confidence)
        links = []
        for ante, evidence in graph.parents(event.event_id, min_confidence):
            if primary is not None and ante.event_id == primary[0].event_id:
                continue
            links.append(
                {
                    "traceId": trace_id,
                    "spanId": span_id(ante.event_id),
                    "attributes": _otlp_attrs(
                        {
                            "hbg.rule": evidence.rule,
                            "hbg.technique": evidence.technique,
                            "hbg.confidence": round(evidence.confidence, 6),
                        }
                    ),
                }
            )
        attrs = {
            "net.router": event.router,
            "repro.event_id": event.event_id,
            "repro.kind": event.kind.value,
            "repro.describe": event.describe(),
        }
        if primary is not None:
            attrs["hbg.parent_rule"] = (
                primary[1].rule or primary[1].technique
            )
            attrs["hbg.parent_confidence"] = round(
                primary[1].confidence, 6
            )
        span: Dict[str, Any] = {
            "traceId": trace_id,
            "spanId": span_id(event.event_id),
            "parentSpanId": (
                span_id(primary[0].event_id) if primary is not None else ""
            ),
            "name": event.kind.value,
            "kind": "SPAN_KIND_INTERNAL",
            "startTimeUnixNano": str(start),
            "endTimeUnixNano": str(end),
            "attributes": _otlp_attrs(attrs),
        }
        if links:
            span["links"] = links
        spans.append(span)

    events_block = [
        {
            "timeUnixNano": str(int(round(record.at * 1_000_000_000))),
            "name": record.kind.value,
            "attributes": _otlp_attrs(
                {"seq": record.seq, "router": record.router, **dict(record.attrs)}
            ),
        }
        for record in _pipeline_rows(recorder)
    ]

    scope_spans: List[Dict[str, Any]] = [
        {
            "scope": {"name": "repro.obs.trace", "version": "1"},
            "spans": spans,
        }
    ]
    document: Dict[str, Any] = {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _otlp_attrs({"service.name": service_name})
                },
                "scopeSpans": scope_spans,
            }
        ]
    }
    if events_block:
        document["resourceSpans"][0]["pipelineEvents"] = events_block
    return document


_OTLP_SPAN_REQUIRED = (
    "traceId",
    "spanId",
    "parentSpanId",
    "name",
    "startTimeUnixNano",
    "endTimeUnixNano",
)


def validate_otlp_spans(document: Dict[str, Any]) -> List[str]:
    """Structural schema check; returns problems (empty = valid)."""
    problems: List[str] = []
    resource_spans = document.get("resourceSpans")
    if not isinstance(resource_spans, list) or not resource_spans:
        return ["resourceSpans missing or empty"]
    all_spans: List[Dict[str, Any]] = []
    for block in resource_spans:
        for scope in block.get("scopeSpans", ()):
            all_spans.extend(scope.get("spans", ()))
    if not all_spans:
        problems.append("no spans in any scopeSpans block")
    ids = set()
    for index, span in enumerate(all_spans):
        missing = [key for key in _OTLP_SPAN_REQUIRED if key not in span]
        if missing:
            problems.append(f"spans[{index}] missing {', '.join(missing)}")
            continue
        ids.add(span["spanId"])
        if int(span["endTimeUnixNano"]) < int(span["startTimeUnixNano"]):
            problems.append(f"spans[{index}] ends before it starts")
    last_start_by_router: Dict[str, int] = {}
    for index, span in enumerate(all_spans):
        if any(key not in span for key in _OTLP_SPAN_REQUIRED):
            continue
        parent = span["parentSpanId"]
        if parent and parent not in ids:
            problems.append(
                f"spans[{index}] parentSpanId {parent} resolves to no span"
            )
        for link in span.get("links", ()):
            if link.get("spanId") not in ids:
                problems.append(
                    f"spans[{index}] link {link.get('spanId')} resolves to "
                    "no span"
                )
        router = _span_attr(span, "net.router") or ""
        start = int(span["startTimeUnixNano"])
        if start < last_start_by_router.get(router, -1):
            problems.append(
                f"spans[{index}]: start time decreases on router track "
                f"{router!r}"
            )
        last_start_by_router[router] = start
    return problems


def _span_attr(span: Dict[str, Any], key: str) -> Optional[Any]:
    for attr in span.get("attributes", ()):
        if attr.get("key") == key:
            value = attr.get("value", {})
            for slot in ("stringValue", "intValue", "doubleValue", "boolValue"):
                if slot in value:
                    return value[slot]
    return None


def otlp_parent_edges(document: Dict[str, Any]) -> set:
    """(cause, effect) pairs covered by parents *and* links.

    Together these must reproduce the HBG edge set exactly — the
    tree-ification may demote an edge to a link but never lose one.
    """
    spans: List[Dict[str, Any]] = []
    for block in document.get("resourceSpans", ()):
        for scope in block.get("scopeSpans", ()):
            spans.extend(scope.get("spans", ()))
    by_span_id = {
        span["spanId"]: _span_attr(span, "repro.event_id") for span in spans
    }
    edges = set()
    for span in spans:
        effect = _span_attr(span, "repro.event_id")
        parent = span.get("parentSpanId")
        if parent:
            edges.add((int(by_span_id[parent]), int(effect)))
        for link in span.get("links", ()):
            cause = by_span_id.get(link.get("spanId"))
            if cause is not None:
                edges.add((int(cause), int(effect)))
    return edges


# -- plain-text timeline -----------------------------------------------------


def text_timeline(
    graph,
    recorder=None,
    min_confidence: float = 0.0,
) -> str:
    """Per-router plain-text timeline with causal annotations."""
    lines: List[str] = []
    for router in _routers(graph):
        lines.append(f"== {router} ==")
        events = sorted(
            graph.events_of_router(router),
            key=lambda e: (e.timestamp, e.event_id),
        )
        for event in events:
            primary = _primary_parent(graph, event.event_id, min_confidence)
            caused = ""
            if primary is not None:
                ante, evidence = primary
                label = evidence.rule or evidence.technique
                caused = (
                    f"  <- #{ante.event_id} "
                    f"({label}, {evidence.confidence:.2f})"
                )
            lines.append(
                f"  t={event.timestamp:9.4f}  #{event.event_id:<4d} "
                f"{event.describe()}{caused}"
            )
        lines.append("")
    rows = _pipeline_rows(recorder)
    if rows:
        lines.append(f"== {PIPELINE_TRACK} ==")
        for record in rows:
            extras = " ".join(
                f"{key}={value}" for key, value in record.attrs
            )
            lines.append(
                f"  t={record.at:9.4f}  {record.kind.value}"
                + (f" [{record.router}]" if record.router else "")
                + (f" {record.detail}" if record.detail else "")
                + (f"  {extras}" if extras else "")
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


#: Format name -> exporter for the CLI (``repro trace --format``).
EXPORTERS = {
    "chrome": chrome_trace,
    "otlp": otlp_spans,
    "table": text_timeline,
}
