"""repro.obs.trace — the causal flight recorder and its exporters.

Three pieces:

* :mod:`repro.obs.trace.recorder` — the bounded ring buffer of
  structured :class:`TraceEvent`\\ s every pipeline stage appends to
  (off by default; see :func:`repro.obs.enable_recording`);
* :mod:`repro.obs.trace.export` — causal trace exporters that turn a
  happens-before graph (plus an optional recorder) into Chrome
  trace-event / Perfetto JSON, an OTLP-style span tree, or a plain
  per-router text timeline, with HBG edges rendered as span parent /
  flow links;
* :mod:`repro.obs.trace.attribution` — the latency-attribution pass
  that walks HBG paths from each root cause to its downstream FIB
  updates and emits per-hop / per-HBR-rule propagation-latency
  histograms into the metrics registry.

This package deliberately imports nothing from the domain layers
(``capture``, ``hbr``, ...): graphs and events are duck-typed, so
``repro.obs`` stays importable from every layer without cycles.
``export`` and ``attribution`` are plain submodules — import them
explicitly (``from repro.obs.trace import export``).
"""

from __future__ import annotations

from repro.obs.trace.recorder import (
    NULL_RECORDER,
    OVERFLOW_POLICIES,
    FlightRecorder,
    NullRecorder,
    TraceEvent,
    TraceKind,
)

__all__ = [
    "NULL_RECORDER",
    "OVERFLOW_POLICIES",
    "FlightRecorder",
    "NullRecorder",
    "TraceEvent",
    "TraceKind",
]
