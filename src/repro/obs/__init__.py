"""repro.obs — observability for the capture → HBG → verify → repair pipeline.

The paper's feasibility argument (§7) is quantitative: events
captured per configuration change, HBG construction cost, and
verification latency at the FIB boundary.  This package is the
measurement layer that produces those numbers from any scenario run:

* :mod:`repro.obs.metrics` — counters, gauges, and histograms with
  p50/p95/p99, grouped into sections by metric-name prefix;
* :mod:`repro.obs.tracing` — nestable spans with a
  context-manager/decorator API and exception safety;
* :mod:`repro.obs.export` — table / JSON / JSON-lines / Prometheus
  renderers over one canonical document;
* :mod:`repro.obs.trace` — the causal flight recorder (a bounded ring
  of structured pipeline events keyed by HBG event ids) plus the
  Chrome/Perfetto, OTLP, and text exporters and the latency
  attribution pass built on it.

Observability is **off by default**: the module-level registry,
tracer, and flight recorder are no-op singletons, so instrumented hot
paths cost a single attribute check (``registry.enabled`` /
``recorder.enabled``) per site.  Enable it per
process with :func:`enable` (the CLI's ``--metrics`` flag and the
``repro stats`` subcommand do exactly this)::

    from repro import obs

    registry, tracer = obs.enable()
    ...run a scenario...
    print(obs.export.render_table(registry, tracer))
    obs.disable()

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional, Tuple

from repro.obs import export  # noqa: F401  (re-exported submodule)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Stopwatch,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    DeterministicProfiler,
    NullProfiler,
)
from repro.obs.ledger import (
    NULL_VERDICTS,
    NullVerdictLedger,
    VerdictLedger,
    VerdictRecord,
)
from repro.obs.resources import NULL_LEDGER, NullLedger, ResourceLedger
from repro.obs.trace.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    TraceEvent,
    TraceKind,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NullRegistry",
    "Stopwatch",
    "TraceEvent",
    "TraceKind",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "ResourceLedger",
    "NullLedger",
    "VerdictLedger",
    "VerdictRecord",
    "NullVerdictLedger",
    "DeterministicProfiler",
    "NullProfiler",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "get_tracer",
    "get_recorder",
    "get_ledger",
    "get_profiler",
    "enable_recording",
    "disable_recording",
    "recording",
    "enable_ledger",
    "disable_ledger",
    "accounting",
    "get_verdicts",
    "enable_verdicts",
    "disable_verdicts",
    "verdicts",
    "enable_profiling",
    "disable_profiling",
    "profiling",
    "span",
    "traced",
    "capturing",
    "export",
]

_registry = NULL_REGISTRY
_tracer = NULL_TRACER
_recorder = NULL_RECORDER
_ledger = NULL_LEDGER
_profiler = NULL_PROFILER
_verdicts = NULL_VERDICTS


def get_registry():
    """The process-wide metrics registry (no-op unless :func:`enable`\\ d)."""
    return _registry


def get_tracer():
    """The process-wide span tracer (no-op unless :func:`enable`\\ d)."""
    return _tracer


def enabled() -> bool:
    return _registry.enabled


def enable(
    histogram_max_samples: int = 8192,
) -> Tuple[MetricsRegistry, Tracer]:
    """Install a live registry + tracer; returns both.

    Idempotent in spirit: calling it again installs *fresh* instances
    (a clean slate for the next measured run).
    """
    global _registry, _tracer
    _registry = MetricsRegistry(histogram_max_samples=histogram_max_samples)
    _tracer = Tracer(registry=_registry)
    return _registry, _tracer


def disable() -> None:
    """Restore the no-op registry and tracer."""
    global _registry, _tracer
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER


def get_recorder():
    """The process-wide flight recorder (no-op unless recording)."""
    return _recorder


def enable_recording(
    capacity: int = 4096, overflow: str = "drop-oldest"
) -> FlightRecorder:
    """Install a fresh :class:`FlightRecorder`; returns it.

    Independent of :func:`enable` — metrics and event recording can be
    switched on separately (``repro trace`` records without metrics;
    ``repro stats`` measures without recording).
    """
    global _recorder
    _recorder = FlightRecorder(capacity=capacity, overflow=overflow)
    return _recorder


def disable_recording() -> None:
    """Restore the no-op flight recorder."""
    global _recorder
    _recorder = NULL_RECORDER


@contextmanager
def recording(capacity: int = 4096, overflow: str = "drop-oldest"):
    """``with obs.recording() as recorder: ...`` — scoped recording.

    Restores whatever recorder was installed before, mirroring
    :func:`capturing`.
    """
    global _recorder
    previous = _recorder
    try:
        yield enable_recording(capacity=capacity, overflow=overflow)
    finally:
        _recorder = previous


def get_ledger():
    """The process-wide resource ledger (no-op unless accounting)."""
    return _ledger


def enable_ledger(sample: int = 64) -> ResourceLedger:
    """Install a fresh :class:`ResourceLedger`; returns it.

    Independent of :func:`enable`, like recording: structures built
    while the ledger is live register their ``account_bytes`` hooks;
    structures built before stay unaccounted.
    """
    global _ledger
    _ledger = ResourceLedger(sample=sample)
    return _ledger


def disable_ledger() -> None:
    """Restore the no-op resource ledger."""
    global _ledger
    _ledger = NULL_LEDGER


@contextmanager
def accounting(sample: int = 64):
    """``with obs.accounting() as ledger: ...`` — scoped byte accounting.

    Restores whatever ledger was installed before, mirroring
    :func:`recording`.
    """
    global _ledger
    previous = _ledger
    try:
        yield enable_ledger(sample=sample)
    finally:
        _ledger = previous


def get_verdicts():
    """The process-wide verdict ledger (no-op unless enabled)."""
    return _verdicts


def enable_verdicts(
    path: Optional[str] = None,
    capacity: int = 4096,
    rotate_records: int = 100_000,
    flush_every: int = 256,
) -> VerdictLedger:
    """Install a fresh :class:`VerdictLedger`; returns it.

    Independent of :func:`enable`, like recording and accounting:
    verdict sites (``DataPlaneVerifier.verify``,
    ``IncrementalVerifier.apply``, ``RepairEngine.repair``) start
    appending the moment this is on, and pay one attribute check when
    it is not.
    """
    global _verdicts
    _verdicts = VerdictLedger(
        path=path,
        capacity=capacity,
        rotate_records=rotate_records,
        flush_every=flush_every,
    )
    return _verdicts


def disable_verdicts() -> None:
    """Flush and restore the no-op verdict ledger."""
    global _verdicts
    _verdicts.flush()
    _verdicts = NULL_VERDICTS


@contextmanager
def verdicts(
    path: Optional[str] = None,
    capacity: int = 4096,
    rotate_records: int = 100_000,
    flush_every: int = 256,
):
    """``with obs.verdicts() as ledger: ...`` — scoped verdict logging.

    Flushes and restores whatever ledger was installed before,
    mirroring :func:`recording`.
    """
    global _verdicts
    previous = _verdicts
    try:
        yield enable_verdicts(
            path=path,
            capacity=capacity,
            rotate_records=rotate_records,
            flush_every=flush_every,
        )
    finally:
        _verdicts.flush()
        _verdicts = previous


def get_profiler():
    """The process-wide sampling profiler (no-op unless profiling)."""
    return _profiler


def enable_profiling(
    stride: int = 97, weights: str = "wall", max_stack: int = 64
) -> DeterministicProfiler:
    """Install a fresh :class:`DeterministicProfiler` and start it."""
    global _profiler
    _profiler.stop()
    _profiler = DeterministicProfiler(
        stride=stride, weights=weights, max_stack=max_stack
    )
    _profiler.start()
    return _profiler


def disable_profiling() -> None:
    """Stop the profiler and restore the no-op singleton."""
    global _profiler
    _profiler.stop()
    _profiler = NULL_PROFILER


@contextmanager
def profiling(stride: int = 97, weights: str = "wall", max_stack: int = 64):
    """``with obs.profiling() as profiler: ...`` — scoped profiling.

    Stops the profiler and restores the previous one on exit, so a
    profiled block cannot leak the ``sys.setprofile`` hook into
    timing-sensitive peers.
    """
    global _profiler
    previous = _profiler
    profiler = enable_profiling(
        stride=stride, weights=weights, max_stack=max_stack
    )
    try:
        yield profiler
    finally:
        profiler.stop()
        _profiler = previous


@contextmanager
def capturing(histogram_max_samples: int = 8192):
    """``with obs.capturing() as (registry, tracer): ...`` — scoped enable.

    Restores whatever was installed before, so tests and benchmarks
    cannot leak an enabled registry into timing-sensitive peers.
    """
    global _registry, _tracer
    previous = (_registry, _tracer)
    try:
        yield enable(histogram_max_samples=histogram_max_samples)
    finally:
        _registry, _tracer = previous


def span(name: str, **attrs: str):
    """Span against the *current* tracer (late-bound, so it works even
    when the tracer is enabled after the call site was imported)."""
    return get_tracer().span(name, **attrs)


def traced(name: str) -> Callable:
    """Decorator form of :func:`span`, late-bound per call."""

    def decorate(fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_tracer().span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
