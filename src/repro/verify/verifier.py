"""The centralized data-plane verifier.

Checks a list of policies against a snapshot, optionally compressing
the probe space with forwarding equivalence classes first.  Also
provides the *incremental* entry point the Fig. 3 pipeline uses:
given a hypothetical FIB change, report only the violations it would
introduce (transitional states during legitimate convergence shrink
the violation set and must not be blocked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.net.addr import Prefix
from repro.net.topology import Topology
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry
from repro.verify.headerspace import compute_equivalence_classes
from repro.verify.policy import Policy, Violation


@dataclass
class VerificationResult:
    """Violations plus cost instrumentation."""

    violations: List[Violation]
    policies_checked: int
    probe_count: int
    wall_seconds: float
    equivalence_classes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_policy(self) -> Dict[str, List[Violation]]:
        grouped: Dict[str, List[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.policy, []).append(violation)
        return grouped

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"VerificationResult[{status}, {self.policies_checked} policies, "
            f"{self.probe_count} probes, {self.wall_seconds * 1000:.2f}ms]"
        )


def _provenance_refs(
    snapshot: DataPlaneSnapshot, violations: Sequence[Violation]
) -> Tuple[int, ...]:
    """HBG event ids of the FIB entries behind ``violations``.

    Each violated flow's forwarding decisions live in snapshot
    entries, and every entry carries the ``source_event_id`` of the
    FIB_UPDATE it was reconstructed from — the refs a §6 provenance
    walk starts from.
    """
    refs: set = set()
    for violation in violations:
        for router in violation.path or (
            (violation.router,) if violation.router else ()
        ):
            if router is None or not snapshot.has_router(router):
                continue
            for entry in snapshot.entries_of(router):
                if violation.prefix is not None and (
                    entry.prefix.last_address()
                    < violation.prefix.first_address()
                    or violation.prefix.last_address()
                    < entry.prefix.first_address()
                ):
                    continue
                if entry.source_event_id:
                    refs.add(entry.source_event_id)
    return tuple(sorted(refs))


class DataPlaneVerifier:
    """Centralized verification over reconstructed snapshots."""

    def __init__(
        self,
        topology: Topology,
        policies: Sequence[Policy],
        use_equivalence_classes: bool = False,
    ):
        self.topology = topology
        self.policies = list(policies)
        self.use_equivalence_classes = use_equivalence_classes

    def verify(self, snapshot: DataPlaneSnapshot) -> VerificationResult:
        # Unconditional real stopwatch: wall_seconds is part of the
        # result contract, not just a metric.
        watch = obs.Stopwatch()
        violations: List[Violation] = []
        probes = 0
        ec_count: Optional[int] = None
        if self.use_equivalence_classes:
            classes = compute_equivalence_classes(snapshot)
            ec_count = len(classes)
            probes = len(classes)
        for policy in self.policies:
            found = policy.check(snapshot, self.topology)
            violations.extend(found)
            probes += len(policy.addresses_of_interest(snapshot))
        elapsed = watch.elapsed()
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter("verify.verifications_total").inc()
            registry.counter("verify.violations_found_total").inc(
                len(violations)
            )
            registry.histogram("verify.verify_seconds").observe(elapsed)
            registry.histogram("verify.probe_count").observe(probes)
        recorder = obs.get_recorder()
        if recorder.enabled:
            recorder.record(
                obs.TraceKind.VERIFY_VERDICT,
                at=snapshot.taken_at if snapshot.taken_at is not None else 0.0,
                detail="ok" if not violations else "violations",
                violations=len(violations),
                policies=len(self.policies),
                probes=probes,
            )
        verdicts = obs.get_verdicts()
        if verdicts.enabled:
            verdicts.record(
                kind="snapshot",
                at=snapshot.taken_at if snapshot.taken_at is not None else 0.0,
                ok=not violations,
                detail="ok" if not violations else "violations",
                violations=len(violations),
                refs=_provenance_refs(snapshot, violations),
                violation_detail=[
                    {
                        "policy": v.policy,
                        "prefix": str(v.prefix) if v.prefix else None,
                        "router": v.router,
                    }
                    for v in violations
                ],
            )
        return VerificationResult(
            violations=violations,
            policies_checked=len(self.policies),
            probe_count=probes,
            wall_seconds=elapsed,
            equivalence_classes=ec_count,
        )

    # -- incremental (pipeline) mode ---------------------------------------

    def with_hypothetical_entry(
        self,
        snapshot: DataPlaneSnapshot,
        entry: Optional[SnapshotEntry],
        router: str,
        prefix: Prefix,
    ) -> DataPlaneSnapshot:
        """A copy of ``snapshot`` with one entry installed/removed."""
        clone = DataPlaneSnapshot()
        for name in snapshot.routers():
            for existing in snapshot.entries_of(name):
                clone.install(existing)
        if entry is None:
            clone.remove(router, prefix)
        else:
            clone.install(entry)
        if snapshot.taken_at is not None:
            clone.set_taken_at(snapshot.taken_at)
        return clone

    def new_violations_from(
        self,
        snapshot: DataPlaneSnapshot,
        entry: Optional[SnapshotEntry],
        router: str,
        prefix: Prefix,
    ) -> Tuple[List[Violation], VerificationResult]:
        """Violations *introduced* by applying the hypothetical change.

        Compares the violation sets before and after: an update that
        leaves existing violations in place (or removes some) during
        convergence is not blamed for them.
        """
        before = {v.key() for v in self.verify(snapshot).violations}
        candidate = self.with_hypothetical_entry(snapshot, entry, router, prefix)
        after_result = self.verify(candidate)
        introduced = [
            v for v in after_result.violations if v.key() not in before
        ]
        return introduced, after_result
