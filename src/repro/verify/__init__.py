"""Data-plane verification (§5).

Policies are checked against a reconstructed
:class:`~repro.snapshot.base.DataPlaneSnapshot`.  The verifier is
deliberately a *data-plane* verifier in the paper's sense: it knows
nothing about why FIB entries exist — provenance is the HBG's job —
it only checks forwarding behaviour: loops, black holes,
reachability, waypoints, and the preferred-exit policy of §2.

:mod:`repro.verify.headerspace` supplies HSA-style header-space
reasoning: packing the address space into forwarding equivalence
classes so checks run per class, not per address (§6 cites networks
with 100 K prefixes collapsing to <15 classes).
:mod:`repro.verify.distributed` implements the §5 sketch of
distributing verification by passing partial results between routers.
"""

from repro.verify.policy import (
    BlackholeFreedomPolicy,
    LoopFreedomPolicy,
    Policy,
    PreferredExitPolicy,
    ReachabilityPolicy,
    Violation,
    WaypointPolicy,
)
from repro.verify.atoms import AtomTable
from repro.verify.headerspace import EquivalenceClass, compute_equivalence_classes
from repro.verify.incremental import IncrementalVerifier, incremental_engine
from repro.verify.verifier import DataPlaneVerifier, VerificationResult
from repro.verify.distributed import DistributedVerifier

__all__ = [
    "AtomTable",
    "BlackholeFreedomPolicy",
    "DataPlaneVerifier",
    "DistributedVerifier",
    "EquivalenceClass",
    "IncrementalVerifier",
    "LoopFreedomPolicy",
    "Policy",
    "PreferredExitPolicy",
    "ReachabilityPolicy",
    "VerificationResult",
    "Violation",
    "WaypointPolicy",
    "compute_equivalence_classes",
    "incremental_engine",
]
