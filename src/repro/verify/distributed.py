"""Distributed data-plane verification (§5, "Distributed verification").

    "The basic idea is to pass partial verification results between
    network routers ... and have each router use its local FIB
    snapshot to conduct parts of the verification.  For example, with
    HSA, each router could maintain its own transfer function and
    send the output of the transfer function to downstream routers
    that would apply their transfer functions.  This approach adds
    time overhead ... but avoids the potential for bottlenecks at a
    centralized verifier."

Each router holds only its own FIB slice.  Verification of an
address propagates :class:`ProbeToken` messages hop-by-hop: a token
carries the path so far; the receiving router applies its transfer
function and forwards, terminating on delivery, drop, or loop.  The
class counts messages and per-router work so the C-DIST benchmark
can quantify the central-bottleneck-vs-latency trade the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.addr import Prefix
from repro.net.topology import Topology
from repro.snapshot.base import DataPlaneSnapshot
from repro.verify.policy import Violation


@dataclass(frozen=True)
class ProbeToken:
    """A partial verification result in flight between routers."""

    address: int
    path: Tuple[str, ...]

    @property
    def at(self) -> str:
        return self.path[-1]


@dataclass
class ProbeOutcome:
    """Terminal result of one probe walk."""

    source: str
    address: int
    path: Tuple[str, ...]
    outcome: str  # delivered | blackhole | discard | loop


@dataclass
class DistributedRunStats:
    """Cost accounting for one distributed verification run."""

    messages: int = 0
    per_router_work: Dict[str, int] = field(default_factory=dict)
    max_hops: int = 0
    #: Simulated completion latency: longest chain of hop delays.
    latency: float = 0.0

    @property
    def bottleneck_work(self) -> int:
        """Work at the busiest node — the metric a central verifier
        maximises (it does *all* the work) and distribution spreads."""
        return max(self.per_router_work.values(), default=0)

    @property
    def total_work(self) -> int:
        return sum(self.per_router_work.values())


class DistributedVerifier:
    """Hop-by-hop verification over per-router FIB slices."""

    def __init__(
        self,
        topology: Topology,
        snapshot: DataPlaneSnapshot,
        hop_delay: float = 0.008,
    ):
        self.topology = topology
        self.snapshot = snapshot
        self.hop_delay = hop_delay

    def probe(
        self, source: str, address: int, stats: DistributedRunStats
    ) -> ProbeOutcome:
        """Walk one probe token from ``source`` toward ``address``."""
        token = ProbeToken(address=address, path=(source,))
        visited = {source}
        internal = set(self.topology.internal_routers())
        while True:
            router = token.at
            stats.per_router_work[router] = (
                stats.per_router_work.get(router, 0) + 1
            )
            if router not in internal and len(token.path) > 1:
                return ProbeOutcome(source, address, token.path, "delivered")
            entry = self.snapshot.lookup(router, address)
            if entry is None:
                return ProbeOutcome(source, address, token.path, "blackhole")
            if entry.discard:
                return ProbeOutcome(source, address, token.path, "discard")
            if entry.next_hop_router is None:
                return ProbeOutcome(source, address, token.path, "delivered")
            next_router = entry.next_hop_router
            stats.messages += 1
            stats.max_hops = max(stats.max_hops, len(token.path))
            token = ProbeToken(address=address, path=token.path + (next_router,))
            if next_router in visited:
                return ProbeOutcome(source, address, token.path, "loop")
            visited.add(next_router)

    def verify_address(
        self, address: int
    ) -> Tuple[List[ProbeOutcome], DistributedRunStats]:
        """Probe ``address`` from every internal router.

        Probes from different sources proceed independently (they
        would run in parallel on real routers); simulated latency is
        therefore the *longest* probe chain, not the sum.
        """
        stats = DistributedRunStats()
        outcomes = []
        longest = 0
        for source in self.topology.internal_routers():
            if source not in self.snapshot.routers():
                continue
            outcome = self.probe(source, address, stats)
            outcomes.append(outcome)
            longest = max(longest, len(outcome.path) - 1)
        stats.latency = longest * self.hop_delay
        return outcomes, stats

    def verify_prefixes(
        self, prefixes: Sequence[Prefix]
    ) -> Tuple[List[ProbeOutcome], DistributedRunStats]:
        total_stats = DistributedRunStats()
        all_outcomes: List[ProbeOutcome] = []
        for prefix in prefixes:
            outcomes, stats = self.verify_address(prefix.first_address())
            all_outcomes.extend(outcomes)
            total_stats.messages += stats.messages
            total_stats.max_hops = max(total_stats.max_hops, stats.max_hops)
            total_stats.latency = max(total_stats.latency, stats.latency)
            for router, work in stats.per_router_work.items():
                total_stats.per_router_work[router] = (
                    total_stats.per_router_work.get(router, 0) + work
                )
        return all_outcomes, total_stats

    def loop_violations(
        self, prefixes: Sequence[Prefix]
    ) -> Tuple[List[Violation], DistributedRunStats]:
        """Distributed loop-freedom check over ``prefixes``."""
        outcomes, stats = self.verify_prefixes(prefixes)
        violations = [
            Violation(
                policy="loop-freedom",
                detail=f"forwarding loop {'->'.join(o.path)}",
                prefix=Prefix(o.address, 32),
                router=o.source,
                path=o.path,
            )
            for o in outcomes
            if o.outcome == "loop"
        ]
        return violations, stats


def centralized_equivalent_stats(
    topology: Topology,
    snapshot: DataPlaneSnapshot,
    prefixes: Sequence[Prefix],
) -> DistributedRunStats:
    """Cost of the same checks done centrally: every FIB entry ships
    to one node, which then does all the per-hop work itself."""
    stats = DistributedRunStats()
    verifier_node = "verifier"
    entries = 0
    for router in snapshot.routers():
        entries += len(snapshot.entries_of(router))
    stats.messages = entries  # one message per FIB entry shipped
    work = 0
    for prefix in prefixes:
        address = prefix.first_address()
        for source in topology.internal_routers():
            path, _outcome = snapshot.trace(source, address)
            work += len(path)
    stats.per_router_work[verifier_node] = work
    stats.latency = 0.0  # all local once the snapshot is in
    return stats
