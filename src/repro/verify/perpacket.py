"""Per-packet policy verification over FIB timelines (§5, footnote 4).

    "In reality, packets take time to traverse the network and
    encounter router's FIBs at different instances in time.  Thus, a
    lack of violations across consecutive consistent data plane
    snapshots does not strictly guarantee a packet does not violate a
    policy [39].  However, HBGs could be used to construct all
    possible sequences of FIBs a packet could encounter, thereby
    provide a means to verify per-packet policy compliance."

The captured FIB_UPDATE stream makes each router's forwarding state a
piecewise-constant function of time.  A packet injected at time t at
router S consults S's state at t, crosses the link (one propagation
delay), consults the next router's state at t + delay, and so on —
one concrete *journey* per injection time.  Because states only
change at event boundaries, probing one injection time per boundary
interval enumerates **every distinct journey any packet could have
taken**, which is exactly the footnote's "all possible sequences of
FIBs".

This is strictly stronger than snapshot verification: it can prove
that although a loop exists in some *reconstructed instantaneous*
state (the Fig. 1c artefact), no physically realisable packet ever
traverses it — or, conversely, expose transient loops that every
consistent snapshot misses because they only exist "diagonally"
across time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.net.addr import Prefix
from repro.net.topology import Topology

#: Probe offset inside each boundary interval.
EPSILON = 1e-6


@dataclass(frozen=True)
class TimedState:
    """A router's forwarding action for the prefix during an interval."""

    start: float
    next_hop_router: Optional[str]
    present: bool
    discard: bool


@dataclass(frozen=True)
class Journey:
    """One concrete packet trajectory."""

    inject_time: float
    source: str
    path: Tuple[str, ...]
    #: Time at which each hop's FIB was consulted.
    hop_times: Tuple[float, ...]
    outcome: str  # delivered | blackhole | discard | loop

    def __str__(self) -> str:
        hops = " -> ".join(
            f"{router}@{when:.4f}" for router, when in zip(self.path, self.hop_times)
        )
        return f"[inject {self.inject_time:.4f}s] {hops} => {self.outcome}"


class FibTimeline:
    """Piecewise-constant FIB state of one router for one prefix."""

    def __init__(self, router: str, prefix: Prefix):
        self.router = router
        self.prefix = prefix
        self._times: List[float] = []
        self._states: List[TimedState] = []

    def add_event(self, event: IOEvent) -> None:
        if event.kind is not IOKind.FIB_UPDATE or event.prefix != self.prefix:
            raise ValueError(f"not a FIB update for {self.prefix}: {event}")
        if event.action is RouteAction.WITHDRAW:
            state = TimedState(
                start=event.timestamp,
                next_hop_router=None,
                present=False,
                discard=False,
            )
        else:
            state = TimedState(
                start=event.timestamp,
                next_hop_router=event.attr("next_hop_router"),
                present=True,
                discard=bool(event.attr("discard", False)),
            )
        index = bisect.bisect_right(self._times, event.timestamp)
        self._times.insert(index, event.timestamp)
        self._states.insert(index, state)

    def state_at(self, when: float) -> TimedState:
        """The state in force at time ``when`` (absent before any event)."""
        index = bisect.bisect_right(self._times, when) - 1
        if index < 0:
            return TimedState(
                start=float("-inf"),
                next_hop_router=None,
                present=False,
                discard=False,
            )
        return self._states[index]

    def boundaries(self) -> List[float]:
        return list(self._times)


class PerPacketAnalyzer:
    """Enumerate all distinct packet journeys for one prefix."""

    def __init__(
        self,
        events: Iterable[IOEvent],
        topology: Topology,
        prefix: Prefix,
    ):
        self.topology = topology
        self.prefix = prefix
        self.timelines: Dict[str, FibTimeline] = {}
        for event in events:
            if event.kind is not IOKind.FIB_UPDATE:
                continue
            if event.prefix != prefix:
                continue
            timeline = self.timelines.get(event.router)
            if timeline is None:
                timeline = FibTimeline(event.router, prefix)
                self.timelines[event.router] = timeline
            timeline.add_event(event)

    # -- single journey ---------------------------------------------------

    def trace(
        self, source: str, inject_time: float, max_hops: int = 64
    ) -> Journey:
        """The journey of a packet injected at ``source`` at that time."""
        internal = set(self.topology.internal_routers())
        path: List[str] = [source]
        hop_times: List[float] = [inject_time]
        current = source
        now = inject_time
        visited: Set[Tuple[str]] = set()
        seen_routers = {source}
        for _ in range(max_hops):
            if current not in internal and len(path) > 1:
                return Journey(
                    inject_time, source, tuple(path), tuple(hop_times),
                    "delivered",
                )
            timeline = self.timelines.get(current)
            state = (
                timeline.state_at(now)
                if timeline is not None
                else TimedState(float("-inf"), None, False, False)
            )
            if not state.present:
                return Journey(
                    inject_time, source, tuple(path), tuple(hop_times),
                    "blackhole",
                )
            if state.discard:
                return Journey(
                    inject_time, source, tuple(path), tuple(hop_times),
                    "discard",
                )
            if state.next_hop_router is None:
                return Journey(
                    inject_time, source, tuple(path), tuple(hop_times),
                    "delivered",
                )
            link = self.topology.link_between(current, state.next_hop_router)
            if link is None or not link.up:
                return Journey(
                    inject_time, source, tuple(path), tuple(hop_times),
                    "blackhole",
                )
            now += link.delay
            current = state.next_hop_router
            path.append(current)
            hop_times.append(now)
            if current in seen_routers:
                # Revisiting a router is only a *loop* if its state has
                # not changed since the last visit — a changed state can
                # legitimately break out on the next iteration.  We cap
                # at max_hops either way; declare a loop when the same
                # (router, state-start) pair recurs.
                key = (current, self.timelines[current].state_at(now).start
                       if current in self.timelines else 0.0)
                if key in visited:
                    return Journey(
                        inject_time, source, tuple(path), tuple(hop_times),
                        "loop",
                    )
                visited.add(key)
            seen_routers.add(current)
        return Journey(
            inject_time, source, tuple(path), tuple(hop_times), "loop"
        )

    # -- all distinct journeys ---------------------------------------------------

    def injection_times(self, window: Tuple[float, float]) -> List[float]:
        """One probe time per piecewise-constant interval in ``window``.

        Includes the window start plus every state boundary of every
        router (a state change anywhere can alter journeys).
        """
        start, end = window
        boundaries: Set[float] = {start}
        for timeline in self.timelines.values():
            for boundary in timeline.boundaries():
                if start <= boundary <= end:
                    boundaries.add(boundary + EPSILON)
        return sorted(b for b in boundaries if start <= b <= end)

    def distinct_journeys(
        self,
        source: str,
        window: Tuple[float, float],
        max_hops: int = 64,
    ) -> List[Journey]:
        """Every distinct journey a packet from ``source`` could take
        when injected anywhere inside ``window``."""
        journeys: List[Journey] = []
        seen: Set[Tuple[Tuple[str, ...], str]] = set()
        for when in self.injection_times(window):
            journey = self.trace(source, when, max_hops=max_hops)
            key = (journey.path, journey.outcome)
            if key not in seen:
                seen.add(key)
                journeys.append(journey)
        return journeys

    def all_outcomes(
        self, window: Tuple[float, float]
    ) -> Dict[str, Set[str]]:
        """Per source router: the set of outcomes any packet could see."""
        outcomes: Dict[str, Set[str]] = {}
        for source in self.topology.internal_routers():
            journeys = self.distinct_journeys(source, window)
            outcomes[source] = {j.outcome for j in journeys}
        return outcomes

    def ever_loops(self, window: Tuple[float, float]) -> bool:
        """Could *any* physically realisable packet loop in ``window``?"""
        for source in self.topology.internal_routers():
            for journey in self.distinct_journeys(source, window):
                if journey.outcome == "loop":
                    return True
        return False

    def always_traverses(
        self,
        waypoint: str,
        window: Tuple[float, float],
        sources: Optional[Sequence[str]] = None,
    ) -> List[Journey]:
        """Per-packet waypoint check: journeys that are delivered but
        bypass ``waypoint`` (violations of the §5 firewall example)."""
        violating = []
        sources = sources or [
            r for r in self.topology.internal_routers() if r != waypoint
        ]
        for source in sources:
            for journey in self.distinct_journeys(source, window):
                if journey.outcome == "delivered" and waypoint not in journey.path:
                    violating.append(journey)
        return violating
