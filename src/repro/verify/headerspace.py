"""HSA-style header-space reasoning: forwarding equivalence classes.

§6 leans on the observation (citing [7]) that "many destinations are
treated alike by the network control plane and can therefore be
grouped into few equivalence classes ... even large networks (100K
prefixes) often have less than 15 equivalence classes in total".

Two addresses are forwarding-equivalent when *every* router forwards
them identically.  We compute the partition exactly, in
O(P log P + P·R) for P prefixes and R routers:

1. every FIB prefix contributes an address interval [start, end];
2. interval boundaries cut the 32-bit space into atoms;
3. each atom's network-wide behaviour is the tuple of per-router
   longest-prefix-match results at any address inside it;
4. atoms with equal behaviour merge into one equivalence class.

The per-router view (:class:`TransferFunction`) is the header-space
"transfer function" of HSA [23], restricted to destination-prefix
forwarding — which is all a FIB does.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.addr import IPV4_MAX, Prefix, summarize
from repro.snapshot.base import DataPlaneSnapshot

#: One router's action on an atom: (next_hop_router or None, discard).
Action = Tuple[Optional[str], bool]
#: Network-wide behaviour: sorted tuple of (router, action).
Behavior = Tuple[Tuple[str, Action], ...]


@dataclass(frozen=True)
class TransferFunction:
    """One router's forwarding behaviour as a pure function."""

    router: str
    snapshot: DataPlaneSnapshot

    def apply(self, address: int) -> Action:
        entry = self.snapshot.lookup(self.router, address)
        if entry is None:
            return (None, False)
        if entry.discard:
            return (None, True)
        return (entry.next_hop_router, False)


@dataclass(frozen=True)
class EquivalenceClass:
    """A maximal set of addresses with identical network-wide forwarding."""

    class_id: int
    intervals: Tuple[Tuple[int, int], ...]
    behavior: Behavior

    @property
    def representative(self) -> int:
        """An address inside the class (for probing/tracing)."""
        return self.intervals[0][0]

    def size(self) -> int:
        return sum(end - start + 1 for start, end in self.intervals)

    def contains(self, address: int) -> bool:
        return any(start <= address <= end for start, end in self.intervals)

    def covering_prefixes(self) -> List[Prefix]:
        """A compact prefix description of the class (for reports)."""
        prefixes: List[Prefix] = []
        for start, end in self.intervals:
            prefixes.extend(_interval_to_prefixes(start, end))
        return summarize(prefixes)


def _interval_to_prefixes(start: int, end: int) -> List[Prefix]:
    """Minimal prefix cover of the inclusive interval [start, end]."""
    result: List[Prefix] = []
    current = start
    while current <= end:
        # Largest aligned block starting at `current` that fits.
        max_align = current & -current if current else 1 << 32
        size = 1
        length = 32
        while (
            length > 0
            and size * 2 <= max_align
            and current + size * 2 - 1 <= end
        ):
            size *= 2
            length -= 1
        result.append(Prefix(current, length))
        current += size
    return result


def compute_equivalence_classes(
    snapshot: DataPlaneSnapshot,
    routers: Optional[Sequence[str]] = None,
    include_empty: bool = False,
) -> List[EquivalenceClass]:
    """Partition the address space by network-wide forwarding behaviour.

    ``routers`` restricts the behaviour signature to a subset (defaults
    to every router in the snapshot).  Classes where *no* router has
    any entry are omitted unless ``include_empty``.
    """
    router_names = sorted(routers) if routers else snapshot.routers()
    transfer = {r: TransferFunction(r, snapshot) for r in router_names}

    boundaries: Set[int] = {0}
    for prefix in snapshot.all_prefixes():
        boundaries.add(prefix.first_address())
        last = prefix.last_address()
        if last < IPV4_MAX:
            boundaries.add(last + 1)
    cuts = sorted(boundaries)

    by_behavior: Dict[Behavior, List[Tuple[int, int]]] = defaultdict(list)
    for index, start in enumerate(cuts):
        end = cuts[index + 1] - 1 if index + 1 < len(cuts) else IPV4_MAX
        behavior: Behavior = tuple(
            (router, transfer[router].apply(start)) for router in router_names
        )
        if not include_empty and all(
            action == (None, False) for _, action in behavior
        ):
            continue
        intervals = by_behavior[behavior]
        if intervals and intervals[-1][1] + 1 == start:
            intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))

    classes = []
    for class_id, (behavior, intervals) in enumerate(
        sorted(by_behavior.items(), key=lambda item: item[1][0])
    ):
        classes.append(
            EquivalenceClass(
                class_id=class_id,
                intervals=tuple(intervals),
                behavior=behavior,
            )
        )
    return classes


def class_of(classes: Sequence[EquivalenceClass], address: int) -> Optional[
    EquivalenceClass
]:
    """Which class (if any) contains ``address``."""
    for cls in classes:
        if cls.contains(address):
            return cls
    return None


def compression_ratio(
    classes: Sequence[EquivalenceClass], prefix_count: int
) -> float:
    """Prefixes per class: the §6 "100K prefixes, <15 classes" metric."""
    if not classes:
        return 0.0
    return prefix_count / len(classes)
