"""Incremental atom-based verification: §5 per FIB delta, not per snapshot.

The paper's verifier is meant to run *continuously* as updates stream
in, but the batch pipeline re-derives the whole §5 closure and
re-probes every policy per snapshot — the scaling bottleneck BENCH
C-SCALE exposed.  This module is the Delta-net-style answer
(PAPERS.md): partition the address space into atoms
(:mod:`repro.verify.atoms`), maintain per-router forwarding state and
per-prefix §5 bookkeeping incrementally, and on each FIB delta
re-check only

* the §5 consistency of the delta's own prefix, against persistent
  closure memos (:class:`ConsistentSnapshotter` in
  ``persistent_memo`` mode), and
* the policy invariants of the probe addresses inside the delta's
  atoms — every other atom's forwarding behaviour is provably
  untouched by the delta.

CB-VER's stable-interface framing (PAPERS.md) dictates the contract
held invariant between deltas: after every observed event, verdicts
equal what the batch path (fresh :class:`ConsistentSnapshotter` +
:class:`DataPlaneVerifier` over the visible event set) would produce.
The ``verify-incremental-equivalence`` testkit oracle checks exactly
that after every delta of a fuzzed execution.

One deliberate global exception to atom locality: the *first* FIB
entry a router ever installs (and, symmetrically, a replay wiping a
router) flips :meth:`DataPlaneSnapshot.trace`'s external-router
heuristic for every address, so such deltas re-probe all atoms.

The delta feed is :meth:`StreamingInference.subscribe` — the
streaming layer must run with ``full_relink`` so its graph equals the
batch build after every observe even under per-router log lag
(arrival-order feeds); :meth:`attach` enforces this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.capture.io_events import IOEvent, IOKind, RouteAction
from repro.hbr.inference import (
    InferenceConfig,
    InferenceEngine,
    StreamingInference,
)
from repro.net.addr import Prefix
from repro.net.topology import Topology
from repro.snapshot.base import DataPlaneSnapshot, SnapshotEntry, VerifierView
from repro.snapshot.consistent import ConsistencyReport, ConsistentSnapshotter
from repro.verify.atoms import AtomTable
from repro.verify.policy import Policy, Violation

#: FIB protocols participating in the §5 BGP closure recursion.
_BGP_PROTOCOLS = ("ebgp", "ibgp", "bgp")


def incremental_engine(**overrides) -> InferenceEngine:
    """An inference engine configured for the incremental feed."""
    return InferenceEngine(
        config=InferenceConfig(full_relink=True, **overrides)
    )


class IncrementalVerifier:
    """Per-delta §5 + policy verification over a streaming HBG.

    Wire-up::

        engine = incremental_engine()
        streaming = engine.streaming()
        verifier = IncrementalVerifier(
            internal_routers, topology=topo, policies=[...],
            view=view, engine=engine,
        ).attach(streaming)
        for event in events_in_arrival_order:
            streaming.observe(event)   # verifier.ingest() runs inside
        verifier.violations(), verifier.consistency(prefix)
    """

    def __init__(
        self,
        internal_routers: Sequence[str],
        topology: Optional[Topology] = None,
        policies: Sequence[Policy] = (),
        view: Optional[VerifierView] = None,
        engine: Optional[InferenceEngine] = None,
        inflight_bound: float = 0.1,
        max_unmatched_age: Optional[float] = 30.0,
    ):
        self.internal_routers = set(internal_routers)
        self.topology = topology
        self.policies: Tuple[Policy, ...] = tuple(policies)
        self.view = view
        self.engine = engine or incremental_engine()
        self.snapshotter = ConsistentSnapshotter(
            view,
            internal_routers,
            engine=self.engine,
            inflight_bound=inflight_bound,
            max_unmatched_age=max_unmatched_age,
            persistent_memo=True,
        )
        self.streaming: Optional[StreamingInference] = None
        self.atoms = AtomTable()
        #: The incrementally maintained forwarding reconstruction.
        self.snapshot = DataPlaneSnapshot()
        #: Per-prefix cut front: latest BGP FIB update per router.
        self._cut: Dict[Prefix, Dict[str, IOEvent]] = {}
        #: Per-prefix internal BGP sends with no receive linked yet —
        #: the only sends the per-delta send-closure scan must visit.
        self._unmatched: Dict[Prefix, Dict[int, IOEvent]] = {}
        self._send_by_id: Dict[int, IOEvent] = {}
        #: receive id -> send ids credited as matched through it, so a
        #: re-link of the receive can revoke (and re-derive) credit.
        self._match_by_recv: Dict[int, Set[int]] = {}
        #: Last §5 report per prefix (refreshed on each delta).
        self._reports: Dict[Prefix, ConsistencyReport] = {}
        #: Per-policy violation cache keyed by probe address.
        self._policy_hits: List[Dict[int, List[Violation]]] = [
            {} for _ in self.policies
        ]
        #: Verifier-visible wall clock (max arrival time seen).
        self.clock = 0.0
        # Plain accumulators for benchmarks (the registry histograms
        # carry the same numbers when obs is enabled).
        self.deltas_applied = 0
        self.verify_seconds_total = 0.0
        self.check_seconds_total = 0.0
        self.checks_run = 0
        self.atoms_touched_total = 0

    # -- wiring -----------------------------------------------------------

    def attach(self, streaming: StreamingInference) -> "IncrementalVerifier":
        """Subscribe to a streaming inference's delta feed."""
        if not streaming.engine.config.full_relink:
            raise ValueError(
                "IncrementalVerifier needs a full_relink streaming "
                "engine: without it the streaming graph diverges from "
                "the batch build under arrival-order feeds, voiding "
                "the batch-equivalence guarantee"
            )
        self.streaming = streaming
        streaming.subscribe(self.ingest)
        return self

    def invalidate(self) -> None:
        """Rollback-replay hook: drop all derived state.

        Replayed captures re-use event ids, so every cache keyed by
        event id or (router, prefix) — closure memos, cut fronts,
        unmatched sends, the forwarding reconstruction — may silently
        describe a different event after a replay.  The repair engine
        calls this for registered verifiers/snapshotters after
        applying reverts.
        """
        self.snapshotter.invalidate()
        self.snapshot = DataPlaneSnapshot()
        self._cut.clear()
        self._unmatched.clear()
        self._send_by_id.clear()
        self._match_by_recv.clear()
        self._reports.clear()
        for cache in self._policy_hits:
            cache.clear()

    # -- the delta feed ---------------------------------------------------

    def ingest(self, event: IOEvent, relinked: Tuple[IOEvent, ...] = ()) -> None:
        """Feed one observed event plus the events re-linked by it.

        This is the :meth:`StreamingInference.subscribe` listener.
        Non-FIB events only update bookkeeping (send matching, memo
        invalidation); FIB deltas additionally trigger the scoped
        re-verification in :meth:`apply`.
        """
        arrival = (
            self.view.arrival_time(event)
            if self.view is not None
            else event.timestamp
        )
        if arrival > self.clock:
            self.clock = arrival
        if event.kind is IOKind.ROUTE_SEND:
            self._note_send(event)
        for stale in relinked:
            self.snapshotter.invalidate_event(stale)
            if stale.kind is IOKind.ROUTE_RECEIVE:
                self._rematch_receive(stale)
        if event.kind is IOKind.ROUTE_RECEIVE:
            self._rematch_receive(event)
        elif event.kind is IOKind.FIB_UPDATE and event.prefix is not None:
            self.snapshotter.note_fib_event(event)
            self.apply(event)

    def apply(self, event: IOEvent) -> ConsistencyReport:
        """Apply one FIB delta: update atoms and forwarding state,
        re-check §5 for the delta's prefix, and re-probe the policies
        of the touched atoms."""
        registry = obs.get_registry()
        watch = obs.Stopwatch()
        prefix = event.prefix
        self.atoms.ensure(prefix)
        touched = len(self.atoms.atoms_within(prefix))
        self.atoms_touched_total += touched
        global_dirty = False
        if event.action is RouteAction.WITHDRAW:
            self.snapshot.remove(event.router, prefix)
        else:
            if not self.snapshot.has_router(event.router):
                # First entry ever on this router: the trace heuristic
                # flips from "external, delivered" to "internal, may
                # blackhole" for every address — atom locality does
                # not apply, re-probe everything.
                global_dirty = True
            self.snapshot.install(SnapshotEntry.from_event(event))
        self.snapshot.set_taken_at(self.clock)
        if event.protocol in _BGP_PROTOCOLS:
            front = self._cut.setdefault(prefix, {})
            current = front.get(event.router)
            if current is None or (event.timestamp, event.event_id) > (
                current.timestamp,
                current.event_id,
            ):
                front[event.router] = event
        report = self.consistency(prefix)
        self._refresh_policies(prefix, global_dirty)
        elapsed = watch.elapsed()
        self.deltas_applied += 1
        self.verify_seconds_total += elapsed
        if registry.enabled:
            registry.gauge("verify.atoms_total").set(self.atoms.atom_count())
            registry.histogram("verify.atoms_touched").observe(touched)
            registry.histogram("verify.incremental_seconds").observe(elapsed)
            registry.counter("verify.incremental_deltas_total").inc()
        verdicts = obs.get_verdicts()
        if verdicts.enabled:
            prefix_violations = self._violations_within(prefix)
            ok = report.consistent and not prefix_violations
            if not report.consistent:
                detail = report.reasons[0] if report.reasons else "inconsistent"
            elif prefix_violations:
                detail = str(prefix_violations[0])
            else:
                detail = "ok"
            verdicts.record(
                kind="incremental",
                at=self.clock,
                ok=ok,
                prefix=str(prefix),
                router=event.router,
                event_id=event.event_id,
                event_time=event.timestamp,
                detail=detail,
                violations=len(prefix_violations),
                missing_routers=tuple(report.missing_routers),
                refs=(event.event_id,),
            )
        return report

    # -- verdicts ---------------------------------------------------------

    def consistency(
        self, prefix: Prefix, at: Optional[float] = None
    ) -> ConsistencyReport:
        """The §5 verdict for one prefix at the current visibility.

        Equals a batch :meth:`ConsistentSnapshotter.check` with the
        same prefix over the visible event set (``consistent`` and
        ``missing_routers``; see ``check_incremental`` for the caveat
        on ``reasons``/``steps``).
        """
        if self.streaming is None:
            raise RuntimeError("attach() a StreamingInference first")
        when = self.clock if at is None else at
        front = self._cut.get(prefix)
        sends = self._unmatched.get(prefix)
        watch = obs.Stopwatch()
        report = self.snapshotter.check_incremental(
            self.streaming.graph,
            list(front.values()) if front else (),
            list(sends.values()) if sends else (),
            prefix=prefix,
            at=when,
        )
        self.check_seconds_total += watch.elapsed()
        self.checks_run += 1
        self._reports[prefix] = report
        return report

    def last_report(self, prefix: Prefix) -> Optional[ConsistencyReport]:
        return self._reports.get(prefix)

    def _violations_within(self, prefix: Prefix) -> List[Violation]:
        """Cached policy violations probed inside ``prefix``'s range."""
        first = prefix.first_address()
        last = prefix.last_address()
        result: List[Violation] = []
        for cache in self._policy_hits:
            for address in sorted(cache):
                if first <= address <= last:
                    result.extend(cache[address])
        return result

    def violations(self) -> List[Violation]:
        """Current policy violations, in batch-verifier order."""
        result: List[Violation] = []
        for cache in self._policy_hits:
            for address in sorted(cache):
                result.extend(cache[address])
        return result

    # -- internals --------------------------------------------------------

    def _refresh_policies(self, prefix: Prefix, global_dirty: bool) -> None:
        if not self.policies or self.topology is None:
            return
        first = prefix.first_address()
        last = prefix.last_address()
        for policy, cache in zip(self.policies, self._policy_hits):
            addresses = policy.probe_addresses(self.snapshot)
            if global_dirty:
                relevant = addresses
                cache.clear()
            else:
                # Only probe addresses inside the delta's atoms can
                # change outcome; prune cached ones its withdraw
                # removed from the probe set.
                relevant = [a for a in addresses if first <= a <= last]
                live = set(relevant)
                for stale in [
                    a for a in cache if first <= a <= last and a not in live
                ]:
                    del cache[stale]
            for address in relevant:
                found = policy.check_addresses(
                    self.snapshot, self.topology, [address]
                )
                if found:
                    cache[address] = found
                else:
                    cache.pop(address, None)

    def _note_send(self, send: IOEvent) -> None:
        if (
            send.protocol != "bgp"
            or send.prefix is None
            or send.peer not in self.internal_routers
        ):
            return
        self._send_by_id[send.event_id] = send
        if not self._send_matched(send):
            self._unmatched.setdefault(send.prefix, {})[
                send.event_id
            ] = send

    def _send_matched(self, send: IOEvent) -> bool:
        if self.streaming is None:
            return False
        return any(
            child.kind is IOKind.ROUTE_RECEIVE
            for child, _evidence in self.streaming.graph.children(
                send.event_id
            )
        )

    def _rematch_receive(self, recv: IOEvent) -> None:
        """Re-derive which sends this receive's in-edges credit.

        A re-link replaces the receive's in-edges wholesale, so credit
        granted through it is revoked first; sends that lost their
        only receive go back into the unmatched set (the batch
        criterion is "any ROUTE_RECEIVE child", checked live)."""
        for send_id in self._match_by_recv.pop(recv.event_id, ()):
            send = self._send_by_id.get(send_id)
            if send is not None and not self._send_matched(send):
                self._unmatched.setdefault(send.prefix, {})[send_id] = send
        if self.streaming is None:
            return
        credited: Set[int] = set()
        for parent, _evidence in self.streaming.graph.parents(
            recv.event_id
        ):
            if (
                parent.kind is IOKind.ROUTE_SEND
                and parent.event_id in self._send_by_id
            ):
                credited.add(parent.event_id)
                send = self._send_by_id[parent.event_id]
                bucket = self._unmatched.get(send.prefix)
                if bucket is not None:
                    bucket.pop(parent.event_id, None)
        if credited:
            self._match_by_recv[recv.event_id] = credited
